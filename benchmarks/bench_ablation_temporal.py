"""Ablation A4: reserved fork nodes vs the naive MAXINT-high tree."""

from repro.bench import ablation_temporal

from conftest import emit


def test_ablation_temporal(benchmark, scale):
    """The reserved-node scheme keeps the backbone low and walks short."""
    result = benchmark.pedantic(ablation_temporal, rounds=1, iterations=1)
    emit(result)
    rows = {row["strategy"]: row for row in result.rows}
    reserved = next(v for k, v in rows.items() if "reserved" in k)
    naive = next(v for k, v in rows.items() if "naive" in k)
    assert reserved["height"] < naive["height"]
    assert (reserved["avg transient entries"]
            <= naive["avg transient entries"])
