"""Figure 15: response time vs minimum interval length (minstep effect)."""

from repro.bench import fig15_granularity

from conftest import emit


def test_fig15_granularity(benchmark, scale):
    """Response stays nearly flat in the minimum length; minstep grows.

    Paper: "the response time is almost independent of the minimum length
    of the stored intervals" and performance is "largely bound to the
    number of results".
    """
    result = benchmark.pedantic(fig15_granularity, rounds=1, iterations=1)
    emit(result)
    by_selectivity: dict[float, list[dict]] = {}
    for row in result.rows:
        by_selectivity.setdefault(row["selectivity [%]"], []).append(row)
    for selectivity, rows in by_selectivity.items():
        rows.sort(key=lambda r: r["min length"])
        # minstep rises monotonically with the minimum stored length.
        minsteps = [r["minstep"] for r in rows]
        assert minsteps == sorted(minsteps), minsteps
        # Flatness: physical I/O per query varies by at most 3 blocks +50%
        # across the x-axis (the paper's curves are visually flat).
        ios = [r["physical I/O"] for r in rows]
        assert max(ios) <= 1.5 * min(ios) + 3.0, (selectivity, ios)
    # Height falls as granularity coarsens.
    rows_by_length = sorted(result.rows, key=lambda r: r["min length"])
    heights = [r["height"] for r in rows_by_length]
    assert heights[0] >= heights[-1]
