"""Ablation A3: minstep pruning of query walks (Section 3.4 Lemma)."""

from repro.bench import ablation_minstep

from conftest import emit


def test_ablation_minstep(benchmark, scale):
    """Pruned walks produce strictly fewer transient entries."""
    result = benchmark.pedantic(ablation_minstep, rounds=1, iterations=1)
    emit(result)
    entries = {row["minstep pruning"]: row["avg transient entries"]
               for row in result.rows}
    assert entries["on"] < entries["off"]
