"""Figure 14: scaleup of disk accesses and response time with database size."""

from repro.bench import fig14_scaleup

from conftest import emit, is_discriminating


def test_fig14_scaleup(benchmark, scale):
    """RI-tree scales sublinearly; competitors scale linearly.

    Paper: the T-index/RI-tree I/O factor grows from 2 to 42 between 1k and
    1M intervals (response time 2.0 to 4.9).  The assertions check the
    monotone divergence, not the absolute factors.
    """
    result = benchmark.pedantic(fig14_scaleup, rounds=1, iterations=1)
    emit(result)
    by_size: dict[int, dict[str, dict]] = {}
    for row in result.rows:
        by_size.setdefault(row["db size"], {})[row["method"]] = row
    sizes = sorted(by_size)
    if is_discriminating(scale):
        largest = by_size[sizes[-1]]
        ri = largest["RI-tree"]["physical I/O"]
        assert largest["IST"]["physical I/O"] > 5 * ri
        if "T-index" in largest:
            assert largest["T-index"]["physical I/O"] > 1.5 * ri
        # Sublinear vs linear: growing the db by >= 10x must grow the
        # RI-tree's I/O by a smaller factor than the IST's.
        smallest = by_size[sizes[0]]
        ri_growth = (largest["RI-tree"]["physical I/O"]
                     / max(smallest["RI-tree"]["physical I/O"], 0.5))
        ist_growth = (largest["IST"]["physical I/O"]
                      / max(smallest["IST"]["physical I/O"], 0.5))
        assert ist_growth > ri_growth
