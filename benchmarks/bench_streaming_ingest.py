"""Streaming-ingest benchmark: parity, group commit, crash, serving.

Exercises the ingest subsystem (:mod:`repro.ingest`) end to end through
four gates, all hard failures (exit 1):

* **Checkpoint parity** -- a seeded stream (open now-relative rows and
  later closures included) is driven through a
  :class:`~repro.ingest.ingestor.StreamIngestor` into the temporal
  RI-tree and the HINT store, in both arrival disciplines.  At every
  checkpoint boundary the ingested store must answer intersection,
  count and join probes bit-identically to a brute-force oracle over
  the committed prefix (and to the searchsorted
  :class:`~repro.ingest.workload.IngestOracle`), and finish
  record-for-record equal to a bulk load of the stream's net image.

* **Group commit** -- ``append_batch`` on the WAL-backed trees must
  force the log exactly once per non-empty batch (and never for an
  empty one), asserted against the engine's ``wal.forces`` counter on
  a dedicated run with no clock advances or closures in the way.

* **Crash during ingest** -- the recovery benchmark's
  crash-at-every-write-point protocol replayed over a streaming run:
  whatever write point dies, :meth:`~repro.engine.database.Database.
  recover` must yield a verify()-clean store holding a committed batch
  prefix that answers queries like a brute-force oracle.

* **Ingest while serving** -- the sharded router topology of
  ``python -m repro.service`` takes a live append stream through the
  ``ingest_batch`` op while a concurrent reader replays the mixed
  Figure-13-style query workload; after the stream drains, a final
  read pass must match a local oracle loaded with initial + streamed
  records.  Sustained writer records/s and reader ops/s ride along as
  informational metrics.

Usage::

    python benchmarks/bench_streaming_ingest.py               # small
    python benchmarks/bench_streaming_ingest.py --scale tiny  # CI smoke
    python benchmarks/bench_streaming_ingest.py --output out.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.bench.experiments import get_scale
from repro.core import RITree, TemporalRITree
from repro.core.stores import create_store
from repro.core.temporal import UPPER_INF, UPPER_NOW
from repro.engine import Database, FaultInjector, SimulatedCrash
from repro.ingest import IngestOracle, StreamIngestor, StreamWorkload, replay_records
from repro.methods.memory import BruteForceIntervals
from repro.service.client import ServiceClient
from repro.service.loadgen import build_dataset, build_ops, evaluate_ops, run_load

#: Parity legs: backend x arrival discipline.
PARITY_BACKENDS = ("temporal-ritree", "hint")


def materialise(records, clock):
    """Net stream records with effective uppers, the stores' convention:
    now-relative rows at the clock, infinite rows keep the sentinel."""
    return [
        (lower, clock if upper == UPPER_NOW else upper, interval_id)
        for lower, upper, interval_id in records
    ]


def probe_windows(rng, clock, mean_length, count=4):
    hi = max(clock, 4 * mean_length, 1)
    out = []
    for _ in range(count):
        lower = rng.randrange(0, hi)
        out.append((lower, lower + rng.randrange(1, 4 * mean_length + 1)))
    return out


def brute_join_count(reference, probes):
    return sum(
        1
        for _pl, _pu, _pid in probes
        for lower, upper, _i in reference
        if lower <= _pu and _pl <= upper
    )


def check_boundary(store, oracle, workload, upto, rng, mismatches):
    """One parity check: ingested store vs committed-prefix oracles."""
    prefix, clock = replay_records(workload, upto=upto)
    reference = materialise(prefix, clock)
    brute = BruteForceIntervals(reference)
    for ql, qu in probe_windows(rng, clock, workload.mean_length):
        expected_ids = sorted(brute.intersection(ql, qu))
        if sorted(store.intersection(ql, qu)) != expected_ids:
            mismatches.append(("intersection", upto, ql, qu))
        count = store.intersection_count(ql, qu)
        if count != len(expected_ids) or count != oracle.expected_count(ql, qu):
            mismatches.append(("count", upto, ql, qu))
    probes = [
        (ql, qu, probe_id)
        for probe_id, (ql, qu) in enumerate(
            probe_windows(rng, clock, workload.mean_length, count=3), start=1
        )
    ]
    if store.join_count(probes) != brute_join_count(reference, probes):
        mismatches.append(("join_count", upto, len(probes), 0))


def run_parity(scale, seed):
    """Gate 1: checkpoint-boundary parity on every backend/mode leg."""
    rows = []
    mismatch_total = 0
    check_total = 0
    for backend in PARITY_BACKENDS:
        for mode in ("increasing-end", "general"):
            workload = StreamWorkload(
                seed=seed + 17,
                batches=scale["ingest_batches"],
                batch_size=scale["ingest_batch_size"],
                mode=mode,
                domain=scale["ingest_serve_domain"],
                mean_length=scale["ingest_mean_length"],
                open_fraction=scale["ingest_open_fraction"],
            )
            if backend == "temporal-ritree":
                store = TemporalRITree(Database(wal=True), now=0)
                checkpoint_batches = scale["ingest_checkpoint"]
            else:
                store = create_store("hint", now=0)
                checkpoint_batches = 0
            ingestor = StreamIngestor(
                store,
                flush_records=scale["ingest_flush"],
                checkpoint_batches=checkpoint_batches,
            )
            oracle = IngestOracle()
            rng = random.Random(seed + 23)
            mismatches = []
            checks = 0
            for batch in workload:
                ingestor.submit(batch)
                oracle.observe(batch)
                if (batch.seq + 1) % scale["ingest_check_every"] == 0:
                    ingestor.flush()
                    check_boundary(
                        store, oracle, workload, batch.seq + 1, rng, mismatches
                    )
                    checks += 1
            stats = ingestor.drain()
            check_boundary(store, oracle, workload, None, rng, mismatches)
            checks += 1
            final, clock = replay_records(workload)
            if sorted(store.stored_records()) != sorted(materialise(final, clock)):
                mismatches.append(("stored_records", None, 0, 0))
            if not store.verify().ok:
                mismatches.append(("verify", None, 0, 0))
            mismatch_total += len(mismatches)
            check_total += checks
            rows.append(
                {
                    "gate": "parity",
                    "backend": backend,
                    "mode": mode,
                    "parity_checks": checks,
                    "mismatches": len(mismatches),
                    "mismatch_detail": mismatches[:5],
                    "final_records": len(final),
                    **stats.as_dict(),
                }
            )
    return rows, check_total, mismatch_total


def run_trace(scale, seed):
    """Gate 2: one WAL force per non-empty append_batch, none when empty."""
    workload = StreamWorkload(
        seed=seed + 31,
        batches=scale["ingest_batches"],
        batch_size=scale["ingest_batch_size"],
        mode="increasing-end",
        mean_length=scale["ingest_mean_length"],
        open_fraction=0.0,
    )
    row = {"gate": "trace", "batches": 0, "extra_forces": 0, "empty_forces": 0}
    for store in (
        RITree(Database(wal=True)),
        TemporalRITree(Database(wal=True), now=0),
    ):
        for batch in workload:
            before = store.db.wal.forces
            store.append_batch(batch.records)
            row["batches"] += 1
            row["extra_forces"] += store.db.wal.forces - before - 1
        before = store.db.wal.forces
        store.append_batch([])
        row["empty_forces"] += store.db.wal.forces - before
    row["per_batch_ok"] = row["extra_forces"] == 0 and row["empty_forces"] == 0
    return row


def run_crash(scale, seed):
    """Gate 3: crash at every write point of a streaming ingest run."""
    workload = StreamWorkload(
        seed=seed + 43,
        batches=scale["ingest_crash_batches"],
        batch_size=scale["ingest_crash_batch_size"],
        mode="increasing-end",
        mean_length=scale["ingest_mean_length"],
        open_fraction=0.0,
    )

    def ingest_run(db):
        tree = RITree(db)
        ingestor = StreamIngestor(
            tree,
            flush_records=scale["ingest_crash_flush"],
            checkpoint_batches=2,
        )
        return tree, ingestor

    # Passive run: count write points, snapshot every committed state.
    passive = FaultInjector()
    db = Database(wal=True, injector=passive)
    tree, ingestor = ingest_run(db)
    allowed_states = [sorted(tree.stored_records())]
    for batch in workload:
        ingestor.submit(batch)
        allowed_states.append(sorted(tree.stored_records()))
    ingestor.drain()
    allowed_states.append(sorted(tree.stored_records()))
    db.flush()
    points = passive.write_points

    queries = probe_windows(
        random.Random(seed + 47),
        scale["ingest_crash_batches"] * 100,
        workload.mean_length,
        count=6,
    )
    recovered_clean = 0
    failures = []
    for n in range(1, points + 1):
        injector = FaultInjector().crash_at_write_point(n)
        db = Database(wal=True, injector=injector)
        crashed = False
        try:
            tree, ingestor = ingest_run(db)
            for batch in workload:
                ingestor.submit(batch)
            ingestor.drain()
            db.flush()
        except SimulatedCrash:
            crashed = True
        recovered_db = db.recover()
        if not recovered_db.has_table("Intervals"):
            if not crashed:
                failures.append((n, "lost the table silently"))
            else:
                recovered_clean += 1
            continue
        recovered = RITree.attach(recovered_db)
        if not recovered.verify().ok:
            failures.append((n, "fails verify()"))
            continue
        state = sorted(recovered.stored_records())
        if state not in allowed_states:
            failures.append((n, "not a committed batch prefix"))
            continue
        if not crashed and state != allowed_states[-1]:
            failures.append((n, "dropped a committed batch"))
            continue
        brute = BruteForceIntervals(recovered.stored_records())
        if any(
            sorted(recovered.intersection(ql, qu))
            != sorted(brute.intersection(ql, qu))
            for ql, qu in queries
        ):
            failures.append((n, "breaks query parity"))
            continue
        recovered_clean += 1
    return {
        "gate": "crash",
        "crash_points": points,
        "recovered_clean": recovered_clean,
        "records": len(allowed_states[-1]),
        "failures": failures[:5],
    }


def spawn_router(dataset_path, shards):
    """Start the router topology; returns (process, host, port)."""
    src_dir = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    extra = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join([str(src_dir), *extra])
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--port",
            "0",
            "--shards",
            str(shards),
            "--dataset",
            dataset_path,
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("LISTENING "):
        proc.kill()
        raise SystemExit(f"service failed to start: {line!r}")
    _, host, port = line.split()
    return proc, host, int(port)


def run_serving(scale, seed):
    """Gate 4: sustained appends through the router under a live reader."""
    n = scale["ingest_serve_n"]
    domain = scale["ingest_serve_domain"]
    shards = scale["ingest_serve_shards"]
    records, now = build_dataset(seed=seed, n=n, domain=domain)
    ops = build_ops(
        seed=seed + 1, count=scale["ingest_serve_queries"], domain=domain, now=now
    )
    workload = StreamWorkload(
        seed=seed + 53,
        batches=scale["ingest_serve_batches"],
        batch_size=scale["ingest_serve_batch_size"],
        mode="general",
        domain=domain,
        mean_length=scale["ingest_mean_length"],
        open_fraction=0.0,
    )
    id_base = n + 1000  # streamed ids must not collide with the dataset's

    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as handle:
        json.dump({"records": records, "now": now}, handle)
        dataset_path = handle.name

    proc, host, port = spawn_router(dataset_path, shards)
    reader_result = []
    try:
        reader = threading.Thread(
            target=lambda: reader_result.append(
                run_load(host, port, ops, scale["ingest_serve_concurrency"])
            )
        )
        reader.start()
        streamed = []
        started = time.perf_counter()
        with ServiceClient(host, port) as writer:
            for batch in workload:
                shifted = [
                    (lower, upper, interval_id + id_base)
                    for lower, upper, interval_id in batch.records
                ]
                writer.call("ingest_batch", records=shifted)
                streamed.extend(shifted)
        write_elapsed = time.perf_counter() - started
        reader.join()

        oracle = create_store("hint", now=now)
        oracle.bulk_load(records)
        oracle.append_batch(streamed)
        expected = evaluate_ops(oracle, ops)
        final = run_load(host, port, ops, 1)
        with ServiceClient(host, port) as client:
            routing = client.call("stats").get("routing") or {}
            client.call("shutdown")
    finally:
        Path(dataset_path).unlink()
        try:
            proc.wait(timeout=20)
        except subprocess.TimeoutExpired:
            proc.kill()

    concurrent = reader_result[0] if reader_result else None
    return {
        "gate": "serving",
        "initial_records": n,
        "streamed_records": len(streamed),
        "stream_batches": workload.batches,
        "shards": routing.get("shard_count", shards),
        "reader_ops": len(ops),
        "parity_ok": final.results == expected,
        "ingest_ops_s": len(streamed) / write_elapsed if write_elapsed else 0.0,
        "reader_ops_s": concurrent.throughput if concurrent else 0.0,
        "final_ops_s": final.throughput,
        "appends": sum(
            shard.get("appends", 0) for shard in routing.get("shards", [])
        ),
    }


def run(scale_name, seed):
    scale = get_scale(scale_name)
    report = {
        "workload": "ingest",
        "scale": scale["name"],
        "seed": seed,
        "rows": [],
    }
    started = time.perf_counter()
    parity_rows, checks, mismatches = run_parity(scale, seed)
    report["rows"].extend(parity_rows)
    trace = run_trace(scale, seed)
    report["rows"].append(trace)
    crash = run_crash(scale, seed)
    report["rows"].append(crash)
    serving = run_serving(scale, seed)
    report["rows"].append(serving)
    elapsed = time.perf_counter() - started
    report["summary"] = {
        "parity_ok": mismatches == 0,
        "parity_checks": checks,
        "records": sum(r["records"] for r in parity_rows),
        "flushes": sum(r["flushes"] for r in parity_rows),
        "closes": sum(r["closes"] for r in parity_rows),
        "checkpoints": sum(r["checkpoints"] for r in parity_rows),
        "wal_force_batches": trace["batches"],
        "wal_force_per_batch_ok": trace["per_batch_ok"],
        "crash_points": crash["crash_points"],
        "recovered_clean": crash["recovered_clean"],
        "all_recovered": crash["recovered_clean"] == crash["crash_points"],
        "serving_parity_ok": serving["parity_ok"],
        "streamed_records": serving["streamed_records"],
        "ingest_ops_s": serving["ingest_ops_s"],
        "reader_ops_s": serving["reader_ops_s"],
        "time_s": elapsed,
    }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Streaming ingest benchmark: parity, group commit, "
        "crash recovery, ingest-while-serving"
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="scale preset (default: REPRO_BENCH_SCALE or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, help="path for the JSON report")
    args = parser.parse_args(argv)

    report = run(args.scale, args.seed)
    text = json.dumps(report, indent=1)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    summary = report["summary"]
    print(
        f"parity: {summary['parity_checks']} checkpoint checks across "
        f"{len(PARITY_BACKENDS) * 2} backend/mode legs, "
        f"{summary['records']} records in {summary['flushes']} group "
        f"commits ({summary['closes']} closures, "
        f"{summary['checkpoints']} checkpoints)"
        + ("" if summary["parity_ok"] else " -- FAILED")
    )
    print(
        f"group commit: {summary['wal_force_batches']} batches, one WAL "
        f"force each: {'ok' if summary['wal_force_per_batch_ok'] else 'FAILED'}"
    )
    print(
        f"crash: {summary['recovered_clean']}/{summary['crash_points']} "
        f"write points recover to a committed batch prefix"
    )
    print(
        f"serving: {summary['streamed_records']} records ingested at "
        f"{summary['ingest_ops_s']:.0f} rec/s while the reader ran at "
        f"{summary['reader_ops_s']:.0f} ops/s; final parity "
        f"{'ok' if summary['serving_parity_ok'] else 'FAILED'} "
        f"in {summary['time_s']:.2f}s total"
    )
    failed = not (
        summary["parity_ok"]
        and summary["wal_force_per_batch_ok"]
        and summary["all_recovered"]
        and summary["serving_parity_ok"]
    )
    if failed:
        print("FAIL: streaming ingest gate violated", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
