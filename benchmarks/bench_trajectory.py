"""Merge benchmark reports into BENCH_PR.json and diff the baselines.

The CLI face of :mod:`repro.bench.trajectory`: CI (the
``bench-trajectory`` job) runs the scan-throughput, interval-join,
join-crossover, sql-join, and predicate-join benchmarks at tiny scale,
then invokes this script to

* merge their reports into one ``BENCH_PR.json`` artifact
  (rows of ``{bench, scale, metrics, git_sha}``), and
* compare against the committed baseline under ``benchmarks/baselines/``,
  failing with a readable delta table when a deterministic metric drifts
  or a quality ratio regresses.

Usage::

    python benchmarks/bench_trajectory.py --out BENCH_PR.json \\
        scan-throughput=scan.json interval-join=join.json \\
        join-crossover=crossover.json

    # refresh the committed baseline after a deliberate change:
    python benchmarks/bench_trajectory.py --write-baseline \\
        benchmarks/baselines/bench_trajectory_tiny.json ...
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
from pathlib import Path

from repro.bench import trajectory

DEFAULT_BASELINE = (Path(__file__).parent / "baselines"
                    / "bench_trajectory_tiny.json")


def resolve_sha(explicit: str | None) -> str:
    """The commit the trajectory row is attributed to."""
    if explicit:
        return explicit
    env = os.environ.get("GITHUB_SHA")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=Path(__file__).parent, timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Merge bench reports into BENCH_PR.json, diff baselines"
    )
    parser.add_argument(
        "reports", nargs="+", metavar="BENCH=PATH",
        help="benchmark reports as name=path pairs "
             f"(names: {sorted(trajectory.BENCH_EXTRACTORS)})")
    parser.add_argument("--out", default="BENCH_PR.json",
                        help="merged report path (default: BENCH_PR.json)")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="committed baseline to diff against")
    parser.add_argument("--sha", default=None,
                        help="commit sha (default: GITHUB_SHA or git HEAD)")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="write the merged rows as a new baseline "
                             "instead of diffing")
    args = parser.parse_args(argv)

    named = {}
    for pair in args.reports:
        bench, _, path = pair.partition("=")
        if not path:
            parser.error(f"report {pair!r} is not a BENCH=PATH pair")
        named[bench] = json.loads(Path(path).read_text())

    merged = trajectory.merge_reports(named, git_sha=resolve_sha(args.sha))
    Path(args.out).write_text(json.dumps(merged, indent=1) + "\n")
    print(f"merged trajectory written to {args.out} "
          f"({len(merged['rows'])} rows, sha {merged['git_sha'][:12]})")

    if args.write_baseline:
        baseline = trajectory.strip_baseline(merged)
        Path(args.write_baseline).write_text(
            json.dumps(baseline, indent=1) + "\n")
        print(f"baseline written to {args.write_baseline}")
        return 0

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping comparison "
              "(commit one with --write-baseline)")
        return 0
    baseline = json.loads(baseline_path.read_text())
    deltas = trajectory.compare_to_baseline(merged, baseline)
    print()
    print(trajectory.render_delta_table(deltas))
    failures = trajectory.regressions(deltas)
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed against "
              f"{baseline_path}")
        print("update the baseline deliberately with --write-baseline "
              "if the change is intended")
        return 1
    print(f"\nbaseline check OK against {baseline_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
