"""Shared fixtures for the benchmark suite.

Every ``bench_*`` module regenerates one table/figure of the paper through
:mod:`repro.bench.experiments` and prints the measured rows, so a
``pytest benchmarks/ --benchmark-only`` run leaves the full evaluation in
the captured output.  Scale is controlled by ``REPRO_BENCH_SCALE``
(tiny/small/full; default small).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import get_scale


@pytest.fixture(scope="session")
def scale() -> dict:
    """The active scale preset."""
    return get_scale()


def emit(result) -> None:
    """Print an experiment's markdown table into the captured output."""
    print()
    print(result.to_markdown())


def is_discriminating(scale: dict) -> bool:
    """Whether the scale is large enough for I/O shape assertions.

    At ``tiny`` scale every database fits in the 200-block buffer cache, so
    physical I/O cannot separate the methods; assertions about who wins are
    only checked at ``small``/``full``.
    """
    return scale["name"] != "tiny"
