"""Figure 12: number of index entries for varying database size."""

from repro.bench import fig12_storage

from conftest import emit


def test_fig12_storage(benchmark, scale):
    """IST stores n entries, the RI-tree 2n, the T-index a redundant factor."""
    result = benchmark.pedantic(fig12_storage, rounds=1, iterations=1)
    emit(result)
    by_size: dict[int, dict[str, dict]] = {}
    for row in result.rows:
        by_size.setdefault(row["db size"], {})[row["method"]] = row
    for size, methods in by_size.items():
        assert methods["IST"]["index entries"] == size
        assert methods["RI-tree"]["index entries"] == 2 * size
        # The decomposition always produces at least one entry per interval
        # and, on D4(*, 2k) at the tuned level, measurably more (the paper
        # reports factor 10.1).
        assert methods["T-index"]["index entries"] >= size
    largest = max(by_size)
    assert by_size[largest]["T-index"]["redundancy"] > 1.2
