"""SQL-backend interval-join benchmark: the Figure 9 join on sqlite3.

Runs the interval equi-overlap join ``R JOIN S`` with the inner relation
stored in the sqlite3-backed :class:`~repro.sql.SQLRITree` and verifies
that the *set-at-a-time* SQL evaluation -- the probe relation loaded into
a TEMP table and joined against the literal Figure 9 form in one
statement -- reproduces, pair for pair, every other evaluation of the
same join:

* the simulated-engine RI-tree's batched index-nested-loop join,
* the Piatov-style plane sweep over the SQL tree's ``stored_records``,
* the ``auto`` strategy planning on ``RITreeCostModel.from_sql_tree``
  statistics (its dispatch must match the planner's published choice),
* the independent ``searchsorted`` counting oracle.

The script also asserts that sqlite's own optimizer drives the join's
nested-loop plan through both Figure 2 indexes (``EXPLAIN QUERY PLAN``
must SEARCH lowerIndex and upperIndex), and exits non-zero on any
parity or planner-consistency failure, making it a CI gate.

Usage::

    python benchmarks/bench_sql_join.py                # small scale
    python benchmarks/bench_sql_join.py --scale tiny   # CI smoke
    python benchmarks/bench_sql_join.py --output out.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.bench.experiments import get_scale
from repro.bench.harness import paper_database, run_join_batch
from repro.core.join import AutoJoin, SweepJoin
from repro.core.ritree import RITree
from repro.sql import SQLRITree
from repro.workloads import joins as join_gen


def run(scale_name, seed):
    scale = get_scale(scale_name)
    workload = join_gen.join_workload(
        outer_n=scale["join_outer_n"],
        inner_n=scale["join_inner_n"],
        outer_d=scale["join_outer_d"],
        inner_d=scale["join_inner_d"],
        seed=seed,
    )
    outer, inner = workload.outer.records, workload.inner.records

    report = {
        "workload": workload.name,
        "scale": scale["name"],
        "seed": seed,
        "outer_n": workload.outer.n,
        "inner_n": workload.inner.n,
        "rows": [],
    }

    sql_tree = SQLRITree()
    sql_tree.bulk_load(inner)

    # The planner's view of the workload, from SQL-aggregated statistics.
    planner = sql_tree.cost_model().estimate_join(outer)
    report["planner"] = planner.as_dict()

    # The set-at-a-time SQL join, driven through the shared harness entry
    # point (count path first -- no pair list crosses the DB-API boundary
    # -- then the pair path, which must agree).
    count_batch = run_join_batch(sql_tree, outer, count_only=True, plan=True)
    started = time.perf_counter()
    sql_pairs = sql_tree.join_pairs(outer)
    pairs_elapsed = time.perf_counter() - started
    if count_batch.pairs != len(sql_pairs):
        raise SystemExit(
            f"SQL join paths diverge: join_count {count_batch.pairs} != "
            f"join_pairs {len(sql_pairs)}"
        )
    report["rows"].append(
        {
            "strategy": "sql-batch",
            "pairs": count_batch.pairs,
            "count_time_s": count_batch.response_time,
            "pairs_time_s": pairs_elapsed,
            "predicted": count_batch.decision,
        }
    )

    # Plane sweep over the SQL tree's enumerated relation.
    started = time.perf_counter()
    sweep_pairs = SweepJoin().pairs(outer, sql_tree.stored_records())
    sweep_elapsed = time.perf_counter() - started
    report["rows"].append(
        {
            "strategy": "sweep",
            "pairs": len(sweep_pairs),
            "pairs_time_s": sweep_elapsed,
        }
    )

    # Auto strategy planning (and dispatching) on the sqlite backend.
    auto = AutoJoin(method=sql_tree)
    started = time.perf_counter()
    auto_pairs = auto.pairs(outer, inner)
    auto_elapsed = time.perf_counter() - started
    # The dispatch must match the planner's published choice AND the
    # dispatched_to field now reports what actually ran (last_dispatch),
    # not merely what the planner picked.
    decision_consistent = auto.last_dispatch == planner.choice
    report["rows"].append(
        {
            "strategy": "auto",
            "pairs": len(auto_pairs),
            "pairs_time_s": auto_elapsed,
            "dispatched_to": auto.last_dispatch,
            "predicted": auto.last_decision.as_dict(),
        }
    )

    # The simulated-engine index join over the same inner relation.
    engine_tree = RITree(paper_database())
    engine_tree.bulk_load(inner)
    engine_tree.db.flush()
    engine_batch = run_join_batch(engine_tree, outer, count_only=False)
    engine_pairs = engine_tree.join_pairs(outer)
    report["rows"].append(
        {
            "strategy": "engine-index",
            "pairs": engine_batch.pairs,
            "physical_reads": engine_batch.physical_io,
            "logical_reads": engine_batch.logical_io,
            "pairs_time_s": engine_batch.response_time,
        }
    )

    # Cross-backend parity: identical pair SETS everywhere, and the
    # independent counting oracle agrees on the size.
    counting_oracle = workload.expected_pairs()
    reference = sorted(sql_pairs)
    for label, pairs in (
        ("sweep", sweep_pairs),
        ("auto", auto_pairs),
        ("engine-index", engine_pairs),
    ):
        if sorted(pairs) != reference:
            raise SystemExit(f"pair-set parity failure: sql-batch vs {label}")
    if len(reference) != counting_oracle:
        raise SystemExit(
            f"counting oracle disagrees: {len(reference)} != {counting_oracle}"
        )
    if not decision_consistent:
        raise SystemExit(
            f"auto dispatched to {auto.last_decision.choice!r} but the "
            f"planner chose {planner.choice!r}"
        )
    report["parity"] = {
        "status": "identical",
        "pairs": counting_oracle,
        "strategies_compared": ["sql-batch", "sweep", "auto", "engine-index"],
    }

    # The optimizer must drive the batch statement through both indexes.
    plan_lines = sql_tree.explain_join(outer[: min(len(outer), 16)])
    uses_both = any("lowerIndex" in line for line in plan_lines) and any(
        "upperIndex" in line for line in plan_lines
    )
    if not uses_both:
        raise SystemExit(f"batch join plan skips an index: {plan_lines}")
    report["query_plan"] = plan_lines

    report["summary"] = {
        "pairs": counting_oracle,
        "join_selectivity": workload.selectivity(),
        "planner_choice": planner.choice,
        "decision_consistent": decision_consistent,
        "plan_uses_both_indexes": uses_both,
        "sql_count_time_s": count_batch.response_time,
        "sql_pairs_time_s": pairs_elapsed,
        "sweep_time_s": sweep_elapsed,
    }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="SQL-backend (sqlite3) interval-join parity benchmark"
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="scale preset (default: REPRO_BENCH_SCALE or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, help="path for the JSON report")
    args = parser.parse_args(argv)

    report = run(args.scale, args.seed)
    text = json.dumps(report, indent=1)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    summary = report["summary"]
    print(
        f"{report['workload']}: {summary['pairs']} pairs "
        f"(selectivity {summary['join_selectivity']:.2e})"
    )
    print(
        f"parity: {report['parity']['status']} across "
        f"{report['parity']['strategies_compared']}"
    )
    print(
        f"planner choice: {summary['planner_choice']} "
        f"(auto dispatch consistent: {summary['decision_consistent']})"
    )
    print(
        f"wall time: sql count {summary['sql_count_time_s']:.3f}s, "
        f"sql pairs {summary['sql_pairs_time_s']:.3f}s, "
        f"sweep {summary['sweep_time_s']:.3f}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
