"""Figure 16: response time vs mean interval duration."""

from repro.bench import fig16_duration

from conftest import emit, is_discriminating


def test_fig16_duration(benchmark, scale):
    """T-index redundancy falls to 1 for points; RI-tree stays competitive.

    Paper: redundancy drops "from 10.1 to 1 when the mean value of interval
    duration is reduced from 2,000 to 0"; for points the two methods are
    close, for longer intervals the RI-tree clearly wins.
    """
    result = benchmark.pedantic(fig16_duration, rounds=1, iterations=1)
    emit(result)
    by_mean: dict[int, dict[str, dict]] = {}
    for row in result.rows:
        by_mean.setdefault(row["mean duration"], {})[row["method"]] = row
    means = sorted(by_mean)
    zero = by_mean[means[0]]
    assert zero["T-index"]["T-index redundancy"] == 1.0
    longest = by_mean[means[-1]]
    assert longest["T-index"]["T-index redundancy"] > 1.0
    if is_discriminating(scale):
        # For long durations the RI-tree does at most half the T-index I/O
        # is too strong at small scale; require a clear non-loss instead.
        assert (longest["RI-tree"]["physical I/O"]
                <= longest["T-index"]["physical I/O"] * 1.1)
        # And the IST pays an order of magnitude more than the RI-tree.
        assert (longest["IST"]["physical I/O"]
                > 3 * longest["RI-tree"]["physical I/O"])
