"""Shared measurement helpers for the benchmark scripts.

Imported by sibling ``bench_*`` scripts (the script's own directory is on
``sys.path`` when run as ``python benchmarks/bench_x.py``), so the
profile-hook operation counter and the repeat-and-keep-best protocol stay
identical across benchmarks instead of drifting as copies.
"""

from __future__ import annotations

import sys


def count_frame_activations(runner):
    """Run ``runner`` under a profile hook counting 'call' events.

    Every Python function call *and* every generator resume activates a
    frame, so this is a direct, deterministic proxy for the per-entry
    interpreter work the batched pipelines eliminate.  Returns
    ``(activation count, runner's result)``.
    """
    counter = 0

    def hook(frame, event, arg):
        nonlocal counter
        if event == "call":
            counter += 1

    sys.setprofile(hook)
    try:
        result = runner()
    finally:
        sys.setprofile(None)
    return counter, result


def best_of(repeat, runner, keys):
    """Repeat ``runner``, demand deterministic ``keys``, keep best time.

    ``runner`` returns a dict containing every key in ``keys`` plus
    ``"time_s"``.  Counter-valued keys (result sizes, logical/physical
    I/O) must reproduce exactly across repetitions -- they are
    deterministic, so any drift aborts the benchmark -- while the minimum
    wall time is kept, the standard defence against scheduler noise.
    """
    best = None
    for _ in range(repeat):
        row = runner()
        if best is None:
            best = row
        else:
            for key in keys:
                if best[key] != row[key]:
                    raise SystemExit(
                        f"non-deterministic measurement: {key} "
                        f"{best[key]} vs {row[key]}"
                    )
            best["time_s"] = min(best["time_s"], row["time_s"])
    return best
