"""Ablation A1: Figure 9 two-branch query vs Figure 8 three-branch OR."""

from repro.bench import ablation_query_forms

from conftest import emit


def test_ablation_query_forms(benchmark, scale):
    """The simplified Figure 9 form must not lose to the preliminary form.

    (On sqlite3 the OR-form cannot be driven from the composite indexes and
    is typically orders of magnitude slower.)
    """
    result = benchmark.pedantic(ablation_query_forms, rounds=1, iterations=1)
    emit(result)
    times = {row["query form"]: row["time [ms]"] for row in result.rows}
    counts = {row["query form"]: row["avg results"] for row in result.rows}
    assert len(set(counts.values())) == 1, counts
    final = next(t for form, t in times.items() if "Figure 9" in form)
    preliminary = next(t for form, t in times.items() if "Figure 8" in form)
    assert final <= preliminary
