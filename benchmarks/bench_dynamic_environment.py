"""Section 6.3's clustering remark: bulk-loaded vs dynamically built."""

from repro.bench import dynamic_environment

from conftest import emit, is_discriminating


def test_dynamic_environment(benchmark, scale):
    """Dynamic builds must not help anyone, and must hurt the T-index more
    than the RI-tree (whose plan is index-only)."""
    result = benchmark.pedantic(dynamic_environment, rounds=1, iterations=1)
    emit(result)
    table: dict[tuple[str, str], dict] = {}
    for row in result.rows:
        table[(row["method"], row["build"])] = row
    for method in ("RI-tree", "IST", "T-index"):
        bulk = table[(method, "bulk")]["physical I/O"]
        dynamic = table[(method, "dynamic")]["physical I/O"]
        assert dynamic >= 0.8 * bulk, (method, bulk, dynamic)
        assert (table[(method, "bulk")]["avg results"]
                == table[(method, "dynamic")]["avg results"])
    if is_discriminating(scale):
        ri_ratio = (table[("RI-tree", "dynamic")]["physical I/O"]
                    / max(table[("RI-tree", "bulk")]["physical I/O"], 0.5))
        t_ratio = (table[("T-index", "dynamic")]["physical I/O"]
                   / max(table[("T-index", "bulk")]["physical I/O"], 0.5))
        assert t_ratio >= ri_ratio * 0.9
