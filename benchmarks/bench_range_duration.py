"""Range-duration benchmark: one query family, five backends, graded.

The acceptance gate of the query-family tentpole, on the genomic
workload (chromosome-partitioned domains, heavily right-skewed feature
lengths -- the shape that makes duration bands selective at all).  Four
legs:

* **Parity** -- on one genomic database, every ``range_duration`` band
  must return the identical sorted id set on all five registered
  backends (simulated-disk RI-tree, temporal RI-tree, sqlite RI-tree,
  HINT, and the sharded router at every configured shard count over
  chromosome-edge cuts), matched against a brute-force oracle; a join
  leg must produce the oracle's exact pair set and ``join_count`` must
  agree with ``join_pairs`` everywhere.
* **Temporal** -- the three temporal-capable backends load now-relative
  and open-ended rows on top of the finite records; every band must
  match the oracle evaluated on *effective* bounds (now-rows at the
  clock, infinite rows only inside unbounded bands).
* **SQL one-statement** -- the sqlite backend must answer each family
  query with ONE rewritten Figure 9 statement (verified by the trace
  hook) whose ``EXPLAIN`` SEARCHes both Figure 2 indexes and builds no
  AUTOMATIC index.
* **Planner grading** -- on a (probe count x duration band) grid,
  ``AutoJoin(predicate=range_duration(...))`` must pick the
  measured-cheaper strategy (by physical reads, ties correct) on at
  least :data:`ACCURACY_FLOOR` of the grid -- the calibration record for
  the duration histogram of ``repro.core.costmodel.BoundSummary``.

The script exits non-zero on any parity, plan-shape, or accuracy
failure, making it a CI gate; its JSON report feeds the
``range-duration`` row of the bench-trajectory pipeline.

Usage::

    python benchmarks/bench_range_duration.py                # small scale
    python benchmarks/bench_range_duration.py --scale tiny   # CI smoke
    python benchmarks/bench_range_duration.py --output out.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.bench.experiments import get_scale
from repro.bench.harness import paper_database, run_join_batch
from repro.core import HintStore, RITree, TemporalRITree
from repro.core.join import AutoJoin, NestedLoopJoin, SweepJoin
from repro.core.predicates import range_duration
from repro.core.router import ShardedStore
from repro.core.temporal import UPPER_INF
from repro.sql import SQLRITree
from repro.workloads import (
    OUTER_ID_OFFSET,
    chromosome_cuts,
    duration_band,
    genomic,
)
from repro.workloads import queries as query_gen

#: Minimum fraction of grid points where auto must pick the strategy
#: that measured cheaper (by physical reads).  The acceptance gate.
ACCURACY_FLOOR = 0.9

#: The clock used by the temporal leg, chosen mid-domain so now-relative
#: rows get a spread of effective durations.
TEMPORAL_NOW = 500_000


def _oracle(records, pred, lower, upper):
    """Sorted ids of records standing in ``pred`` to ``[lower, upper]``."""
    holds = pred.holds
    return sorted(
        interval_id
        for s, e, interval_id in records
        if holds(s, e, lower, upper)
    )


def _band_predicates(records, fractions):
    """One compiled ``range_duration`` query per configured band."""
    bands = []
    for lo_fraction, hi_fraction in fractions:
        dmin, dmax = duration_band(records, lo_fraction, hi_fraction)
        bands.append(
            {
                "fractions": [lo_fraction, hi_fraction],
                "dmin": dmin,
                "dmax": dmax,
                "query": range_duration(dmin, dmax),
            }
        )
    return bands


def _build_stores(records, shard_counts):
    """All five backends plus the sharded router per shard count."""
    stores = {
        "ritree": RITree(paper_database()),
        "temporal-ritree": TemporalRITree(paper_database()),
        "sql-ritree": SQLRITree(),
        "hint": HintStore(),
    }
    for shard_count in shard_counts:
        stores[f"sharded-{shard_count}"] = ShardedStore.create(
            backend="hint", cuts=chromosome_cuts(shard_count)
        )
    for store in stores.values():
        store.bulk_load(records)
    return stores


def _parity_leg(workload, bands, scale, seed):
    """Every band on every backend against the brute-force oracle."""
    records = workload.records
    stores = _build_stores(records, scale["range_duration_shard_counts"])
    windows = query_gen.range_queries(
        workload, 0.01, scale["range_duration_queries"], seed=seed + 7
    )
    rows = []
    for band in bands:
        pred = band["query"]
        expected = [_oracle(records, pred, lo, up) for lo, up in windows]
        for label, store in stores.items():
            started = time.perf_counter()
            answers = [
                sorted(store.query(lo, up, predicate=pred))
                for lo, up in windows
            ]
            elapsed = time.perf_counter() - started
            if answers != expected:
                raise SystemExit(
                    f"range-duration parity failure: {label} diverges "
                    f"from the oracle on band {band['fractions']}"
                )
            rows.append(
                {
                    "backend": label,
                    "band": band["fractions"],
                    "dmin": band["dmin"],
                    "dmax": band["dmax"],
                    "queries": len(windows),
                    "results_total": sum(len(ids) for ids in expected),
                    "time_s": elapsed,
                }
            )
    # Join leg: an independent genomic probe relation, oracle pair set.
    probes = [
        (lower, upper, OUTER_ID_OFFSET + interval_id)
        for lower, upper, interval_id in genomic(
            scale["range_duration_probe_n"], seed=seed + 13
        ).records
    ]
    pairs_total = 0
    for band in bands:
        pred = band["query"]
        expected_pairs = sorted(
            NestedLoopJoin(predicate=pred).pairs(probes, records)
        )
        pairs_total += len(expected_pairs)
        for label, store in stores.items():
            pairs = sorted(store.join_pairs(probes, predicate=pred))
            if pairs != expected_pairs:
                raise SystemExit(
                    f"range-duration join parity failure: {label} on "
                    f"band {band['fractions']} ({len(pairs)} vs "
                    f"{len(expected_pairs)} pairs)"
                )
            if store.join_count(probes, predicate=pred) != len(expected_pairs):
                raise SystemExit(
                    f"join_count diverges from join_pairs on {label}"
                )
    return rows, len(probes), pairs_total


def _temporal_leg(workload, bands, scale, seed):
    """Sentinel rows on the temporal backends, oracle on effective bounds."""
    records = workload.records
    temporal_n = scale["range_duration_temporal_rows"]
    sentinel_source = genomic(2 * temporal_n, seed=seed + 29).records
    now_rows = [
        (lower % TEMPORAL_NOW, interval_id + len(records))
        for lower, _upper, interval_id in sentinel_source[:temporal_n]
    ]
    infinite_rows = [
        (lower, interval_id + len(records))
        for lower, _upper, interval_id in sentinel_source[temporal_n:]
    ]
    stores = {
        "temporal-ritree": TemporalRITree(paper_database()),
        "sql-ritree": SQLRITree(),
        "hint": HintStore(),
    }
    effective = list(records)
    for store in stores.values():
        store.bulk_load(records)
        store.advance_to(TEMPORAL_NOW)
        for lower, interval_id in now_rows:
            store.insert_until_now(lower, interval_id)
        for lower, interval_id in infinite_rows:
            store.insert_infinite(lower, interval_id)
    effective.extend(
        (lower, TEMPORAL_NOW, interval_id) for lower, interval_id in now_rows
    )
    effective.extend(
        (lower, UPPER_INF, interval_id) for lower, interval_id in infinite_rows
    )
    windows = query_gen.range_queries(
        workload, 0.01, scale["range_duration_queries"], seed=seed + 31
    )
    results_total = 0
    for band in bands:
        pred = band["query"]
        expected = [_oracle(effective, pred, lo, up) for lo, up in windows]
        results_total += sum(len(ids) for ids in expected)
        for label, store in stores.items():
            answers = [
                sorted(store.query(lo, up, predicate=pred))
                for lo, up in windows
            ]
            if answers != expected:
                raise SystemExit(
                    f"temporal range-duration parity failure: {label} "
                    f"diverges on band {band['fractions']}"
                )
    return {
        "now_rows": len(now_rows),
        "infinite_rows": len(infinite_rows),
        "results_total": results_total,
    }


def _sql_leg(workload, bands, scale, seed):
    """One-statement sqlite evaluation per family query, EXPLAIN-verified."""
    sql_tree = SQLRITree()
    sql_tree.bulk_load(workload.records)
    windows = query_gen.range_queries(
        workload, 0.01, scale["range_duration_queries"], seed=seed + 7
    )
    one_statement = True
    plans_clean = True
    for band in bands:
        pred = band["query"]
        for lower, upper in windows:
            statements = []
            sql_tree.conn.set_trace_callback(statements.append)
            sql_tree.query(lower, upper, predicate=pred)
            sql_tree.conn.set_trace_callback(None)
            selects = [
                s for s in statements if s.lstrip().startswith("SELECT")
            ]
            if len(selects) != 1:
                one_statement = False
            plan = "\n".join(
                sql_tree.explain_query(lower, upper, predicate=pred)
            )
            if ("lowerIndex" not in plan or "upperIndex" not in plan
                    or "AUTOMATIC" in plan):
                plans_clean = False
    if not one_statement:
        raise SystemExit(
            "sqlite range-duration query issued more than ONE statement"
        )
    if not plans_clean:
        raise SystemExit(
            "sqlite range-duration plan skips a Figure 2 index or builds "
            "an automatic index"
        )
    return {"one_statement": one_statement, "plans_clean": plans_clean}


def _measure_sweep_io(outer, inner):
    """Cold-cache physical reads of the sweep's two input scans."""
    db = paper_database()
    outer_table = db.create_table("R", ["lower", "upper", "id"])
    inner_table = db.create_table("S", ["lower", "upper", "id"])
    outer_table.bulk_load(outer)
    inner_table.bulk_load(inner)
    db.flush()
    db.clear_cache()
    with db.measure() as delta:
        for _rowid, _row in outer_table.scan():
            pass
        for _rowid, _row in inner_table.scan():
            pass
    return delta.logical_reads, delta.physical_reads


def _grading_leg(scale, seed):
    """Measure both strategies per (probe count x duration band) point."""
    inner = genomic(scale["range_duration_grid_inner_n"], seed=seed + 41).records
    grid_bands = _band_predicates(inner, scale["range_duration_grid_bands"])
    rows = []
    for point, outer_n in enumerate(scale["range_duration_grid_outer_ns"]):
        outer = [
            (lower, upper, OUTER_ID_OFFSET + interval_id)
            for lower, upper, interval_id in genomic(
                outer_n, seed=seed * 10_000 + point + 43
            ).records
        ]
        tree = RITree(paper_database())
        tree.bulk_load(inner)
        tree.db.flush()
        sweep_logical, sweep_physical = _measure_sweep_io(outer, inner)
        for band in grid_bands:
            pred = band["query"]
            index_batch = run_join_batch(tree, outer, predicate=pred)
            expected = len(SweepJoin(predicate=pred).pairs(outer, inner))
            if index_batch.pairs != expected:
                raise SystemExit(
                    f"grid parity failure at outer={outer_n}, band "
                    f"{band['fractions']}: index {index_batch.pairs}, "
                    f"sweep {expected}"
                )
            decision = AutoJoin(predicate=pred).decide(outer, inner)
            index_physical = index_batch.physical_io
            if index_physical < sweep_physical:
                measured_cheaper = "index-nested-loop"
            elif sweep_physical < index_physical:
                measured_cheaper = "sweep"
            else:
                measured_cheaper = "tie"
            rows.append(
                {
                    "outer_n": outer_n,
                    "inner_n": len(inner),
                    "band": band["fractions"],
                    "dmin": band["dmin"],
                    "dmax": band["dmax"],
                    "pairs": expected,
                    "predicted_pairs": round(decision.result_count, 1),
                    "measured": {
                        "index-nested-loop": {
                            "logical_reads": index_batch.logical_io,
                            "physical_reads": index_physical,
                        },
                        "sweep": {
                            "logical_reads": sweep_logical,
                            "physical_reads": sweep_physical,
                        },
                    },
                    "choice": decision.choice,
                    "measured_cheaper": measured_cheaper,
                    "correct": measured_cheaper in (decision.choice, "tie"),
                }
            )
    return rows


def run(scale_name, seed):
    scale = get_scale(scale_name)
    workload = genomic(scale["range_duration_n"], seed=seed)
    bands = _band_predicates(workload.records, scale["range_duration_bands"])
    parity_rows, probe_n, pairs_total = _parity_leg(
        workload, bands, scale, seed
    )
    temporal_summary = _temporal_leg(workload, bands, scale, seed)
    sql_summary = _sql_leg(workload, bands, scale, seed)
    grid_rows = _grading_leg(scale, seed)
    correct = sum(1 for row in grid_rows if row["correct"])
    by_choice = {}
    for row in grid_rows:
        by_choice[row["choice"]] = by_choice.get(row["choice"], 0) + 1
    backends = sorted({row["backend"] for row in parity_rows})
    return {
        "workload": workload.name,
        "scale": scale["name"],
        "seed": seed,
        "parity_rows": parity_rows,
        "grid_rows": grid_rows,
        "summary": {
            "bands": len(bands),
            "backends": backends,
            "parity_queries": sum(
                row["queries"] for row in parity_rows
            ),
            "results_total": sum(
                row["results_total"]
                for row in parity_rows
                if row["backend"] == "ritree"
            ),
            "join_probes": probe_n,
            "pairs_total": pairs_total,
            "temporal_rows": (
                temporal_summary["now_rows"]
                + temporal_summary["infinite_rows"]
            ),
            "temporal_results": temporal_summary["results_total"],
            "grid_points": len(grid_rows),
            "correct_choices": correct,
            "auto_accuracy": correct / max(len(grid_rows), 1),
            "accuracy_floor": ACCURACY_FLOOR,
            "choices": by_choice,
            "index_physical_reads": sum(
                r["measured"]["index-nested-loop"]["physical_reads"]
                for r in grid_rows
            ),
            "sweep_physical_reads": sum(
                r["measured"]["sweep"]["physical_reads"] for r in grid_rows
            ),
            "sql_one_statement": sql_summary["one_statement"],
            "sql_plans_clean": sql_summary["plans_clean"],
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Range-duration family parity + planner-grading benchmark"
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="scale preset (default: REPRO_BENCH_SCALE or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, help="path for the JSON report")
    args = parser.parse_args(argv)

    report = run(args.scale, args.seed)
    text = json.dumps(report, indent=1)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    summary = report["summary"]
    print(
        f"{report['workload']}: {summary['bands']} duration bands x "
        f"{len(summary['backends'])} backends, "
        f"{summary['results_total']} results and "
        f"{summary['pairs_total']} join pairs -- parity OK "
        f"(+{summary['temporal_rows']} temporal rows)"
    )
    print(
        f"sqlite: one statement per family query "
        f"({summary['sql_one_statement']}), plans clean "
        f"({summary['sql_plans_clean']})"
    )
    print(
        f"planner grid: {summary['correct_choices']}/"
        f"{summary['grid_points']} correct auto choices "
        f"({summary['auto_accuracy']:.0%}, floor {ACCURACY_FLOOR:.0%}); "
        f"choices {summary['choices']}"
    )
    for row in report["grid_rows"]:
        if not row["correct"]:
            print(
                f"  missed: outer={row['outer_n']} band={row['band']}: "
                f"chose {row['choice']}, measured cheaper "
                f"{row['measured_cheaper']}"
            )
    if summary["auto_accuracy"] < ACCURACY_FLOOR:
        print("FAIL: auto strategy accuracy below floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
