"""Micro-benchmarks of the individual operations (pytest-benchmark stats).

These are the per-operation timings behind the figures: single insertions,
deletions and intersection queries on a prebuilt database.  They use real
pytest-benchmark rounds (unlike the figure regenerations, which run once),
so ``--benchmark-only`` output includes meaningful distributions.
"""

from __future__ import annotations

import itertools

import pytest

from repro.bench.experiments import get_scale, ist_factory, ritree_factory
from repro.bench.harness import build_method
from repro.core import RITree
from repro.methods import TileIndex
from repro.workloads import distributions, queries as query_gen


@pytest.fixture(scope="module")
def workload():
    scale = get_scale()
    n = min(scale["fig13_n"], 20_000)
    return distributions.d1(n, 2000, seed=0)


@pytest.fixture(scope="module")
def query(workload):
    return query_gen.range_queries(workload, 0.01, 1, seed=5)[0]


def test_ritree_insert(benchmark, workload):
    """Single dynamic insertion into a loaded RI-tree (O(log_b n))."""
    tree = build_method(ritree_factory, workload.records)
    ids = itertools.count(10_000_000)

    def insert_one():
        tree.insert(5000, 9000, next(ids))

    benchmark(insert_one)


def test_ritree_delete_insert_roundtrip(benchmark, workload):
    """Delete + reinsert of an existing record (two O(log_b n) updates)."""
    tree = build_method(ritree_factory, workload.records)
    lower, upper, interval_id = workload.records[0]

    def roundtrip():
        tree.delete(lower, upper, interval_id)
        tree.insert(lower, upper, interval_id)

    benchmark(roundtrip)


def test_ritree_intersection(benchmark, workload, query):
    """One warm intersection query at ~1% selectivity."""
    tree = build_method(ritree_factory, workload.records)
    benchmark(lambda: tree.intersection(*query))


def test_ist_intersection(benchmark, workload, query):
    """The same query against the IST (D-order tail scan)."""
    ist = build_method(ist_factory, workload.records)
    benchmark(lambda: ist.intersection(*query))


def test_tindex_intersection(benchmark, workload, query):
    """The same query against the T-index (fixed level 10)."""
    tindex = build_method(
        lambda db: TileIndex(db, fixed_level=10), workload.records)
    benchmark(lambda: tindex.intersection(*query))


def test_fork_node_computation(benchmark, workload):
    """Pure-arithmetic fork computation (no I/O, paper Figure 4)."""
    tree = RITree()
    tree.bulk_load(workload.records[:1000])

    benchmark(lambda: tree.backbone.fork_node(400_000, 450_000))


def test_query_node_generation(benchmark, workload, query):
    """Transient leftNodes/rightNodes generation (no I/O, Section 4.2)."""
    tree = RITree()
    tree.bulk_load(workload.records[:1000])
    benchmark(lambda: tree.query_nodes(*query))
