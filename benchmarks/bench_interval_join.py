"""Interval-join benchmark: index-nested-loop vs plane sweep vs oracle.

Runs the interval equi-overlap join ``R JOIN S`` on a two-sided workload
(cardinality and duration controlled per side by the scale preset)
through the three strategies of :mod:`repro.core.join` and emits a JSON
report:

* ``index-nested-loop`` -- an RI-tree over the inner relation, one
  batched intersection probe per outer tuple.  Logical and physical I/O
  are observed through the same :class:`~repro.engine.stats.IoStats`
  counters as the Figure 13 queries, and the report includes an
  in-process cross-check that ``join_count`` reproduces, bit for bit,
  the I/O of the equivalent per-probe ``intersection_count`` loop.
* ``sweep`` -- the Piatov-style endpoint-sorted merge join with gapless
  active lists.  Its only engine I/O is one sequential heap scan of each
  input relation, measured on the same counters.
* ``nested-loop`` -- the brute-force oracle (pure Python up to a
  cross-product cap, numpy-vectorised beyond it), run once for parity.
* ``auto`` -- the cost-model planner: its decision (with the predicted
  per-strategy costs) is recorded, and its row carries the measured cost
  of the strategy it dispatched to.

The script fails loudly unless all four strategies -- plus the
independent ``searchsorted`` counting oracle -- agree on the pair count,
and unless the index and sweep *pair sets* are identical.  Python-level
work is measured as profile-hook frame activations per emitted pair.

Usage::

    python benchmarks/bench_interval_join.py                # small scale
    python benchmarks/bench_interval_join.py --scale tiny   # CI smoke
    python benchmarks/bench_interval_join.py --output out.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from benchlib import best_of, count_frame_activations
from repro.bench.experiments import get_scale
from repro.bench.harness import paper_database, run_join_batch
from repro.core.join import AutoJoin, NestedLoopJoin, SweepJoin
from repro.core.ritree import RITree
from repro.workloads import joins as join_gen

#: Cross-product size up to which the pure-Python oracle runs; beyond it
#: the numpy-vectorised brute force (same nested-loop semantics) is used.
PURE_ORACLE_LIMIT = 30_000_000

#: Counter keys that must reproduce exactly across repeated runs.
DETERMINISTIC_KEYS = ("pairs", "logical_reads", "physical_reads")


def _measure_index_join(tree, probes, repeat):
    """Cold-cache ``join_count`` runs via the harness, plus one
    ``join_pairs`` run to check the two paths' I/O parity."""

    def run_count():
        batch = run_join_batch(tree, probes, count_only=True)
        return {
            "pairs": batch.pairs,
            "logical_reads": batch.logical_io,
            "physical_reads": batch.physical_io,
            "time_s": batch.response_time,
        }

    count_row = best_of(repeat, run_count, keys=DETERMINISTIC_KEYS)
    pairs_batch = run_join_batch(tree, probes, count_only=False)
    for key, got in (
        ("pairs", pairs_batch.pairs),
        ("logical_reads", pairs_batch.logical_io),
        ("physical_reads", pairs_batch.physical_io),
    ):
        if got != count_row[key]:
            raise SystemExit(
                f"index join paths diverge: join_pairs {key} {got} != "
                f"join_count {count_row[key]}"
            )
    return count_row


def _check_figure13_accounting(tree, probes, count_row):
    """The acceptance cross-check: the join's I/O is exactly the sum of
    the per-probe Figure 13 intersection queries, on the same counters."""
    tree.db.clear_cache()
    with tree.db.measure() as delta:
        total = 0
        for lower, upper, _probe_id in probes:
            total += tree.intersection_count(lower, upper)
    reference = {
        "pairs": total,
        "logical_reads": delta.logical_reads,
        "physical_reads": delta.physical_reads,
    }
    for key, expected in reference.items():
        if count_row[key] != expected:
            raise SystemExit(
                f"join I/O accounting diverges from per-probe "
                f"intersection_count: {key} {count_row[key]} != {expected}"
            )
    return {"status": "bit-identical", **reference}


def _measure_sweep(workload, repeat):
    """Sweep runs reading both inputs from heap tables on the engine.

    The sweep's engine I/O is one sequential scan per relation -- the
    index-free competitor pays full input consumption, measured on the
    same counters as the index join.
    """
    db = paper_database()
    outer_table = db.create_table("R", ["lower", "upper", "id"])
    inner_table = db.create_table("S", ["lower", "upper", "id"])
    outer_table.bulk_load(workload.outer.records)
    inner_table.bulk_load(workload.inner.records)
    db.flush()
    sweep = SweepJoin()

    def run_once():
        db.clear_cache()
        started = time.perf_counter()
        with db.measure() as delta:
            outer = [row for _rowid, row in outer_table.scan()]
            inner = [row for _rowid, row in inner_table.scan()]
        count = sweep.count(outer, inner)
        elapsed = time.perf_counter() - started
        return {
            "pairs": count,
            "logical_reads": delta.logical_reads,
            "physical_reads": delta.physical_reads,
            "time_s": elapsed,
        }

    return best_of(repeat, run_once, keys=DETERMINISTIC_KEYS)


def run(scale_name, seed, repeat):
    scale = get_scale(scale_name)
    workload = join_gen.join_workload(
        outer_n=scale["join_outer_n"],
        inner_n=scale["join_inner_n"],
        outer_d=scale["join_outer_d"],
        inner_d=scale["join_inner_d"],
        seed=seed,
    )
    outer, inner = workload.outer.records, workload.inner.records

    report = {
        "workload": workload.name,
        "scale": scale["name"],
        "seed": seed,
        "outer_n": workload.outer.n,
        "inner_n": workload.inner.n,
        "outer_d": workload.outer.duration_param,
        "inner_d": workload.inner.duration_param,
        "rows": [],
    }

    # Index-nested-loop join: RI-tree over the inner relation.
    tree = RITree(paper_database())
    tree.bulk_load(inner)
    tree.db.flush()
    # The planner's view of this workload (the estimate the auto strategy
    # dispatches on), recorded before any measurement.
    planner = tree.cost_model().estimate_join(outer).as_dict()
    report["planner"] = planner
    index_row = _measure_index_join(tree, outer, repeat)
    report["figure13_accounting"] = _check_figure13_accounting(
        tree, outer, index_row
    )
    index_frames, _ = count_frame_activations(lambda: tree.join_count(outer))
    report["rows"].append(
        {
            "strategy": "index-nested-loop",
            **index_row,
            "frame_activations": index_frames,
            "frames_per_pair": index_frames / max(index_row["pairs"], 1),
        }
    )

    # Sweep join: inputs scanned from heap tables, merge in memory.
    sweep_row = _measure_sweep(workload, repeat)
    sweep = SweepJoin()
    sweep_frames, _ = count_frame_activations(lambda: sweep.count(outer, inner))
    report["rows"].append(
        {
            "strategy": "sweep",
            **sweep_row,
            "frame_activations": sweep_frames,
            "frames_per_pair": sweep_frames / max(sweep_row["pairs"], 1),
        }
    )

    # Auto strategy: the planner's dispatch, with the measured cost of
    # whichever strategy it picked (the decision itself is O(statistics),
    # so the dispatched strategy's measurements *are* auto's).  The row's
    # prediction is the estimate auto actually dispatched on (the
    # engine-free planner), not the tree model recorded above -- the two
    # estimators may legitimately disagree right at the crossover.
    auto = AutoJoin()
    auto_pairs = auto.count(outer, inner)
    dispatched = auto.last_dispatch
    dispatched_row = index_row if dispatched == "index-nested-loop" \
        else sweep_row
    report["rows"].append(
        {
            "strategy": "auto",
            "pairs": auto_pairs,
            "logical_reads": dispatched_row["logical_reads"],
            "physical_reads": dispatched_row["physical_reads"],
            "time_s": dispatched_row["time_s"],
            "dispatched_to": dispatched,
            "predicted": auto.last_decision.as_dict(),
        }
    )

    # Brute-force oracle (once; it exists to falsify the other two).
    started = time.perf_counter()
    if workload.pair_domain <= PURE_ORACLE_LIMIT:
        oracle_pairs = NestedLoopJoin().pairs(outer, inner)
        oracle_impl = "pure-python"
    else:
        oracle_pairs = join_gen.brute_force_pairs(outer, inner)
        oracle_impl = "numpy"
    oracle_elapsed = time.perf_counter() - started
    report["rows"].append(
        {
            "strategy": "nested-loop",
            "pairs": len(oracle_pairs),
            "logical_reads": 0,
            "physical_reads": 0,
            "time_s": oracle_elapsed,
            "oracle_impl": oracle_impl,
        }
    )

    # Parity: all three strategies plus the independent counting oracle.
    counting_oracle = workload.expected_pairs()
    counts = {row["strategy"]: row["pairs"] for row in report["rows"]}
    if len(set(counts.values()) | {counting_oracle}) != 1:
        raise SystemExit(
            f"join parity failure: {counts}, counting oracle "
            f"{counting_oracle}"
        )
    index_pairs = sorted(tree.join_pairs(outer))
    if index_pairs != sorted(SweepJoin().pairs(outer, inner)):
        raise SystemExit("index and sweep pair SETS diverge")
    if index_pairs != sorted(oracle_pairs):
        raise SystemExit("index and nested-loop pair SETS diverge")
    report["parity"] = {
        "status": "identical",
        "pairs": counting_oracle,
        "strategies_compared": sorted(counts),
        "pair_sets_compared": ["index-nested-loop", "sweep", "nested-loop"],
    }

    index_io = index_row["physical_reads"]
    sweep_io = sweep_row["physical_reads"]
    report["summary"] = {
        "pairs": counting_oracle,
        "join_selectivity": workload.selectivity(),
        "index_physical_io": index_io,
        "sweep_physical_io": sweep_io,
        "index_over_sweep_io": index_io / max(sweep_io, 1),
        "index_time_s": index_row["time_s"],
        "sweep_time_s": sweep_row["time_s"],
    }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Interval equi-overlap join benchmark"
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="scale preset (default: REPRO_BENCH_SCALE or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="cold-cache repetitions per measured strategy",
    )
    parser.add_argument("--output", default=None, help="path for the JSON report")
    args = parser.parse_args(argv)

    report = run(args.scale, args.seed, args.repeat)
    text = json.dumps(report, indent=1)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    summary = report["summary"]
    print(
        f"{report['workload']}: {summary['pairs']} pairs "
        f"(selectivity {summary['join_selectivity']:.2e})"
    )
    print(
        f"physical I/O: index-nested-loop {summary['index_physical_io']} "
        f"vs sweep input scan {summary['sweep_physical_io']} "
        f"({summary['index_over_sweep_io']:.2f}x)"
    )
    print(
        f"wall time: index {summary['index_time_s']:.3f}s, "
        f"sweep {summary['sweep_time_s']:.3f}s"
    )
    print(
        f"parity: {report['parity']['status']} across "
        f"{len(report['parity']['strategies_compared'])} strategies "
        f"+ counting oracle"
    )
    print(f"figure-13 I/O accounting: {report['figure13_accounting']['status']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
