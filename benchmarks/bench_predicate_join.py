"""Predicate-join benchmark: every Allen relation, every strategy, graded.

The acceptance gate of the predicate-join tentpole, in three legs:

* **Parity** -- on one two-sided workload, all four strategies (sweep,
  index via a prebuilt RI-tree, auto planning on the tree's cost model,
  and the nested-loop oracle) must emit the identical pair set for every
  one of the 14 join predicates (``intersects`` + Allen's 13).
* **SQL one-statement** -- the sqlite backend must answer a predicate
  probe batch with ONE statement joining the probe relation (verified by
  the trace hook), pair-set-identical to the engine, with ``EXPLAIN``
  SEARCHing both Figure 2 indexes and building no AUTOMATIC index.
* **Planner grading** -- on a crossover grid (probe count x relation),
  the ``auto`` strategy must pick the measured-cheaper side (by physical
  reads, ties count as correct) on at least :data:`ACCURACY_FLOOR` of
  the grid -- the predicate analogue of ``bench_join_crossover.py``,
  and the calibration record for ``PREDICATE_SCAN_LEAF_DISTINCT`` and
  the heap-fetch Yao term in ``repro.core.costmodel``.

The script exits non-zero on any parity, plan-shape, or accuracy
failure, making it a CI gate; its JSON report feeds the
``predicate-join`` row of the bench-trajectory pipeline.

Usage::

    python benchmarks/bench_predicate_join.py                # small scale
    python benchmarks/bench_predicate_join.py --scale tiny   # CI smoke
    python benchmarks/bench_predicate_join.py --output out.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.bench.experiments import get_scale
from repro.bench.harness import paper_database, run_join_batch
from repro.core.join import AutoJoin, NestedLoopJoin, SweepJoin
from repro.core.predicates import JOIN_PREDICATES
from repro.core.ritree import RITree
from repro.sql import SQLRITree
from repro.workloads import joins as join_gen

#: Minimum fraction of grid points where auto must pick the strategy
#: that measured cheaper (by physical reads).  The acceptance gate.
ACCURACY_FLOOR = 0.9

#: Relations whose candidate ranges need the stored extent, and
#: therefore issue one extra MIN/MAX aggregate on the sqlite backend.
EXTENT_RELATIONS = ("before", "after")


def _parity_leg(workload):
    """All four strategies x all 14 predicates, one pair set each."""
    outer, inner = workload.outer.records, workload.inner.records
    tree = RITree(paper_database())
    tree.bulk_load(inner)
    tree.db.flush()
    rows = []
    for name in JOIN_PREDICATES:
        started = time.perf_counter()
        expected = sorted(NestedLoopJoin(predicate=name).pairs(outer, inner))
        oracle_elapsed = time.perf_counter() - started

        started = time.perf_counter()
        sweep_pairs = sorted(SweepJoin(predicate=name).pairs(outer, inner))
        sweep_elapsed = time.perf_counter() - started

        started = time.perf_counter()
        index_pairs = sorted(tree.join_pairs(outer, predicate=name))
        index_elapsed = time.perf_counter() - started

        auto = AutoJoin(method=tree, predicate=name)
        auto_pairs = sorted(auto.pairs(outer, inner=[]))
        for label, pairs in (("sweep", sweep_pairs),
                             ("index", index_pairs),
                             ("auto", auto_pairs)):
            if pairs != expected:
                raise SystemExit(
                    f"predicate-join parity failure: {label} vs oracle on "
                    f"{name!r} ({len(pairs)} vs {len(expected)} pairs)"
                )
        if tree.join_count(outer, predicate=name) != len(expected):
            raise SystemExit(f"join_count diverges from join_pairs on {name!r}")
        if auto.last_dispatch != auto.last_decision.choice:
            raise SystemExit(
                f"auto dispatch {auto.last_dispatch!r} diverges from its "
                f"choice {auto.last_decision.choice!r} on {name!r}"
            )
        rows.append(
            {
                "predicate": name,
                "pairs": len(expected),
                "auto_dispatched_to": auto.last_dispatch,
                "oracle_time_s": oracle_elapsed,
                "sweep_time_s": sweep_elapsed,
                "index_time_s": index_elapsed,
            }
        )
    return rows


def _sql_leg(workload):
    """One-statement sqlite evaluation, EXPLAIN-verified, engine parity."""
    outer, inner = workload.outer.records, workload.inner.records
    sql_tree = SQLRITree()
    sql_tree.bulk_load(inner)
    engine_tree = RITree(paper_database())
    engine_tree.bulk_load(inner)
    engine_tree.db.flush()
    one_statement = True
    plans_clean = True
    for name in JOIN_PREDICATES:
        if name == "intersects":
            continue
        statements = []
        sql_tree.conn.set_trace_callback(statements.append)
        sql_pairs = sorted(sql_tree.join_pairs(outer, predicate=name))
        sql_tree.conn.set_trace_callback(None)
        if sql_pairs != sorted(engine_tree.join_pairs(outer, predicate=name)):
            raise SystemExit(f"sqlite vs engine pair sets diverge on {name!r}")
        batch_selects = [
            s for s in statements
            if s.lstrip().startswith("SELECT") and "batchProbes" in s
        ]
        extra_allowed = 1 if name in EXTENT_RELATIONS else 0
        selects = [s for s in statements if s.lstrip().startswith("SELECT")]
        if len(batch_selects) != 1 or len(selects) > 1 + extra_allowed:
            one_statement = False
        plan = "\n".join(sql_tree.explain_join(outer[:16], predicate=name))
        if ("lowerIndex" not in plan or "upperIndex" not in plan
                or "AUTOMATIC" in plan):
            plans_clean = False
    if not one_statement:
        raise SystemExit("sqlite predicate join issued more than ONE "
                         "probe-batch statement")
    if not plans_clean:
        raise SystemExit("sqlite predicate-join plan skips a Figure 2 index "
                         "or builds an automatic index")
    return {"one_statement": one_statement, "plans_clean": plans_clean}


def _measure_sweep_io(workload):
    """Cold-cache physical reads of the sweep's two input scans."""
    db = paper_database()
    outer_table = db.create_table("R", ["lower", "upper", "id"])
    inner_table = db.create_table("S", ["lower", "upper", "id"])
    outer_table.bulk_load(workload.outer.records)
    inner_table.bulk_load(workload.inner.records)
    db.flush()
    db.clear_cache()
    with db.measure() as delta:
        for _rowid, _row in outer_table.scan():
            pass
        for _rowid, _row in inner_table.scan():
            pass
    return delta.logical_reads, delta.physical_reads


def _grading_leg(scale, seed):
    """Measure both strategies per (probe count x relation) grid point."""
    rows = []
    for point, outer_n in enumerate(scale["predicate_grid_outer_ns"]):
        workload = join_gen.join_workload(
            outer_n=outer_n,
            inner_n=scale["predicate_grid_inner_n"],
            seed=seed * 10_000 + point,
        )
        outer, inner = workload.outer.records, workload.inner.records
        tree = RITree(paper_database())
        tree.bulk_load(inner)
        tree.db.flush()
        sweep_logical, sweep_physical = _measure_sweep_io(workload)
        for relation in scale["predicate_grid_relations"]:
            index_batch = run_join_batch(tree, outer, predicate=relation)
            expected = len(
                SweepJoin(predicate=relation).pairs(outer, inner))
            if index_batch.pairs != expected:
                raise SystemExit(
                    f"grid parity failure at outer={outer_n}, "
                    f"{relation!r}: index {index_batch.pairs}, "
                    f"sweep {expected}"
                )
            decision = AutoJoin(predicate=relation).decide(outer, inner)
            index_physical = index_batch.physical_io
            if index_physical < sweep_physical:
                measured_cheaper = "index-nested-loop"
            elif sweep_physical < index_physical:
                measured_cheaper = "sweep"
            else:
                measured_cheaper = "tie"
            rows.append(
                {
                    "outer_n": outer_n,
                    "inner_n": workload.inner.n,
                    "predicate": relation,
                    "pairs": expected,
                    "predicted_pairs": round(decision.result_count, 1),
                    "predicted": {
                        "index-nested-loop": decision.index.as_dict(),
                        "sweep": decision.sweep.as_dict(),
                    },
                    "measured": {
                        "index-nested-loop": {
                            "logical_reads": index_batch.logical_io,
                            "physical_reads": index_physical,
                        },
                        "sweep": {
                            "logical_reads": sweep_logical,
                            "physical_reads": sweep_physical,
                        },
                    },
                    "choice": decision.choice,
                    "measured_cheaper": measured_cheaper,
                    "correct": measured_cheaper in (decision.choice, "tie"),
                }
            )
    return rows


def run(scale_name, seed):
    scale = get_scale(scale_name)
    workload = join_gen.join_workload(
        outer_n=scale["predicate_outer_n"],
        inner_n=scale["predicate_inner_n"],
        seed=seed,
    )
    parity_rows = _parity_leg(workload)
    sql_summary = _sql_leg(workload)
    grid_rows = _grading_leg(scale, seed)
    correct = sum(1 for row in grid_rows if row["correct"])
    by_choice = {}
    for row in grid_rows:
        by_choice[row["choice"]] = by_choice.get(row["choice"], 0) + 1
    return {
        "workload": workload.name,
        "scale": scale["name"],
        "seed": seed,
        "parity_rows": parity_rows,
        "grid_rows": grid_rows,
        "summary": {
            "predicates": len(JOIN_PREDICATES),
            "pairs_total": sum(row["pairs"] for row in parity_rows),
            "strategies_compared": ["sweep", "index", "auto", "nested-loop"],
            "grid_points": len(grid_rows),
            "correct_choices": correct,
            "auto_accuracy": correct / max(len(grid_rows), 1),
            "accuracy_floor": ACCURACY_FLOOR,
            "choices": by_choice,
            "index_physical_reads": sum(
                r["measured"]["index-nested-loop"]["physical_reads"]
                for r in grid_rows),
            "sweep_physical_reads": sum(
                r["measured"]["sweep"]["physical_reads"]
                for r in grid_rows),
            "sql_one_statement": sql_summary["one_statement"],
            "sql_plans_clean": sql_summary["plans_clean"],
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Predicate-join parity + planner-grading benchmark"
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="scale preset (default: REPRO_BENCH_SCALE or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, help="path for the JSON report")
    args = parser.parse_args(argv)

    report = run(args.scale, args.seed)
    text = json.dumps(report, indent=1)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    summary = report["summary"]
    print(
        f"{report['workload']}: {summary['predicates']} predicates x 4 "
        f"strategies, {summary['pairs_total']} pairs total -- parity OK"
    )
    print(
        f"sqlite: one statement per probe batch "
        f"({summary['sql_one_statement']}), plans clean "
        f"({summary['sql_plans_clean']})"
    )
    print(
        f"planner grid: {summary['correct_choices']}/"
        f"{summary['grid_points']} correct auto choices "
        f"({summary['auto_accuracy']:.0%}, floor {ACCURACY_FLOOR:.0%}); "
        f"choices {summary['choices']}"
    )
    for row in report["grid_rows"]:
        if not row["correct"]:
            print(
                f"  missed: outer={row['outer_n']} {row['predicate']}: "
                f"chose {row['choice']}, measured cheaper "
                f"{row['measured_cheaper']}"
            )
    if summary["auto_accuracy"] < ACCURACY_FLOOR:
        print("FAIL: auto strategy accuracy below floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
