"""Figure 17: sweeping point query -- the IST degeneration."""

from repro.bench import fig17_sweep

from conftest import emit, is_discriminating


def test_fig17_sweep(benchmark, scale):
    """IST cost grows with distance from the domain's upper bound;
    the RI-tree stays flat and fastest on average (paper Figure 17)."""
    result = benchmark.pedantic(fig17_sweep, rounds=1, iterations=1)
    emit(result)
    series: dict[str, list[tuple[int, float]]] = {}
    for row in result.rows:
        series.setdefault(row["method"], []).append(
            (row["distance to upper bound"], row["physical I/O"]))
    for rows in series.values():
        rows.sort()
    if is_discriminating(scale):
        ist = series["IST"]
        # Degeneration: I/O at the far end is much larger than at distance 0.
        assert ist[-1][1] > 3 * max(ist[0][1], 0.5), ist
        # The RI-tree stays flat: bounded variation across the sweep.
        ri = [io for _, io in series["RI-tree"]]
        assert max(ri) <= 3 * max(min(ri), 0.5) + 2
        # And the RI-tree is the cheapest on average.
        def mean(xs):
            return sum(x for _, x in xs) / len(xs)

        assert mean(series["RI-tree"]) <= mean(series["IST"])
        assert mean(series["RI-tree"]) <= mean(series["T-index"])
