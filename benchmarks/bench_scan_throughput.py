"""Scan-throughput benchmark for the batched query pipeline.

Runs the Figure 13 intersection workload (D1 distribution, the paper's
selectivity sweep) through three execution paths and emits a JSON report:

* ``per_entry`` -- the pre-batching reference execution (one generator
  hop and one comparison per returned entry), retained on the RI-tree as
  ``intersection_per_entry``.  This is what ``run_query_batch`` measured
  before the pipeline landed; its numbers are the committed baseline.
* ``materialise`` -- the batched ``intersection`` (id lists built from
  leaf slices).
* ``count`` -- the batched ``intersection_count`` (what the harness runs
  now: leaf-slice lengths summed, no id lists).

For every path the report records wall time plus *exact* logical and
physical I/O totals, and the script fails loudly unless all paths --
and, when present, the committed pre-change baseline in
``benchmarks/baselines/fig13_scan_throughput_seed.json`` -- agree
bit-for-bit on I/O.  Python-level work is measured with a profile hook
counting frame activations (function calls and generator resumes), the
operations the batching removes.

Usage::

    python benchmarks/bench_scan_throughput.py                # small scale
    python benchmarks/bench_scan_throughput.py --scale tiny   # CI smoke
    python benchmarks/bench_scan_throughput.py --output out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from benchlib import best_of, count_frame_activations
from repro.bench.experiments import (
    get_scale,
    ist_factory,
    ritree_factory,
    tindex_factory,
    tuned_level_for,
)
from repro.bench.harness import build_method
from repro.workloads import distributions
from repro.workloads import queries as query_gen

BASELINE_PATH = Path(__file__).parent / "baselines" \
    / "fig13_scan_throughput_seed.json"

#: Target from the tracking issue: >= 3x fewer Python-level operations
#: per returned id for the harness path vs the per-entry reference.
#: It holds at small/full scale; at tiny scale the handful of results per
#: query is dominated by fixed per-query work (plan build, two B+-tree
#: descents), so the CI smoke gate only demands that batching never lose.
OPS_RATIO_TARGET = 3.0
OPS_RATIO_TARGETS_BY_SCALE = {"tiny": 1.0}


def _measure(method, queries, runner, repeat: int = 3) -> dict:
    """Cold-cache runs of ``runner`` over ``queries``; exact I/O totals.

    Each repetition starts from a cleared cache, must reproduce the same
    I/O totals (they are deterministic), and the best wall time is kept.
    """
    def run_once() -> dict:
        method.db.clear_cache()
        stats = method.db.stats
        before = stats.snapshot()
        started = time.perf_counter()
        total = 0
        for lower, upper in queries:
            total += runner(lower, upper)
        elapsed = time.perf_counter() - started
        delta = stats.snapshot() - before
        return {
            "results_total": total,
            "logical_reads": delta.logical_reads,
            "physical_reads": delta.physical_reads,
            "time_s": elapsed,
        }

    return best_of(repeat, run_once,
                   keys=("results_total", "logical_reads", "physical_reads"))


def _paths_for(method) -> dict:
    paths = {
        "materialise": lambda lo, up: len(method.intersection(lo, up)),
        "count": method.intersection_count,
    }
    if hasattr(method, "intersection_per_entry"):
        paths["per_entry"] = \
            lambda lo, up: len(method.intersection_per_entry(lo, up))
    return paths


def run(scale_name: str | None, seed: int, check_baseline: bool) -> dict:
    scale = get_scale(scale_name)
    n = scale["fig13_n"]
    workload = distributions.d1(n, 2000, seed=seed)
    level = tuned_level_for(workload, scale, selectivity=0.01)
    ops_target = OPS_RATIO_TARGETS_BY_SCALE.get(scale["name"],
                                                OPS_RATIO_TARGET)
    methods = {
        "T-index": build_method(tindex_factory(level), workload.records),
        "IST": build_method(ist_factory, workload.records),
        "RI-tree": build_method(ritree_factory, workload.records),
    }
    report = {
        "workload": "fig13",
        "scale": scale["name"],
        "seed": seed,
        "n": n,
        "tindex_level": level,
        "ops_ratio_target": ops_target,
        "rows": [],
        "ops": [],
    }

    for selectivity in scale["fig13_selectivities"]:
        queries = query_gen.range_queries(
            workload, selectivity, scale["fig13_queries"], seed=seed + 7)
        for label, method in methods.items():
            measured = {name: _measure(method, queries, runner)
                        for name, runner in _paths_for(method).items()}
            reference = measured["count"]
            for name, row in measured.items():
                for key in ("results_total", "logical_reads",
                            "physical_reads"):
                    if row[key] != reference[key]:
                        raise SystemExit(
                            f"I/O divergence: {label} {name} {key} "
                            f"{row[key]} != {reference[key]} at "
                            f"selectivity {selectivity}")
                report["rows"].append({
                    "method": label, "path": name,
                    "selectivity": selectivity, "queries": len(queries),
                    **row,
                })

        # Python-level operations per id, profiled on the RI-tree (the
        # paper's protagonist and the harness's hot path).
        ritree = methods["RI-tree"]
        results = sum(ritree.intersection_count(lo, up)
                      for lo, up in queries)
        ops_legacy, _ = count_frame_activations(
            lambda: [ritree.intersection_per_entry(lo, up)
                     for lo, up in queries])
        ops_batched, _ = count_frame_activations(
            lambda: [ritree.intersection_count(lo, up)
                     for lo, up in queries])
        report["ops"].append({
            "selectivity": selectivity,
            "results_total": results,
            "frame_activations_per_entry_path": ops_legacy,
            "frame_activations_count_path": ops_batched,
            "per_id_legacy": ops_legacy / max(results, 1),
            "per_id_batched": ops_batched / max(results, 1),
            "ops_ratio": ops_legacy / max(ops_batched, 1),
        })

    # Aggregate speedups (per-entry reference vs the harness count path).
    legacy_time = sum(r["time_s"] for r in report["rows"]
                      if r["method"] == "RI-tree" and r["path"] == "per_entry")
    count_time = sum(r["time_s"] for r in report["rows"]
                     if r["method"] == "RI-tree" and r["path"] == "count")
    worst_ops_ratio = min(o["ops_ratio"] for o in report["ops"])
    report["summary"] = {
        "ritree_time_speedup": legacy_time / max(count_time, 1e-12),
        "ritree_worst_ops_ratio": worst_ops_ratio,
        "ops_target_met": worst_ops_ratio >= ops_target,
    }

    if check_baseline:
        report["baseline_check"] = _check_baseline(report)
    return report


def _check_baseline(report: dict) -> dict:
    """Compare I/O totals against the committed pre-change baseline."""
    if not BASELINE_PATH.exists():
        return {"status": "missing", "path": str(BASELINE_PATH)}
    baseline = json.loads(BASELINE_PATH.read_text())
    if (baseline["scale"] != report["scale"]
            or baseline["seed"] != report["seed"]):
        return {"status": "skipped (scale/seed mismatch)",
                "baseline_scale": baseline["scale"]}
    if baseline["tindex_level"] != report["tindex_level"]:
        raise SystemExit(
            f"T-index tuning drifted: baseline level "
            f"{baseline['tindex_level']} vs {report['tindex_level']}")
    current = {(r["method"], r["selectivity"]): r
               for r in report["rows"] if r["path"] == "count"}
    compared = 0
    for row in baseline["rows"]:
        now = current[(row["method"], row["selectivity"])]
        for key in ("results_total", "logical_reads", "physical_reads"):
            if now[key] != row[key]:
                raise SystemExit(
                    f"baseline divergence: {row['method']} at selectivity "
                    f"{row['selectivity']}: {key} {now[key]} != {row[key]}")
        compared += 1
    return {"status": "bit-identical", "rows_compared": compared,
            "baseline": "benchmarks/baselines/" + BASELINE_PATH.name}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Batched scan pipeline throughput benchmark (Fig. 13)")
    parser.add_argument("--scale", default=None,
                        help="scale preset (default: REPRO_BENCH_SCALE or "
                             "'small')")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None,
                        help="path for the JSON report")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the committed-baseline I/O comparison")
    args = parser.parse_args(argv)

    report = run(args.scale, args.seed, check_baseline=not args.no_baseline)
    text = json.dumps(report, indent=1)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    summary = report["summary"]
    print(f"RI-tree harness-path speedup vs per-entry reference: "
          f"{summary['ritree_time_speedup']:.2f}x wall time")
    print(f"worst-case Python-ops ratio (per-entry / batched): "
          f"{summary['ritree_worst_ops_ratio']:.1f}x "
          f"(target {report['ops_ratio_target']}x at scale "
          f"{report['scale']})")
    if "baseline_check" in report:
        print(f"baseline I/O check: {report['baseline_check']['status']}")
    if not summary["ops_target_met"]:
        print("FAIL: ops ratio below target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
