"""Figure 13: disk accesses and response time vs query selectivity."""

from repro.bench import fig13_selectivity

from conftest import emit, is_discriminating


def test_fig13_selectivity(benchmark, scale):
    """The RI-tree outperforms T-index and IST across all selectivities.

    Paper: speedup factors 10.8-22.8x (T-index) and 13.6-46.3x (IST) on
    physical I/O.  The assertion requires a clear win at every measured
    selectivity without pinning the exact factor.
    """
    result = benchmark.pedantic(fig13_selectivity, rounds=1, iterations=1)
    emit(result)
    by_key: dict[float, dict[str, dict]] = {}
    for row in result.rows:
        by_key.setdefault(row["selectivity [%]"], {})[row["method"]] = row
    assert by_key, "no measurements"
    for selectivity, methods in by_key.items():
        counts = {m: r["avg results"] for m, r in methods.items()}
        assert len(set(counts.values())) == 1, (
            f"methods disagree on results at {selectivity}%: {counts}")
        if is_discriminating(scale):
            ri = methods["RI-tree"]["physical I/O"]
            assert methods["T-index"]["physical I/O"] >= 2 * ri
            assert methods["IST"]["physical I/O"] >= 2 * ri
