"""Join-planner crossover benchmark: predicted vs measured, graded.

Sweeps the crossover region of the index-nested-loop vs plane-sweep
trade-off -- per-side cardinality and inner duration, the knobs of
:func:`repro.workloads.joins.join_grid` -- and at every grid point:

* builds an RI-tree over the inner relation and measures the index join's
  cold-cache physical/logical I/O through the harness counters;
* loads both relations into heap tables and measures the sweep's input
  scans on the same counters;
* runs the ``auto`` strategy as shipped and records the estimate it
  dispatched on (the engine-free
  :func:`~repro.core.costmodel.choose_join_strategy` path) -- its
  per-strategy predictions and its choice;
* records predicted-vs-measured cost for both strategies, plus which
  strategy was *empirically* cheaper by measured physical reads.

The script exits non-zero unless ``auto`` picks the measured-cheaper
strategy on at least :data:`ACCURACY_FLOOR` of the grid (ties count as
correct -- either pick is right when the measurements agree), or if the
``auto`` dispatch disagrees with the counting oracle's pair count
anywhere.  The JSON report doubles as the planner's calibration record:
per-point prediction errors are the data the cost-model constants
(``LEAF_MISS_LOCALITY``, ``SCAN_LEAF_DISTINCT``) were fitted against.

Usage::

    python benchmarks/bench_join_crossover.py                # small scale
    python benchmarks/bench_join_crossover.py --scale tiny   # CI smoke
    python benchmarks/bench_join_crossover.py --output out.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.bench.experiments import get_scale
from repro.bench.harness import paper_database, run_join_batch
from repro.core.join import AutoJoin
from repro.core.ritree import RITree
from repro.workloads import joins as join_gen

#: Minimum fraction of grid points where auto must pick the strategy that
#: measured cheaper (by physical reads).  The acceptance gate.
ACCURACY_FLOOR = 0.9


def _measure_sweep_io(workload):
    """Cold-cache physical/logical I/O of the sweep's two input scans."""
    db = paper_database()
    outer_table = db.create_table("R", ["lower", "upper", "id"])
    inner_table = db.create_table("S", ["lower", "upper", "id"])
    outer_table.bulk_load(workload.outer.records)
    inner_table.bulk_load(workload.inner.records)
    db.flush()
    db.clear_cache()
    with db.measure() as delta:
        for _rowid, _row in outer_table.scan():
            pass
        for _rowid, _row in inner_table.scan():
            pass
    return delta.logical_reads, delta.physical_reads


def run_grid_point(workload):
    """Measure both strategies and the planner's verdict at one point."""
    outer, inner = workload.outer.records, workload.inner.records

    tree = RITree(paper_database())
    tree.bulk_load(inner)
    tree.db.flush()
    index_batch = run_join_batch(tree, outer)

    sweep_logical, sweep_physical = _measure_sweep_io(workload)

    # The auto strategy must agree with the counting oracle wherever it
    # dispatches -- a per-point parity check on top of the grading.
    auto = AutoJoin()
    auto_pairs = auto.count(outer, inner)
    expected = workload.expected_pairs()
    if auto_pairs != expected or index_batch.pairs != expected:
        raise SystemExit(
            f"auto-join parity failure at {workload.name}: auto "
            f"{auto_pairs}, index {index_batch.pairs}, oracle {expected}"
        )

    index_physical = index_batch.physical_io
    if index_physical < sweep_physical:
        measured_cheaper = "index-nested-loop"
    elif sweep_physical < index_physical:
        measured_cheaper = "sweep"
    else:
        measured_cheaper = "tie"
    # The estimate auto dispatched on -- predicted and measured cost of
    # both strategies sit side by side in every row.
    decision = auto.last_decision.as_dict()
    choice = decision["choice"]
    correct = measured_cheaper in (choice, "tie")
    return {
        "outer_n": workload.outer.n,
        "inner_n": workload.inner.n,
        "outer_d": workload.outer.duration_param,
        "inner_d": workload.inner.duration_param,
        "pairs": expected,
        "predicted_pairs": decision["result_count"],
        "predicted": {
            "index-nested-loop": decision["index"],
            "sweep": decision["sweep"],
        },
        "measured": {
            "index-nested-loop": {
                "logical_reads": index_batch.logical_io,
                "physical_reads": index_physical,
            },
            "sweep": {
                "logical_reads": sweep_logical,
                "physical_reads": sweep_physical,
            },
        },
        "choice": choice,
        "measured_cheaper": measured_cheaper,
        "correct": correct,
    }


def run(scale_name, seed):
    scale = get_scale(scale_name)
    grid = join_gen.join_grid(
        outer_ns=scale["crossover_outer_ns"],
        inner_ns=scale["crossover_inner_ns"],
        inner_ds=scale["crossover_inner_ds"],
        seed=seed,
    )
    rows = [run_grid_point(workload) for workload in grid]
    correct = sum(1 for row in rows if row["correct"])
    by_choice = {}
    for row in rows:
        by_choice[row["choice"]] = by_choice.get(row["choice"], 0) + 1
    index_err = [
        row["predicted"]["index-nested-loop"]["physical_reads"]
        / max(row["measured"]["index-nested-loop"]["physical_reads"], 1)
        for row in rows
    ]
    return {
        "workload": "join-crossover",
        "scale": scale["name"],
        "seed": seed,
        "grid_points": len(rows),
        "rows": rows,
        "summary": {
            "grid_points": len(rows),
            "correct_choices": correct,
            "auto_accuracy": correct / max(len(rows), 1),
            "accuracy_floor": ACCURACY_FLOOR,
            "choices": by_choice,
            "index_prediction_ratio_min": round(min(index_err), 3),
            "index_prediction_ratio_max": round(max(index_err), 3),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Join-planner crossover benchmark (auto-strategy gate)"
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="scale preset (default: REPRO_BENCH_SCALE or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, help="path for the JSON report")
    args = parser.parse_args(argv)

    report = run(args.scale, args.seed)
    text = json.dumps(report, indent=1)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    summary = report["summary"]
    print(
        f"crossover grid ({report['scale']}): {summary['correct_choices']}"
        f"/{summary['grid_points']} correct auto choices "
        f"({summary['auto_accuracy']:.0%}, floor {ACCURACY_FLOOR:.0%})"
    )
    print(f"choices: {summary['choices']}")
    print(
        f"index physical-I/O prediction ratio (pred/meas): "
        f"{summary['index_prediction_ratio_min']} .. "
        f"{summary['index_prediction_ratio_max']}"
    )
    for row in report["rows"]:
        if not row["correct"]:
            print(
                f"  missed: outer={row['outer_n']} inner={row['inner_n']} "
                f"d={row['inner_d']}: chose {row['choice']}, measured "
                f"cheaper {row['measured_cheaper']}"
            )
    if summary["auto_accuracy"] < ACCURACY_FLOOR:
        print("FAIL: auto strategy accuracy below floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
