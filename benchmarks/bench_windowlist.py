"""Section 6.1: Window-List vs RI-tree I/O comparison."""

from repro.bench import windowlist_comparison

from conftest import emit


def test_windowlist_comparison(benchmark, scale):
    """Both methods answer the same queries; I/O stays the same order.

    The paper measured the Window-List at ~2x the RI-tree's I/O.  Our
    reconstruction of Ramaswamy's structure is leaner than the original
    (see EXPERIMENTS.md), so the assertion only pins the order of
    magnitude, not the factor.
    """
    result = benchmark.pedantic(windowlist_comparison, rounds=1, iterations=1)
    emit(result)
    by_method = {row["method"]: row for row in result.rows}
    wl = by_method["Window-List"]
    ri = by_method["RI-tree"]
    assert wl["avg results"] == ri["avg results"]
    assert wl["physical I/O"] <= 10 * max(ri["physical I/O"], 1)
