"""Table 1: the four interval data distributions."""

from repro.bench import table1_workloads
from repro.workloads import DOMAIN_MAX

from conftest import emit


def test_table1_workloads(benchmark, scale):
    """Generate each distribution and validate its Table 1 shape."""
    result = benchmark.pedantic(table1_workloads, rounds=1, iterations=1)
    emit(result)
    assert len(result.rows) == 4
    for row in result.rows:
        assert 0 <= row["min lower"] <= row["max upper"] <= DOMAIN_MAX
        # d = 2000 in all evaluation workloads; the mean must sit nearby.
        assert 1500 <= row["mean length"] <= 2500
