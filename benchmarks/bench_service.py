"""Service benchmark: sharded-router parity and concurrency scaling.

Spawns the router topology of ``python -m repro.service`` (one router
process over ``service_shards`` shard-server subprocesses, cuts derived
from the seeded dataset's bound histogram) and replays the seeded mixed
workload of :mod:`repro.service.loadgen` against it at each configured
concurrency.  Two gates:

* **Parity** -- every load run's canonicalised results must be
  bit-identical to a local single-store oracle evaluating the same op
  list; any divergence (a replica reported twice, a dropped row, a
  predicate disagreement through the wire) is a hard failure (exit 1).
* **Scaling** -- throughput at the highest concurrency must exceed
  throughput at concurrency 1 by :func:`scaling_target`, which depends
  on the machine: with >= 4 cores the shard processes run in parallel
  and the target is 2x; on fewer cores only asyncio interleaving (and
  the router's single-shard byte relay) can hide latency, so the
  target drops to a documented floor.  The ratio compares
  mean-of-``service_repeats`` throughput at each concurrency (means,
  not best-of: a single lucky concurrency-1 run must not flip the
  gate) after one untimed warm-up pass, and the report records the
  core count and the target actually applied.

The report carries per-op-class client-side p50/p99 latency from the
highest-concurrency run plus the server's routing stats (per-shard
records, replicas, query/insert counters) -- the observability surface
the serving layer exposes through its ``stats`` op.

Usage::

    python benchmarks/bench_service.py                # small scale
    python benchmarks/bench_service.py --scale tiny   # CI smoke
    python benchmarks/bench_service.py --output out.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.bench.experiments import get_scale
from repro.core.stores import create_store
from repro.service.client import ServiceClient
from repro.service.loadgen import build_dataset, build_ops, evaluate_ops, run_load

#: Concurrency-scaling targets by *effective parallel units*: a shard
#: process can only run in parallel if it has both a core and a shard,
#: so the unit count is min(cores, shards).  With >= 4 units the shard
#: subprocesses genuinely parallelise and high concurrency must at
#: least double concurrency-1 throughput.  With 2-3 units the floors
#: are deliberately below the unit count (process contention with the
#: router and the client).  At a single unit every process shares one
#: core and concurrency cannot add throughput at all -- the measured
#: ratio hovers around 1.0 either side -- so the floor there is 0.9:
#: it catches only the pathological regression (a lock convoy or
#: serialisation bug collapsing concurrent throughput), and the actual
#: ratio rides in the trajectory row as an informational metric.
MULTI_CORE_TARGET = 2.0
FEW_UNIT_TARGETS = {1: 0.9, 2: 1.15, 3: 1.3}


def scaling_target(cores: int, shards: int) -> float:
    return FEW_UNIT_TARGETS.get(min(cores, shards), MULTI_CORE_TARGET)


def spawn_router(dataset_path: str, shards: int) -> tuple:
    """Start the router topology; returns (process, host, port)."""
    src_dir = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    extra = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join([str(src_dir), *extra])
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--port",
            "0",
            "--shards",
            str(shards),
            "--dataset",
            dataset_path,
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("LISTENING "):
        proc.kill()
        raise SystemExit(f"service failed to start: {line!r}")
    _, host, port = line.split()
    return proc, host, int(port)


def run(scale_name: str | None, seed: int) -> dict:
    scale = get_scale(scale_name)
    n = scale["service_n"]
    ops_count = scale["service_ops"]
    shards = scale["service_shards"]
    domain = scale["service_domain"]
    concurrencies = sorted(scale["service_concurrencies"])
    repeats = scale["service_repeats"]
    cores = os.cpu_count() or 1
    target = scaling_target(cores, shards)

    records, now = build_dataset(seed=seed, n=n, domain=domain)
    ops = build_ops(seed=seed + 1, count=ops_count, domain=domain, now=now)

    oracle = create_store("hint", now=now)
    oracle.bulk_load(records)
    expected = evaluate_ops(oracle, ops)

    report = {
        "workload": "service",
        "scale": scale["name"],
        "seed": seed,
        "records": n,
        "ops": ops_count,
        "shards": shards,
        "cpu_count": cores,
        "scaling_target": target,
        "rows": [],
    }

    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as handle:
        json.dump({"records": records, "now": now}, handle)
        dataset_path = handle.name

    proc, host, port = spawn_router(dataset_path, shards)
    parity_runs = 0
    parity_ok = True
    throughputs = {c: [] for c in concurrencies}
    latency = {}
    best_high = 0.0
    try:
        # One untimed warm-up pass: concurrency 1 always measures
        # first, and without this its first repeat runs against cold
        # server processes, biasing the scaling ratio upward.
        warmup = run_load(host, port, ops, concurrencies[-1])
        parity_runs += 1
        if warmup.results != expected:
            parity_ok = False
        for concurrency in concurrencies:
            for repeat in range(repeats):
                result = run_load(host, port, ops, concurrency)
                parity_runs += 1
                if result.results != expected:
                    parity_ok = False
                row = result.as_dict()
                row["repeat"] = repeat
                report["rows"].append(row)
                throughputs[concurrency].append(result.throughput)
                if concurrency == concurrencies[-1] and (
                    result.throughput > best_high
                ):
                    best_high = result.throughput
                    latency = {
                        cls: stats.as_dict()
                        for cls, stats in result.classes.items()
                    }
        with ServiceClient(host, port) as client:
            stats = client.call("stats")
            client.call("shutdown")
    finally:
        Path(dataset_path).unlink()
        try:
            proc.wait(timeout=20)
        except subprocess.TimeoutExpired:
            proc.kill()

    routing = stats.get("routing") or {}
    low, high = concurrencies[0], concurrencies[-1]
    mean = {c: sum(runs) / len(runs) for c, runs in throughputs.items() if runs}
    ratio = mean[high] / mean[low] if mean.get(low) else 0.0
    report["latency"] = latency
    report["routing"] = routing
    report["server_ops"] = stats.get("ops")
    report["summary"] = {
        "parity_ok": parity_ok,
        "parity_runs": parity_runs,
        "ops": ops_count,
        "records": n,
        "shards": routing.get("shard_count", shards),
        "replicas": routing.get("replicas", 0),
        "concurrency_low": low,
        "concurrency_high": high,
        "throughput_low": mean.get(low, 0.0),
        "throughput_high": mean.get(high, 0.0),
        "scaling_ratio": ratio,
        "scaling_target_met": ratio >= target,
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Interval service parity and concurrency benchmark"
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="scale preset (default: REPRO_BENCH_SCALE or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, help="path for the JSON report")
    args = parser.parse_args(argv)

    report = run(args.scale, args.seed)
    text = json.dumps(report, indent=1)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    summary = report["summary"]
    print(
        f"parity: {summary['parity_runs']} load runs x {summary['ops']} ops "
        f"bit-identical to the local oracle across "
        f"{summary['shards']} shards ({summary['replicas']} replicas)"
        if summary["parity_ok"]
        else "parity: FAILED"
    )
    print(
        f"scaling: c{summary['concurrency_high']} "
        f"{summary['throughput_high']:.0f} ops/s vs "
        f"c{summary['concurrency_low']} "
        f"{summary['throughput_low']:.0f} ops/s = "
        f"{summary['scaling_ratio']:.2f}x "
        f"(target {report['scaling_target']}x on "
        f"{report['cpu_count']} cores)"
    )
    failed = False
    if not summary["parity_ok"]:
        print("FAIL: sharded service diverged from the oracle", file=sys.stderr)
        failed = True
    if not summary["scaling_target_met"]:
        print("FAIL: concurrency scaling below target", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
