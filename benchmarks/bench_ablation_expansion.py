"""Ablation A2: dynamic data-space expansion vs fixed-height backbones."""

from repro.bench import ablation_expansion

from conftest import emit


def test_ablation_expansion(benchmark, scale):
    """The adaptive backbone needs the fewest transient entries per query."""
    result = benchmark.pedantic(ablation_expansion, rounds=1, iterations=1)
    emit(result)
    entries = {row["backbone"]: row["avg transient entries"]
               for row in result.rows}
    adaptive = next(v for k, v in entries.items() if "adaptive" in k)
    for backbone, value in entries.items():
        assert adaptive <= value, (backbone, value)
    fixed48 = next(v for k, v in entries.items() if "48" in k)
    assert fixed48 > 2 * adaptive
