"""HINT main-memory backend benchmark: parity plus frame economics.

Runs the Figure 13 intersection workload (D1 distribution, the paper's
selectivity sweep) through all three ``IntervalStore`` backends -- the
simulated-disk RI-tree, the SQL RI-tree, and the main-memory HINT store
-- and emits a JSON report with two kinds of evidence:

* **Parity** -- every query must return the identical sorted id list on
  all three backends, ``intersection_count`` must agree with the
  materialised lists, and a join leg must produce the identical pair
  set.  Any divergence is a hard failure (exit 1).
* **Frame economics** -- Python-level work measured with a profile hook
  counting frame activations (function calls and generator resumes).
  The HINT store answers from sorted in-memory partitions with
  ``bisect``/slice/``extend`` primitives, so it should spend far fewer
  interpreter frames per returned id than the simulated disk engine.
  The gate demands at least :data:`FRAME_RATIO_TARGET` times fewer
  frames per result on both the id path and the count path, with the
  RI-tree measured *warm* (buffer cache populated) so the comparison is
  pure CPU work, not I/O.

Usage::

    python benchmarks/bench_hint.py                # small scale
    python benchmarks/bench_hint.py --scale tiny   # CI smoke
    python benchmarks/bench_hint.py --output out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from benchlib import count_frame_activations
from repro.bench.experiments import get_scale
from repro.core import HintStore, RITree
from repro.sql import SQLRITree
from repro.workloads import distributions
from repro.workloads import queries as query_gen

#: The acceptance gate: the HINT store must spend at least this many
#: times fewer Python frames per result than the simulated disk engine
#: on the cached Figure 13 workload.  Measured headroom is ~19-60x
#: across scales, so 5x is a regression tripwire, not an aspiration.
FRAME_RATIO_TARGET = 5.0


def _build_stores(records) -> dict:
    stores = {
        "RI-tree": RITree(),
        "SQL-RI-tree": SQLRITree(),
        "HINT": HintStore(),
    }
    for store in stores.values():
        store.bulk_load(records)
    return stores


def _answer_batch(store, queries) -> tuple[list[list[int]], float]:
    """Sorted id lists for every query, plus wall time for the batch."""
    started = time.perf_counter()
    answers = [sorted(store.intersection(lo, up)) for lo, up in queries]
    return answers, time.perf_counter() - started


def _frame_rows(stores, queries, results: int) -> dict:
    """Warm-cache frame counts: simulated disk engine vs HINT."""
    ritree, hint = stores["RI-tree"], stores["HINT"]
    rows = {}
    for path, runner in (
        ("ids", lambda s: [s.intersection(lo, up) for lo, up in queries]),
        ("count", lambda s: [s.intersection_count(lo, up) for lo, up in queries]),
    ):
        disk, _ = count_frame_activations(lambda r=runner: r(ritree))
        memory, _ = count_frame_activations(lambda r=runner: r(hint))
        rows[path] = {
            "frames_disk": disk,
            "frames_hint": memory,
            "per_result_disk": disk / max(results, 1),
            "per_result_hint": memory / max(results, 1),
            "ratio": disk / max(memory, 1),
        }
    return rows


def run(scale_name: str | None, seed: int) -> dict:
    scale = get_scale(scale_name)
    n = scale["fig13_n"]
    workload = distributions.d1(n, 2000, seed=seed)
    stores = _build_stores(workload.records)
    report = {
        "workload": "fig13",
        "scale": scale["name"],
        "seed": seed,
        "n": n,
        "frame_ratio_target": FRAME_RATIO_TARGET,
        "rows": [],
        "frames": [],
    }

    results_total = 0
    parity_queries = 0
    for selectivity in scale["fig13_selectivities"]:
        queries = query_gen.range_queries(
            workload, selectivity, scale["fig13_queries"], seed=seed + 7
        )
        reference = None
        for label, store in stores.items():
            answers, elapsed = _answer_batch(store, queries)
            counts = [store.intersection_count(lo, up) for lo, up in queries]
            if counts != [len(ids) for ids in answers]:
                raise SystemExit(
                    f"count/ids divergence on {label} at "
                    f"selectivity {selectivity}"
                )
            if reference is None:
                reference = answers
            elif answers != reference:
                raise SystemExit(
                    f"query parity failure: {label} disagrees with "
                    f"RI-tree at selectivity {selectivity}"
                )
            report["rows"].append(
                {
                    "method": label,
                    "selectivity": selectivity,
                    "queries": len(queries),
                    "results_total": sum(len(ids) for ids in answers),
                    "time_s": elapsed,
                }
            )
        results = sum(len(ids) for ids in reference)
        results_total += results
        parity_queries += len(queries)
        # The parity pass above already warmed the RI-tree buffer cache,
        # so the frame counts below measure pure interpreter work.
        report["frames"].append(
            {
                "selectivity": selectivity,
                "results_total": results,
                **_frame_rows(stores, queries, results),
            }
        )

    # Join leg: an independent probe relation, pair-set identity across
    # all three backends, and join_count agreement on each.
    probes = distributions.d1(max(10, n // 20), 2000, seed=seed + 13).records
    pair_sets = {}
    for label, store in stores.items():
        pairs = sorted(store.join_pairs(probes))
        if store.join_count(probes) != len(pairs):
            raise SystemExit(f"join_count disagrees with join_pairs on {label}")
        pair_sets[label] = pairs
    reference_pairs = pair_sets["RI-tree"]
    for label, pairs in pair_sets.items():
        if pairs != reference_pairs:
            raise SystemExit(
                f"join parity failure: {label} pair set differs from RI-tree"
            )

    worst_ids = min(f["ids"]["ratio"] for f in report["frames"])
    worst_count = min(f["count"]["ratio"] for f in report["frames"])
    report["summary"] = {
        "results_total": results_total,
        "parity_queries": parity_queries,
        "join_probes": len(probes),
        "pairs": len(reference_pairs),
        "worst_ops_ratio": worst_ids,
        "count_worst_ops_ratio": worst_count,
        "frame_target_met": (
            worst_ids >= FRAME_RATIO_TARGET and worst_count >= FRAME_RATIO_TARGET
        ),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="HINT backend parity and frame-economics benchmark"
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="scale preset (default: REPRO_BENCH_SCALE or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, help="path for the JSON report")
    args = parser.parse_args(argv)

    report = run(args.scale, args.seed)
    text = json.dumps(report, indent=1)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    summary = report["summary"]
    print(
        f"parity: {summary['parity_queries']} queries and "
        f"{summary['pairs']} join pairs identical across "
        f"RI-tree / SQL-RI-tree / HINT"
    )
    print(
        f"frames per result, HINT vs warm simulated disk: "
        f"{summary['worst_ops_ratio']:.1f}x fewer (ids path), "
        f"{summary['count_worst_ops_ratio']:.1f}x fewer (count path); "
        f"target {report['frame_ratio_target']}x"
    )
    if not summary["frame_target_met"]:
        print("FAIL: frame ratio below target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
