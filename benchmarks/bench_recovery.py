"""Crash-recovery benchmark: every write point, recover, verify, match.

Exercises the durability subsystem end to end on the simulated engine:
for the plain RI-tree and the temporal RI-tree, a WAL-enabled workload
(bulk load, extend, single inserts/deletes, temporal updates) is first
run passively under a :class:`~repro.engine.faults.FaultInjector` to
count its write points, then re-run once per point with a
:class:`~repro.engine.errors.SimulatedCrash` injected exactly there.
After every crash the database is rebuilt with
:meth:`~repro.engine.database.Database.recover`, the store re-attached,
and the result must

* pass its own :meth:`~repro.core.access.IntervalStore.verify` report,
* hold exactly one of the committed-prefix states the passive run
  recorded (atomicity: no torn batches), and
* answer intersection queries identically to a brute-force oracle over
  its recovered records.

Any violation exits non-zero, making the script a CI gate.  The report
carries only deterministic metrics (crash points, clean recoveries,
replayed operations, WAL block traffic, record counts) -- never wall
time -- so the bench-trajectory pipeline can demand bit-identical
reproduction.

Usage::

    python benchmarks/bench_recovery.py                # small scale
    python benchmarks/bench_recovery.py --scale tiny   # CI smoke
    python benchmarks/bench_recovery.py --output recovery.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.bench.experiments import get_scale
from repro.core import RITree, TemporalRITree
from repro.engine import Database, FaultInjector, SimulatedCrash
from repro.methods.memory import BruteForceIntervals

#: Interval rows per workload, by scale preset.
ROWS_BY_SCALE = {"tiny": 30, "small": 120, "paper": 400}


def workload_rows(count):
    return [(i * 17 % 4000, i * 17 % 4000 + 25 + i % 50, i) for i in range(count)]


def ritree_steps(tree, rows):
    head, tail = rows[: len(rows) // 2], rows[len(rows) // 2 :]
    return [
        lambda: tree.bulk_load(head),
        lambda: tree.extend(tail),
        lambda: tree.insert(3, 9000, len(rows)),
        lambda: tree.delete(*rows[0]),
    ]


def temporal_steps(tree, rows):
    head, tail = rows[: len(rows) // 2], rows[len(rows) // 2 :]
    return [
        lambda: tree.bulk_load(head),
        lambda: tree.extend(tail),
        lambda: tree.insert_infinite(40, len(rows)),
        lambda: tree.insert_until_now(10, len(rows) + 1),
        lambda: tree.advance_to(5000),
        lambda: tree.delete(*rows[1]),
        lambda: tree.close_now_interval(10, len(rows) + 1, 4500),
    ]


CASES = {
    "ritree": (lambda db: RITree(db), RITree, ritree_steps),
    "temporal": (
        lambda db: TemporalRITree(db, now=100),
        TemporalRITree,
        temporal_steps,
    ),
}


def probe_queries(rows):
    lowers = sorted(lower for lower, _upper, _i in rows)
    step = max(1, len(lowers) // 8)
    return [(lower, lower + 400) for lower in lowers[::step]] + [(0, 10_000)]


def oracle_parity(store, queries):
    oracle = BruteForceIntervals(store.stored_records())
    for lower, upper in queries:
        if sorted(store.intersection(lower, upper)) != sorted(
            oracle.intersection(lower, upper)
        ):
            return False
    return True


def run_case(kind, rows):
    factory, store_cls, steps_for = CASES[kind]
    queries = probe_queries(rows)

    # Passive run: count write points, snapshot each committed state,
    # and record the WAL traffic of building the store.
    passive = FaultInjector()
    db = Database(wal=True, injector=passive)
    tree = factory(db)
    allowed_states = [sorted(tree.stored_records())]
    for step in steps_for(tree, rows):
        step()
        allowed_states.append(sorted(tree.stored_records()))
    db.flush()
    points = passive.write_points
    wal_writes = db.stats.wal_writes

    # One clean recovery measures the replay read traffic.
    clean = db.recover()
    wal_reads = clean.stats.wal_reads
    clean_store = store_cls.attach(clean)
    if not clean_store.verify().ok:
        raise SystemExit(f"{kind}: clean recovery fails verify()")
    if sorted(clean_store.stored_records()) != allowed_states[-1]:
        raise SystemExit(f"{kind}: clean recovery lost committed records")

    recovered_clean = 0
    replayed_total = 0
    for n in range(1, points + 1):
        injector = FaultInjector().crash_at_write_point(n)
        db = Database(wal=True, injector=injector)
        crashed = False
        try:
            tree = factory(db)
            for step in steps_for(tree, rows):
                step()
            db.flush()
        except SimulatedCrash:
            crashed = True
        recovered_db = db.recover()
        replayed_total += recovered_db.replayed_ops
        if not recovered_db.has_table("Intervals"):
            if not crashed:
                raise SystemExit(f"{kind}: point {n} lost the table silently")
            recovered_clean += 1
            continue
        recovered = store_cls.attach(recovered_db)
        report = recovered.verify()
        if not report.ok:
            raise SystemExit(
                f"{kind}: point {n} recovery fails verify(): "
                f"{[i.as_dict() for i in report.issues]}"
            )
        state = sorted(recovered.stored_records())
        if state not in allowed_states:
            raise SystemExit(f"{kind}: point {n} is not a committed prefix")
        if not crashed and state != allowed_states[-1]:
            raise SystemExit(f"{kind}: point {n} dropped a committed batch")
        if not oracle_parity(recovered, queries):
            raise SystemExit(f"{kind}: point {n} breaks query parity")
        recovered_clean += 1

    return {
        "store": kind,
        "crash_points": points,
        "recovered_clean": recovered_clean,
        "replayed_ops": replayed_total,
        "wal_writes": wal_writes,
        "wal_reads": wal_reads,
        "records": len(allowed_states[-1]),
    }


def run(scale_name):
    scale = get_scale(scale_name)
    count = ROWS_BY_SCALE.get(scale["name"], 120)
    rows = workload_rows(count)
    report = {"scale": scale["name"], "interval_count": count, "rows": []}
    started = time.perf_counter()
    for kind in sorted(CASES):
        report["rows"].append(run_case(kind, rows))
    elapsed = time.perf_counter() - started
    totals = {
        key: sum(row[key] for row in report["rows"])
        for key in (
            "crash_points",
            "recovered_clean",
            "replayed_ops",
            "wal_writes",
            "wal_reads",
            "records",
        )
    }
    totals["all_recovered"] = int(
        totals["recovered_clean"] == totals["crash_points"]
    )
    totals["time_s"] = elapsed
    report["summary"] = totals
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Crash-at-every-write-point recovery benchmark"
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="scale preset (default: REPRO_BENCH_SCALE or 'small')",
    )
    parser.add_argument("--output", default=None, help="path for the JSON report")
    args = parser.parse_args(argv)

    report = run(args.scale)
    text = json.dumps(report, indent=1)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    summary = report["summary"]
    for row in report["rows"]:
        print(
            f"{row['store']}: {row['recovered_clean']}/{row['crash_points']} "
            f"crash points recovered clean ({row['records']} records, "
            f"{row['replayed_ops']} ops replayed)"
        )
    print(
        f"total: {summary['recovered_clean']}/{summary['crash_points']} "
        f"recoveries verify()-clean and oracle-consistent "
        f"in {summary['time_s']:.2f}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
