"""Query workloads for the evaluation (paper Section 6.3).

"All query experiments ... have been performed with query intervals
following a distribution which is compatible to the respective interval
database."  Queries are therefore generated with the same starting-point
process as the data and a window length chosen for a *target selectivity*.

For a database of ``n`` intervals with mean length ``m`` over a domain of
size ``T``, a query window of length ``L`` placed uniformly intersects an
expected ``n * (L + m + 1) / T`` intervals, so the window for selectivity
``s`` is ``L = s * T - m - 1`` (clamped at 0: a point query).  The harness
additionally *measures* realised selectivity and reports it next to each
experiment, so the calibration never silently drifts.

:func:`sweeping_point_queries` reproduces Figure 17's protocol: "'sweeping'
a query point starting at the upper bound of the data space" toward lower
coordinates, which exposes the IST's degeneration.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .distributions import DOMAIN_MAX, IntervalRecord, Workload

QueryInterval = tuple[int, int]


def window_length_for_selectivity(
    selectivity: float, mean_length: float, domain_size: int = DOMAIN_MAX + 1
) -> int:
    """Window length giving the target selectivity in expectation."""
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError(f"selectivity {selectivity} outside [0, 1]")
    return max(0, int(round(selectivity * domain_size - mean_length - 1)))


def range_queries(
    workload: Workload, selectivity: float, count: int, seed: int = 1
) -> list[QueryInterval]:
    """Range queries compatible with ``workload`` at a target selectivity.

    Query starting points are drawn uniformly from the domain (matching the
    uniform / stationary-Poisson starting processes of Table 1) and windows
    are clamped to the domain.
    """
    if count <= 0:
        raise ValueError(f"query count must be positive, got {count}")
    rng = np.random.default_rng(seed)
    length = window_length_for_selectivity(selectivity, workload.mean_length)
    max_start = max(0, DOMAIN_MAX - length)
    starts = rng.integers(0, max_start + 1, size=count, dtype=np.int64)
    return [(int(start), int(min(start + length, DOMAIN_MAX))) for start in starts]


def point_queries(count: int, seed: int = 1) -> list[QueryInterval]:
    """Uniform degenerate (point) queries over the domain."""
    rng = np.random.default_rng(seed)
    points = rng.integers(0, DOMAIN_MAX + 1, size=count, dtype=np.int64)
    return [(int(p), int(p)) for p in points]


def sweeping_point_queries(
    distances: Sequence[int], domain_max: int = DOMAIN_MAX
) -> list[QueryInterval]:
    """Figure 17's sweep: one point query per distance to the domain's
    upper bound."""
    queries = []
    for distance in distances:
        if distance < 0 or distance > domain_max:
            raise ValueError(f"distance {distance} outside [0, {domain_max}]")
        point = domain_max - distance
        queries.append((point, point))
    return queries


def measured_selectivity(result_sizes: Sequence[int], n: int) -> float:
    """Realised selectivity of a query batch: mean result fraction."""
    if n <= 0 or not result_sizes:
        return 0.0
    return float(np.mean(result_sizes)) / n


def brute_force_results(
    records: Sequence[IntervalRecord], queries: Sequence[QueryInterval]
) -> list[int]:
    """Result sizes of ``queries`` against ``records`` (O(n) per query).

    Used by the harness to report realised selectivities and by tests to
    validate calibration, without touching any index under test.
    """
    if not records:
        return [0] * len(queries)
    lowers = np.array([lower for lower, _, __ in records], dtype=np.int64)
    uppers = np.array([upper for _, upper, __ in records], dtype=np.int64)
    sizes = []
    for q_lower, q_upper in queries:
        sizes.append(int(np.count_nonzero((lowers <= q_upper) & (uppers >= q_lower))))
    return sizes
