"""Workload generators: Table 1 interval databases, query batches and
join workloads (two relations with independent parameters)."""

from .distributions import (
    DISTRIBUTIONS,
    DOMAIN_BITS,
    DOMAIN_MAX,
    Workload,
    d1,
    d2,
    d3,
    d3_restricted,
    d4,
    make,
    table1_catalogue,
)
from .joins import (
    OUTER_ID_OFFSET,
    JoinWorkload,
    brute_force_pairs,
    expected_pair_count,
    join_grid,
    join_workload,
)
from .queries import (
    brute_force_results,
    measured_selectivity,
    point_queries,
    range_queries,
    sweeping_point_queries,
    window_length_for_selectivity,
)

__all__ = [
    "DISTRIBUTIONS",
    "DOMAIN_BITS",
    "DOMAIN_MAX",
    "JoinWorkload",
    "OUTER_ID_OFFSET",
    "Workload",
    "brute_force_pairs",
    "brute_force_results",
    "d1",
    "d2",
    "d3",
    "d3_restricted",
    "d4",
    "expected_pair_count",
    "join_grid",
    "join_workload",
    "make",
    "measured_selectivity",
    "point_queries",
    "range_queries",
    "sweeping_point_queries",
    "table1_catalogue",
    "window_length_for_selectivity",
]
