"""Workload generators: Table 1 interval databases, query batches, join
workloads (two relations with independent parameters), and the genomic
chromosome-partitioned scenario for range-duration queries."""

from .distributions import (
    DISTRIBUTIONS,
    DOMAIN_BITS,
    DOMAIN_MAX,
    Workload,
    d1,
    d2,
    d3,
    d3_restricted,
    d4,
    make,
    table1_catalogue,
)
from .genomic import (
    CHROMOSOME_DENSITY,
    CHROMOSOME_SIZES,
    chromosome_cuts,
    chromosome_slices,
    duration_band,
    genomic,
)
from .joins import (
    OUTER_ID_OFFSET,
    JoinWorkload,
    brute_force_pairs,
    expected_pair_count,
    join_grid,
    join_workload,
)
from .queries import (
    brute_force_results,
    measured_selectivity,
    point_queries,
    range_queries,
    sweeping_point_queries,
    window_length_for_selectivity,
)

__all__ = [
    "CHROMOSOME_DENSITY",
    "CHROMOSOME_SIZES",
    "DISTRIBUTIONS",
    "DOMAIN_BITS",
    "DOMAIN_MAX",
    "chromosome_cuts",
    "chromosome_slices",
    "duration_band",
    "genomic",
    "JoinWorkload",
    "OUTER_ID_OFFSET",
    "Workload",
    "brute_force_pairs",
    "brute_force_results",
    "d1",
    "d2",
    "d3",
    "d3_restricted",
    "d4",
    "expected_pair_count",
    "join_grid",
    "join_workload",
    "make",
    "measured_selectivity",
    "point_queries",
    "range_queries",
    "sweeping_point_queries",
    "table1_catalogue",
    "window_length_for_selectivity",
]
