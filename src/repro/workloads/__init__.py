"""Workload generators: the Table 1 interval databases and query batches."""

from .distributions import (
    DISTRIBUTIONS,
    DOMAIN_BITS,
    DOMAIN_MAX,
    Workload,
    d1,
    d2,
    d3,
    d3_restricted,
    d4,
    make,
    table1_catalogue,
)
from .queries import (
    brute_force_results,
    measured_selectivity,
    point_queries,
    range_queries,
    sweeping_point_queries,
    window_length_for_selectivity,
)

__all__ = [
    "DISTRIBUTIONS",
    "DOMAIN_BITS",
    "DOMAIN_MAX",
    "Workload",
    "brute_force_results",
    "d1",
    "d2",
    "d3",
    "d3_restricted",
    "d4",
    "make",
    "measured_selectivity",
    "point_queries",
    "range_queries",
    "sweeping_point_queries",
    "table1_catalogue",
    "window_length_for_selectivity",
]
