"""Genomic-style interval workloads: chromosome partitions, skewed shapes.

The scenario-diversity axis of the range-duration work ("Efficient
Genomic Interval Queries Using Augmented Range Trees", PAPERS.md):
genomic features are *chromosome-partitioned* -- the coordinate space is
a concatenation of disjoint chromosome slices, queries never cross a
slice boundary -- and their lengths are *heavily right-skewed* (a dense
mass of short exon-like features under a long tail of gene-scale
spans).  Both properties matter to this repo's machinery:

* the slice boundaries are natural shard cuts for
  :class:`~repro.core.router.ShardedStore` (no cut-crossers at all when
  the cuts sit on chromosome edges), and
* the duration skew is exactly what the cost model's duration histogram
  (:meth:`~repro.core.costmodel.BoundSummary.duration_fraction`) has to
  price for ``range_duration`` queries -- a uniform-duration workload
  would make every duration band look alike.

The generator maps the 24 human chromosomes (GRCh38 megabase lengths,
rounded) proportionally onto the paper's ``[0, 2^20 - 1]`` domain,
draws feature positions per-chromosome with a gene-density skew, and
draws lengths from a two-component log-normal mixture (exon-like vs
gene-like).  Deterministic under ``seed``, like every other generator
in :mod:`repro.workloads`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .distributions import DOMAIN_MAX, IntervalRecord, Workload

#: GRCh38 chromosome lengths in megabases (rounded), the proportional
#: layout of the concatenated coordinate space.
CHROMOSOME_SIZES: tuple[tuple[str, int], ...] = (
    ("chr1", 248), ("chr2", 242), ("chr3", 198), ("chr4", 190),
    ("chr5", 181), ("chr6", 171), ("chr7", 159), ("chr8", 145),
    ("chr9", 138), ("chr10", 134), ("chr11", 135), ("chr12", 133),
    ("chr13", 114), ("chr14", 107), ("chr15", 102), ("chr16", 90),
    ("chr17", 83), ("chr18", 80), ("chr19", 59), ("chr20", 64),
    ("chr21", 47), ("chr22", 51), ("chrX", 156), ("chrY", 57),
)

#: Relative feature density per chromosome: approximate protein-coding
#: gene counts per megabase (gene-dense chr19 carries ~4x the density of
#: gene-poor chr13/chrY), the skew that makes per-shard load uneven.
CHROMOSOME_DENSITY: dict[str, float] = {
    "chr1": 1.00, "chr2": 0.62, "chr3": 0.63, "chr4": 0.50,
    "chr5": 0.58, "chr6": 0.71, "chr7": 0.69, "chr8": 0.58,
    "chr9": 0.67, "chr10": 0.66, "chr11": 1.09, "chr12": 0.91,
    "chr13": 0.38, "chr14": 0.68, "chr15": 0.69, "chr16": 1.06,
    "chr17": 1.63, "chr18": 0.42, "chr19": 2.45, "chr20": 0.89,
    "chr21": 0.56, "chr22": 0.95, "chrX": 0.58, "chrY": 0.21,
}


def chromosome_slices(
    domain_max: int = DOMAIN_MAX,
) -> list[tuple[str, int, int]]:
    """``(name, lo, hi)`` slices tiling ``[0, domain_max]`` proportionally.

    Slice widths follow :data:`CHROMOSOME_SIZES`; consecutive slices
    are adjacent and disjoint, so the interior boundaries double as
    shard cuts that no well-formed genomic feature ever crosses.
    """
    total = sum(size for _, size in CHROMOSOME_SIZES)
    slices: list[tuple[str, int, int]] = []
    edge = 0
    acc = 0
    for name, size in CHROMOSOME_SIZES:
        acc += size
        hi = (domain_max + 1) * acc // total - 1
        slices.append((name, edge, max(edge, hi)))
        edge = hi + 1
    return slices


def chromosome_cuts(
    shard_count: int, domain_max: int = DOMAIN_MAX
) -> list[int]:
    """``shard_count - 1`` chromosome-edge cuts for the sharding router.

    Picks interior slice boundaries that split the genome into
    ``shard_count`` groups of consecutive chromosomes with roughly equal
    coordinate mass -- cuts a chromosome-partitioned workload's records
    never straddle, so the router replicates nothing.
    """
    if shard_count < 1:
        raise ValueError(f"need at least one shard, got {shard_count}")
    slices = chromosome_slices(domain_max)
    if shard_count > len(slices):
        raise ValueError(
            f"at most {len(slices)} chromosome-aligned shards, "
            f"got {shard_count}")
    cuts = []
    for k in range(1, shard_count):
        index = len(slices) * k // shard_count
        # The router treats a cut as the *last* coordinate of a shard,
        # so the cut is the hi edge of the slice left of the boundary.
        cuts.append(slices[index][1] - 1)
    return cuts


def _mixture_lengths(
    rng: np.random.Generator,
    n: int,
    exon_fraction: float,
    exon_scale: float,
    gene_scale: float,
) -> np.ndarray:
    """Two-component log-normal length mixture, heavily right-skewed."""
    is_exon = rng.random(n) < exon_fraction
    exon = rng.lognormal(mean=np.log(exon_scale), sigma=0.8, size=n)
    gene = rng.lognormal(mean=np.log(gene_scale), sigma=1.1, size=n)
    return np.where(is_exon, exon, gene).astype(np.int64)


def genomic(
    n: int,
    seed: int = 0,
    exon_fraction: float = 0.75,
    exon_scale: float = 8.0,
    gene_scale: float = 600.0,
    domain_max: int = DOMAIN_MAX,
) -> Workload:
    """A chromosome-partitioned database of ``n`` skewed features.

    Each record picks a chromosome with probability proportional to
    slice width times gene density, a start uniform inside the slice,
    and a length from the exon/gene log-normal mixture clipped at the
    slice end -- features never cross chromosome boundaries, matching
    the genomic invariant the shard cuts rely on.
    """
    if n < 0:
        raise ValueError(f"negative cardinality {n}")
    rng = np.random.default_rng(seed)
    slices = chromosome_slices(domain_max)
    weights = np.array(
        [(hi - lo + 1) * CHROMOSOME_DENSITY[name]
         for name, lo, hi in slices],
        dtype=np.float64)
    weights /= weights.sum()
    chosen = rng.choice(len(slices), size=n, p=weights)
    lengths = _mixture_lengths(
        rng, n, exon_fraction, exon_scale, gene_scale)
    records: list[IntervalRecord] = []
    for i in range(n):
        _name, lo, hi = slices[chosen[i]]
        start = int(rng.integers(lo, hi + 1))
        upper = min(start + int(lengths[i]), hi)
        records.append((start, upper, i))
    mean_duration = int(np.mean(lengths)) if n else 0
    return Workload(
        name=f"genomic({n})",
        n=n,
        duration_param=mean_duration,
        seed=seed,
        records=records,
    )


def duration_band(
    records: Sequence[IntervalRecord],
    lo_fraction: float,
    hi_fraction: float,
) -> tuple[int, Optional[int]]:
    """An empirical duration band ``(dmin, dmax)`` from length quantiles.

    ``lo_fraction``/``hi_fraction`` are CDF positions in ``[0, 1]``;
    the returned band covers roughly ``hi_fraction - lo_fraction`` of
    the records' durations, which is how the benches build their
    duration-selectivity grid without hard-coding shape parameters.
    ``hi_fraction >= 1`` returns an open band (``dmax=None``).
    """
    if not 0.0 <= lo_fraction <= hi_fraction:
        raise ValueError(
            f"invalid band fractions [{lo_fraction}, {hi_fraction}]")
    durations = sorted(upper - lower for lower, upper, _ in records)
    if not durations:
        return (0, None)
    last = len(durations) - 1

    def quantile(fraction: float) -> int:
        return durations[min(last, int(round(fraction * last)))]

    dmin = 0 if lo_fraction <= 0.0 else quantile(lo_fraction)
    dmax = None if hi_fraction >= 1.0 else quantile(hi_fraction)
    return (dmin, dmax)
