"""Join workloads: two interval relations with independent parameters.

The Section 6 experiments drive single-predicate intersection queries; the
join benchmark needs *two* datasets whose cardinality and mean duration
are controlled independently, so the index-vs-sweep trade-off can be
swept along both axes (many short probes against a large inner relation,
few long probes, symmetric sides, ...).  Both sides reuse the Table 1
distribution generators, with decorrelated derived seeds and disjoint id
spaces (outer ids are offset past the inner relation's), so a join pair
``(outer_id, inner_id)`` is unambiguous.

:func:`expected_pair_count` is an independent counting oracle -- two
``searchsorted`` passes instead of any join algorithm -- used by tests and
the benchmark's parity check as a fourth, structurally unrelated vote on
the correct result size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .distributions import IntervalRecord, Workload, make

#: Offset separating outer ids from inner ids in a generated join workload.
OUTER_ID_OFFSET = 1_000_000_000


@dataclass
class JoinWorkload:
    """Two generated interval relations plus their join parameters."""

    name: str
    outer: Workload
    inner: Workload
    seed: int

    @property
    def pair_domain(self) -> int:
        """Size of the cross product (the nested-loop oracle's work)."""
        return self.outer.n * self.inner.n

    def expected_pairs(self) -> int:
        """Join size by the counting oracle (no join algorithm involved)."""
        return expected_pair_count(self.outer.records, self.inner.records)

    def selectivity(self) -> float:
        """Join selectivity: result pairs over the cross-product size."""
        if self.pair_domain == 0:
            return 0.0
        return self.expected_pairs() / self.pair_domain


def join_workload(
    outer_n: int,
    inner_n: int,
    outer_d: int = 2000,
    inner_d: int = 2000,
    outer_dist: str = "D1",
    inner_dist: str = "D1",
    seed: int = 0,
) -> JoinWorkload:
    """Generate a join workload from two Table 1 distributions.

    Cardinality (``outer_n`` / ``inner_n``) and mean duration
    (``outer_d`` / ``inner_d``) are controlled per side; the two sides
    draw from decorrelated seeds so equal parameters still give
    independent relations.  Outer ids are shifted by
    :data:`OUTER_ID_OFFSET` to keep the id spaces disjoint.
    """
    outer = make(outer_dist, outer_n, outer_d, seed=seed * 2 + 1)
    inner = make(inner_dist, inner_n, inner_d, seed=seed * 2 + 2)
    if outer.records and inner.records and inner_n > OUTER_ID_OFFSET:
        raise ValueError(
            f"inner cardinality {inner_n} collides with the outer id "
            f"offset {OUTER_ID_OFFSET}"
        )
    shifted = [
        (lower, upper, interval_id + OUTER_ID_OFFSET)
        for lower, upper, interval_id in outer.records
    ]
    outer = Workload(
        name=outer.name,
        n=outer.n,
        duration_param=outer.duration_param,
        seed=outer.seed,
        records=shifted,
    )
    name = (
        f"{outer.name} JOIN {inner.name}"
        if outer_dist != inner_dist or (outer_n, outer_d) != (inner_n, inner_d)
        else f"{outer.name} self-shaped join"
    )
    return JoinWorkload(name=name, outer=outer, inner=inner, seed=seed)


def join_grid(
    outer_ns: Sequence[int],
    inner_ns: Sequence[int],
    inner_ds: Sequence[int],
    outer_d: int = 2000,
    outer_dist: str = "D1",
    inner_dist: str = "D1",
    seed: int = 0,
) -> list[JoinWorkload]:
    """The crossover grid: one workload per parameter combination.

    The cartesian product of outer cardinality, inner cardinality, and
    inner mean duration -- the three axes along which the index-vs-sweep
    trade-off moves (probe count scales index cost, inner size scales the
    sweep's input scan, duration scales the join selectivity).  Every
    grid point draws from its own derived seed, so neighbouring points
    are independent samples rather than nested subsets.
    """
    grid: list[JoinWorkload] = []
    for point, (outer_n, inner_n, inner_d) in enumerate(
        (o, i, d) for o in outer_ns for i in inner_ns for d in inner_ds
    ):
        grid.append(
            join_workload(
                outer_n=outer_n,
                inner_n=inner_n,
                outer_d=outer_d,
                inner_d=inner_d,
                outer_dist=outer_dist,
                inner_dist=inner_dist,
                seed=seed * 10_000 + point,
            )
        )
    return grid


def expected_pair_count(
    outer: Sequence[IntervalRecord], inner: Sequence[IntervalRecord]
) -> int:
    """Exact join size by order statistics, O((n + m) log m).

    For each outer ``[lo, hi]`` the overlap count over the inner relation
    is ``#{lower <= hi} - #{upper < lo}``: every inner interval starting
    by ``hi`` overlaps unless it ended before ``lo``.  Two sorted arrays
    and two ``searchsorted`` calls per probe -- no join algorithm, hence
    an independent oracle for the three strategies' parity checks.
    """
    if not outer or not inner:
        return 0
    lowers = np.sort(np.array([r[0] for r in inner], dtype=np.int64))
    uppers = np.sort(np.array([r[1] for r in inner], dtype=np.int64))
    q_lowers = np.array([r[0] for r in outer], dtype=np.int64)
    q_uppers = np.array([r[1] for r in outer], dtype=np.int64)
    starts_by = np.searchsorted(lowers, q_uppers, side="right")
    ended_before = np.searchsorted(uppers, q_lowers, side="left")
    return int(np.sum(starts_by - ended_before))


def brute_force_pairs(
    outer: Sequence[IntervalRecord], inner: Sequence[IntervalRecord]
) -> list[tuple[int, int]]:
    """Vectorised brute-force pair list (numpy inner loop).

    Nested-loop semantics -- every outer record is compared against every
    inner record -- with the inner loop as one boolean mask, so paper-size
    workloads stay feasible as oracles.  Pure-Python brute force lives in
    :class:`repro.core.join.NestedLoopJoin`.
    """
    if not outer or not inner:
        return []
    lowers = np.array([r[0] for r in inner], dtype=np.int64)
    uppers = np.array([r[1] for r in inner], dtype=np.int64)
    ids = np.array([r[2] for r in inner], dtype=np.int64)
    pairs: list[tuple[int, int]] = []
    for r_lower, r_upper, r_id in outer:
        mask = (lowers <= r_upper) & (uppers >= r_lower)
        pairs.extend((r_id, int(s_id)) for s_id in ids[mask])
    return pairs
