"""The interval databases of the paper's Table 1.

    Name     | starting points                  | durations
    ---------+----------------------------------+-----------------------------
    D1(n,d)  | uniform in [0, 2^20 - 1]         | uniform in [0, 2d]
    D2(n,d)  | uniform in [0, 2^20 - 1]         | exponential, mean d
    D3(n,d)  | Poisson process in [0, 2^20 - 1] | uniform in [0, 2d]
    D4(n,d)  | Poisson process in [0, 2^20 - 1] | exponential, mean d

"The bounding points of all intervals lie in the domain of [0, 2^20 - 1].
For the distributions D3 and D4, we assume transaction time or valid time
intervals where the arrival of temporal tuples follows a Poisson process.
Thus the inter-arrival time is distributed exponentially." (Section 6.1.)

The evaluation writes ``D4(*, 2k)`` for a sweep over the cardinality with
mean duration 2,000, and ``D1(100k, 2k)`` for a fixed database of 100,000
intervals.  Figure 15 additionally restricts the D3 duration range, which
:func:`d3_restricted` provides.

All generators are deterministic under ``seed`` and clamp upper bounds to
the domain, as the paper's domain statement requires.  Poisson-process
distributions yield intervals in arrival (start) order -- the operationally
meaningful difference from D1/D2 for an append-style temporal workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

#: The paper's data space: [0, 2^20 - 1].
DOMAIN_BITS = 20
DOMAIN_MAX = 2**DOMAIN_BITS - 1

IntervalRecord = tuple[int, int, int]


@dataclass
class Workload:
    """A generated interval database plus its parameters."""

    name: str
    n: int
    duration_param: int
    seed: int
    records: list[IntervalRecord] = field(repr=False)

    @property
    def mean_length(self) -> float:
        """Average ``upper - lower`` over the database."""
        if not self.records:
            return 0.0
        return float(np.mean([upper - lower for lower, upper, _ in self.records]))

    def bounds(self) -> tuple[int, int]:
        """(min lower, max upper) over the database."""
        lowers = [lower for lower, _, __ in self.records]
        uppers = [upper for _, upper, __ in self.records]
        return min(lowers), max(uppers)


def _clamp_uppers(starts: np.ndarray, durations: np.ndarray) -> np.ndarray:
    return np.minimum(starts + durations, DOMAIN_MAX)


def _uniform_starts(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.integers(0, DOMAIN_MAX + 1, size=n, dtype=np.int64)


def _poisson_starts(rng: np.random.Generator, n: int) -> np.ndarray:
    """Arrival times of a Poisson process filling [0, DOMAIN_MAX].

    Inter-arrival times are exponential with mean ``DOMAIN_MAX / n`` so the
    process spans the domain in expectation; arrivals beyond the domain end
    (a tail of a few per database) are clamped.  Output is in arrival order.
    """
    gaps = rng.exponential(scale=DOMAIN_MAX / n, size=n)
    starts = np.minimum(np.cumsum(gaps), DOMAIN_MAX).astype(np.int64)
    return starts


def _uniform_durations(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    return rng.integers(0, 2 * d + 1, size=n, dtype=np.int64)


def _exponential_durations(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    if d == 0:
        return np.zeros(n, dtype=np.int64)
    return rng.exponential(scale=d, size=n).astype(np.int64)


def _build(
    name: str,
    n: int,
    d: int,
    seed: int,
    starts_fn: Callable[[np.random.Generator, int], np.ndarray],
    durations_fn: Callable[[np.random.Generator, int, int], np.ndarray],
) -> Workload:
    if n < 0:
        raise ValueError(f"negative cardinality {n}")
    if d < 0:
        raise ValueError(f"negative duration parameter {d}")
    rng = np.random.default_rng(seed)
    starts = starts_fn(rng, n)
    durations = durations_fn(rng, n, d)
    uppers = _clamp_uppers(starts, durations)
    records = [
        (int(lower), int(upper), i)
        for i, (lower, upper) in enumerate(zip(starts, uppers))
    ]
    return Workload(name=name, n=n, duration_param=d, seed=seed, records=records)


def d1(n: int, d: int, seed: int = 0) -> Workload:
    """D1(n, d): uniform starts, uniform durations in [0, 2d]."""
    return _build(f"D1({n},{d})", n, d, seed, _uniform_starts, _uniform_durations)


def d2(n: int, d: int, seed: int = 0) -> Workload:
    """D2(n, d): uniform starts, exponential durations with mean d."""
    return _build(f"D2({n},{d})", n, d, seed, _uniform_starts, _exponential_durations)


def d3(n: int, d: int, seed: int = 0) -> Workload:
    """D3(n, d): Poisson-process starts, uniform durations in [0, 2d]."""
    return _build(f"D3({n},{d})", n, d, seed, _poisson_starts, _uniform_durations)


def d4(n: int, d: int, seed: int = 0) -> Workload:
    """D4(n, d): Poisson-process starts, exponential durations with mean d."""
    return _build(f"D4({n},{d})", n, d, seed, _poisson_starts, _exponential_durations)


def d3_restricted(n: int, min_length: int, max_length: int, seed: int = 0) -> Workload:
    """The Figure 15 variant: D3 with durations uniform in a restricted range.

    The paper restricts the length domain "from [0, 4k] to [500, 3.5k],
    [1k, 3k], and [1.5k, 2.5k]" to study the minstep/granularity effect.
    """
    if not 0 <= min_length <= max_length:
        raise ValueError(f"invalid length range [{min_length}, {max_length}]")
    if max_length > DOMAIN_MAX:
        raise ValueError(f"max_length {max_length} exceeds the domain")
    rng = np.random.default_rng(seed)
    # Cap starts so that no upper bound needs clamping: every stored
    # interval keeps a length inside the restricted range, which is the
    # point of the Figure 15 experiment (minstep tracks the *minimum*
    # stored length, so a single clamped short interval would defeat it).
    starts = np.minimum(_poisson_starts(rng, n), DOMAIN_MAX - max_length)
    durations = rng.integers(min_length, max_length + 1, size=n, dtype=np.int64)
    records = [
        (int(lower), int(lower + length), i)
        for i, (lower, length) in enumerate(zip(starts, durations))
    ]
    return Workload(
        name=f"D3({n},[{min_length},{max_length}])",
        n=n,
        duration_param=(min_length + max_length) // 2,
        seed=seed,
        records=records,
    )


#: Dispatch table for the four Table 1 distributions.
DISTRIBUTIONS: dict[str, Callable[..., Workload]] = {
    "D1": d1,
    "D2": d2,
    "D3": d3,
    "D4": d4,
}


def make(name: str, n: int, d: int, seed: int = 0) -> Workload:
    """Build a Table 1 workload by name ("D1" .. "D4")."""
    try:
        factory = DISTRIBUTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown distribution {name!r}; expected one of {sorted(DISTRIBUTIONS)}"
        ) from None
    return factory(n, d, seed)


def table1_catalogue(n: int = 1000, d: int = 2000, seed: int = 0) -> Sequence[Workload]:
    """One instance of each Table 1 distribution (for tests and Table 1's
    reproduction bench)."""
    return [make(name, n, d, seed) for name in sorted(DISTRIBUTIONS)]
