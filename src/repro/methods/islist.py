"""The Interval Skip List of Hanson and Johnson [HJ 96] (paper Section 2.1).

"More recent developments include the Interval Skip List and the IBS-Tree
of Hanson et al."  A probabilistic main-memory structure for stabbing
queries over a dynamic interval set:

* a skip list over the interval endpoint values;
* each interval ``I = [l, u]`` leaves *markers* on a set of skip-list edges
  whose spans exactly tile ``(l, u)``, always using the highest (longest)
  edges that fit inside ``I`` -- O(log n) markers in expectation;
* nodes whose key lies inside a marker-adjacent interval carry the interval
  in their *eqMarkers* set, so stabbing exactly an endpoint works too.

A stabbing query walks the ordinary skip-list search path for ``q``: at
each level, the edge that would overshoot ``q`` spans ``q``, so all its
markers contain ``q``; the landing node contributes its eqMarkers if its
key equals ``q``.  Expected cost O(log n + r).

Invariants maintained across updates (checked by ``check_invariants``):

* **containment** -- a marker for ``I`` on edge ``(x, y)`` implies
  ``[x.key, y.key]`` is contained in ``I``;
* **coverage** -- the marked edges of ``I`` tile ``[l, u]`` exactly, so
  every stab inside ``I`` meets one of them (or an eq-marked node).

Inserting an endpoint node splits edges; markers on a split edge are pushed
down onto the two halves (preserving both invariants).  The original
structure additionally re-hoists markers onto the new node's higher edges
to keep the per-interval marker count logarithmic under heavy mixed
workloads; this implementation keeps the simpler split-only maintenance
(correctness is unaffected, markers may sit lower than optimal).  A
per-interval registry of marker locations makes deletion O(markers)
instead of a span walk.

Intersection queries use the classical reduction: ``stab(l)`` plus every
interval whose lower bound falls in ``(l, u]``, tracked in a sorted list.
"""

from __future__ import annotations

import random
from bisect import bisect_right, insort
from typing import Iterable, Optional

from ..core.interval import validate_interval

#: Maximum node height; 2^32 endpoints is far beyond any realistic use.
MAX_LEVEL = 32


class _ISNode:
    """A skip-list node: key, forward pointers and per-edge marker sets."""

    __slots__ = ("key", "forward", "markers", "eq_markers")

    def __init__(self, key: int, level: int) -> None:
        self.key = key
        self.forward: list[Optional["_ISNode"]] = [None] * level
        # markers[i] marks the edge (self -> forward[i]).
        self.markers: list[set[int]] = [set() for _ in range(level)]
        self.eq_markers: set[int] = set()

    @property
    def level(self) -> int:
        return len(self.forward)


class IntervalSkipList:
    """Dynamic stabbing/intersection queries via a marked skip list."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._head = _ISNode(-(2**62), MAX_LEVEL)
        self._intervals: dict[int, tuple[int, int]] = {}
        # id -> edge marker locations [(node, level)] and eq locations.
        self._edge_registry: dict[int, list[tuple[_ISNode, int]]] = {}
        self._eq_registry: dict[int, list[_ISNode]] = {}
        self._by_lower: list[tuple[int, int]] = []  # (lower, id)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """Register ``[lower, upper]`` (expected O(log^2 n) marker work)."""
        validate_interval(lower, upper)
        if interval_id in self._intervals:
            raise KeyError(f"duplicate id {interval_id}")
        self._ensure_node(lower)
        self._ensure_node(upper)
        self._intervals[interval_id] = (lower, upper)
        self._edge_registry[interval_id] = []
        self._eq_registry[interval_id] = []
        self._place_markers(lower, upper, interval_id)
        insort(self._by_lower, (lower, interval_id))

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Remove a registered interval by clearing its markers."""
        stored = self._intervals.get(interval_id)
        if stored != (lower, upper):
            raise KeyError((lower, upper, interval_id))
        for node, level in self._edge_registry.pop(interval_id):
            node.markers[level].discard(interval_id)
        for node in self._eq_registry.pop(interval_id):
            node.eq_markers.discard(interval_id)
        del self._intervals[interval_id]
        self._by_lower.remove((lower, interval_id))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stab(self, point: int) -> list[int]:
        """Ids of intervals containing ``point`` (expected O(log n + r))."""
        results: set[int] = set()
        node = self._head
        for level in range(MAX_LEVEL - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key <= point:
                node = node.forward[level]
            # The edge (node -> forward[level]) overshoots `point`, so all
            # its markers span it.
            if node.forward[level] is not None and node.key < point:
                results.update(node.markers[level])
            elif node.key == point:
                results.update(node.eq_markers)
                break
        if node.key == point:
            results.update(node.eq_markers)
        return sorted(results)

    def intersection(self, lower: int, upper: int) -> list[int]:
        """stab(lower) plus every interval starting in ``(lower, upper]``."""
        validate_interval(lower, upper)
        results = self.stab(lower)
        start = bisect_right(self._by_lower, (lower, 2**62))
        end = bisect_right(self._by_lower, (upper, 2**62))
        results.extend(interval_id for _, interval_id in self._by_lower[start:end])
        return results

    def __len__(self) -> int:
        return len(self._intervals)

    # ------------------------------------------------------------------
    # marker machinery
    # ------------------------------------------------------------------
    def _search_path(self, key: int) -> list[_ISNode]:
        """Rightmost node with key < ``key`` at every level, top to 0."""
        path = [self._head] * MAX_LEVEL
        node = self._head
        for level in range(MAX_LEVEL - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
            path[level] = node
        return path

    def _find_node(self, key: int) -> Optional[_ISNode]:
        candidate = self._search_path(key)[0].forward[0]
        if candidate is not None and candidate.key == key:
            return candidate
        return None

    def _random_level(self) -> int:
        level = 1
        while level < MAX_LEVEL and self._rng.random() < 0.5:
            level += 1
        return level

    def _ensure_node(self, key: int) -> _ISNode:
        """Find or insert the node for ``key``, splitting edge markers."""
        path = self._search_path(key)
        existing = path[0].forward[0]
        if existing is not None and existing.key == key:
            return existing
        node = _ISNode(key, self._random_level())
        for level in range(node.level):
            predecessor = path[level]
            successor = predecessor.forward[level]
            node.forward[level] = successor
            predecessor.forward[level] = node
            if predecessor is self._head and successor is None:
                continue
            # Split the old edge's markers onto the two halves.  Both
            # halves are still inside every marked interval (containment
            # held for the longer edge), so coverage is preserved.
            moved = predecessor.markers[level]
            if not moved:
                continue
            predecessor.markers[level] = set()
            for interval_id in moved:
                self._edge_registry[interval_id].remove((predecessor, level))
                self._mark_edge(predecessor, level, interval_id)
                if successor is not None:
                    self._mark_edge(node, level, interval_id)
                # The new node lies strictly inside the interval.
                self._mark_eq(node, interval_id)
        return node

    def _mark_edge(self, node: _ISNode, level: int, interval_id: int) -> None:
        if interval_id not in node.markers[level]:
            node.markers[level].add(interval_id)
            self._edge_registry[interval_id].append((node, level))

    def _mark_eq(self, node: _ISNode, interval_id: int) -> None:
        if interval_id not in node.eq_markers:
            node.eq_markers.add(interval_id)
            self._eq_registry[interval_id].append(node)

    def _place_markers(self, lower: int, upper: int, interval_id: int) -> None:
        """Tile ``[lower, upper]`` with the highest edges that fit."""
        node = self._find_node(lower)
        assert node is not None
        self._mark_eq(node, interval_id)
        while node.key < upper:
            level = 0
            # Ascend while a higher edge still lands inside the interval.
            while (
                level + 1 < node.level
                and node.forward[level + 1] is not None
                and node.forward[level + 1].key <= upper
            ):
                level += 1
            # Descend while the current edge overshoots.
            while level >= 0 and (
                node.forward[level] is None or node.forward[level].key > upper
            ):
                level -= 1
            if level < 0:
                break
            self._mark_edge(node, level, interval_id)
            node = node.forward[level]
            self._mark_eq(node, interval_id)

    # ------------------------------------------------------------------
    # verification (tests only)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Containment + coverage of every registered interval."""
        for interval_id, (lower, upper) in self._intervals.items():
            covered: list[tuple[int, int]] = []
            for node, level in self._edge_registry[interval_id]:
                successor = node.forward[level]
                assert successor is not None, "marker on a dangling edge"
                assert interval_id in node.markers[level]
                assert lower <= node.key and successor.key <= upper, (
                    f"containment violated for {interval_id}"
                )
                covered.append((node.key, successor.key))
            covered.sort()
            # Coverage: the marked spans tile [lower, upper] seamlessly.
            if lower == upper:
                assert not covered
            else:
                assert covered, f"no markers for {interval_id}"
                assert covered[0][0] == lower
                assert covered[-1][1] == upper
                for (_, previous_end), (next_start, _) in zip(covered, covered[1:]):
                    assert previous_end == next_start, (
                        f"coverage gap for {interval_id}"
                    )
            for node in self._eq_registry[interval_id]:
                assert lower <= node.key <= upper


def build_interval_skip_list(
    records: Iterable[tuple[int, int, int]], seed: int = 0
) -> IntervalSkipList:
    """Convenience constructor from (lower, upper, id) records."""
    skip_list = IntervalSkipList(seed=seed)
    for lower, upper, interval_id in records:
        skip_list.insert(lower, upper, interval_id)
    return skip_list
