"""Competitor access methods and main-memory reference structures.

Relational competitors (paper Section 2.3 / Section 6):

* :class:`~repro.methods.tindex.TileIndex` -- Oracle8i Spatial's hybrid
  tiling in one dimension, with the paper's sample-based level tuning;
* :class:`~repro.methods.ist.ISTree` -- the Interval-Spatial Transformation
  (D-, V- and H-orderings as composite indexes);
* :class:`~repro.methods.map21.Map21` -- single-column z-encoding with
  static length partitions;
* :class:`~repro.methods.windowlist.WindowList` -- the static Window-List.

Main-memory structures (paper Section 2.1), used as substrates and test
oracles: :class:`~repro.methods.memory.IntervalTree` (Edelsbrunner),
:class:`~repro.methods.memory.SegmentTree` (Bentley) and
:class:`~repro.methods.memory.BruteForceIntervals`.
"""

from .islist import IntervalSkipList, build_interval_skip_list
from .ist import ORDERINGS, ISTree
from .map21 import Map21
from .memory import (
    BruteForceIntervals,
    IntervalTree,
    PrioritySearchTree,
    SegmentTree,
)
from .tindex import DEFAULT_DOMAIN_BITS, TileIndex, tune_fixed_level
from .windowlist import WindowList

__all__ = [
    "BruteForceIntervals",
    "DEFAULT_DOMAIN_BITS",
    "ISTree",
    "IntervalSkipList",
    "IntervalTree",
    "Map21",
    "build_interval_skip_list",
    "ORDERINGS",
    "PrioritySearchTree",
    "SegmentTree",
    "TileIndex",
    "WindowList",
    "tune_fixed_level",
]
