"""Static Window-List after Ramaswamy [Ram 97].

Paper Sections 2.3 and 6.1: "The Window-List technique ... is a static
solution for the interval management problem and employs built-in B+-trees.
The optimal complexity of O(n/b) space and O(log_b n + r/b) I/Os for
stabbing queries is achieved.  Unfortunately, updates do not seem to have
non-trivial upper bounds ..."; experimentally, "queries on Window-Lists
produced twice as many I/O operations than on the dynamic RI-tree".

Reconstruction (documented substitution, DESIGN.md section 2)
-------------------------------------------------------------
The original windowing scheme's details are not reproducible from the
paper; this implementation keeps the three properties the comparison rests
on:

* **bulk-built and static** -- :meth:`bulk_load` sweeps the intervals once;
  subsequent :meth:`insert`/:meth:`delete` calls fall into an unindexed
  overflow relation that every query must scan, reproducing the advertised
  O(n/b) degradation under updates;
* **linear space on plain B+-trees** -- the sweep opens a new window
  whenever the number of interval starts since the previous boundary
  reaches the size of that boundary's snapshot (so total snapshot copies
  are bounded by total starts: O(n) entries overall);
* **logarithmic stabbing queries with a copy overhead** -- a stab locates
  its window in a directory B+-tree, reads the window's snapshot (intervals
  alive at the boundary) and scans the starts inside the window; the
  snapshot copies are the structural reason its I/O sits above the
  RI-tree's.

An intersection query ``[l, u]`` is the classical reduction
``stab(l) + every interval starting in (l, u]``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.access import AccessMethod, IntervalRecord
from ..core.interval import validate_interval
from ..engine.database import Database

#: A window never closes before this many starts, whatever its snapshot size.
MIN_WINDOW_STARTS = 16


class WindowList(AccessMethod):
    """Bulk-built window list over the storage engine.

    Relations:

    * ``windir(start, window_no)`` -- window directory, one row per window;
    * ``snapshots(window_no, upper, lower, id)`` -- intervals alive at each
      window boundary (the redundant copies);
    * ``starts(lower, upper, id)`` -- every interval, keyed by lower bound;
    * ``overflow(lower, upper, id)`` -- post-build updates, unindexed.
    """

    method_name = "Window-List"

    def __init__(self, db: Optional[Database] = None, name: str = "WindowList") -> None:
        super().__init__(db)
        self.windir = self.db.create_table(f"{name}_dir", ["start", "window_no"])
        self.windir.create_index("dirIndex", ["start", "window_no"])
        self.snapshots = self.db.create_table(
            f"{name}_snap", ["window_no", "upper", "lower", "id"]
        )
        self.snapshots.create_index("snapIndex", ["window_no", "upper", "lower", "id"])
        self.starts = self.db.create_table(f"{name}_starts", ["lower", "upper", "id"])
        self.starts.create_index("startIndex", ["lower", "upper", "id"])
        self.overflow = self.db.create_table(
            f"{name}_overflow", ["lower", "upper", "id"]
        )
        self._built = False
        self._window_starts: list[int] = []
        self._overflow_deletes: set[tuple[int, int, int]] = set()
        self._base_count = 0
        self._overflow_count = 0

    # ------------------------------------------------------------------
    # static build
    # ------------------------------------------------------------------
    def bulk_load(self, intervals: Sequence[IntervalRecord]) -> None:
        """One sweep over the intervals, sorted by lower bound."""
        if self._built or self._base_count or self._overflow_count:
            raise ValueError(
                "the Window-List is static: bulk_load once, before any update"
            )
        records = sorted(intervals)
        start_rows: list[tuple[int, int, int]] = []
        snapshot_rows: list[tuple[int, int, int, int]] = []
        dir_rows: list[tuple[int, int]] = []

        # Active set: intervals whose window has opened and not yet closed,
        # as (upper, lower, id) -- pruned lazily at each boundary.
        active: list[tuple[int, int, int]] = []
        window_no = -1
        starts_in_window = 0
        snapshot_size = 0
        for lower, upper, interval_id in records:
            validate_interval(lower, upper)
            open_new = window_no < 0 or starts_in_window >= max(
                MIN_WINDOW_STARTS, snapshot_size
            )
            if open_new:
                window_no += 1
                # Prune dead intervals; snapshot the survivors at `lower`.
                # Intervals that *start exactly at* the boundary stay out of
                # the snapshot -- the starts scan covers them -- so the two
                # query branches stay disjoint (no duplicates).
                active = [(e, s, i) for (e, s, i) in active if e >= lower]
                snapshot = [(e, s, i) for (e, s, i) in active if s < lower]
                for e, s, i in snapshot:
                    snapshot_rows.append((window_no, e, s, i))
                snapshot_size = len(snapshot)
                dir_rows.append((lower, window_no))
                self._window_starts.append(lower)
                starts_in_window = 0
            start_rows.append((lower, upper, interval_id))
            active.append((upper, lower, interval_id))
            starts_in_window += 1

        self.starts.bulk_load(start_rows)
        self.snapshots.bulk_load(snapshot_rows)
        self.windir.bulk_load(dir_rows)
        self._base_count = len(records)
        self._built = True

    # ------------------------------------------------------------------
    # updates (the structure's weak point, kept deliberately weak)
    # ------------------------------------------------------------------
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """Post-build inserts land in the overflow relation (full-scanned)."""
        validate_interval(lower, upper)
        self.overflow.insert((lower, upper, interval_id))
        self._overflow_count += 1

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Deletions are logical: a tombstone filtered at query time."""
        validate_interval(lower, upper)
        record = (lower, upper, interval_id)
        for rowid, row in self.overflow.scan():
            if row == record:
                self.overflow.delete(rowid)
                self._overflow_count -= 1
                return
        if record in self._overflow_deletes:
            raise KeyError(record)
        # Verify presence in the static part via the starts index.
        key = record
        for _entry in self.starts.index_scan("startIndex", key, key):
            self._overflow_deletes.add(record)
            self._base_count -= 1
            return
        raise KeyError(record)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stab(self, point: int) -> list[int]:
        """Stabbing query: snapshot of the point's window + starts within."""
        return self.intersection(point, point)

    def intersection(self, lower: int, upper: int) -> list[int]:
        """``stab(lower)`` plus all intervals starting in ``(lower, upper]``."""
        validate_interval(lower, upper)
        results: list[int] = []
        tombstones = self._overflow_deletes
        if self._built and self._window_starts:
            window_no, window_start = self._locate_window(lower)
            if window_no is not None:
                # Alive-at-boundary copies still alive at `lower`; the
                # snapshot scan is pure, so tombstone-free leaf slices are
                # consumed without per-entry tests.
                for batch in self.snapshots.index_scan_batches(
                    "snapIndex", (window_no, lower), (window_no,)
                ):
                    if tombstones:
                        results.extend(
                            interval_id
                            for _w, e, s, interval_id, _rowid in batch
                            if (s, e, interval_id) not in tombstones
                        )
                    else:
                        results.extend(entry[3] for entry in batch)
                scan_from = window_start
            else:
                scan_from = self._window_starts[0]
            # Starts between the boundary and the query's upper bound.
            for batch in self.starts.index_scan_batches(
                "startIndex", (scan_from,), (upper,)
            ):
                if tombstones:
                    results.extend(
                        interval_id
                        for s, e, interval_id, _rowid in batch
                        if e >= lower and (s, e, interval_id) not in tombstones
                    )
                else:
                    results.extend(entry[2] for entry in batch if entry[1] >= lower)
        # Overflow: full scan, the price of updating a static structure.
        for _rowid, (s, e, interval_id) in self.overflow.scan():
            if s <= upper and e >= lower:
                results.append(interval_id)
        return results

    def intersection_count(self, lower: int, upper: int) -> int:
        """Result count of :meth:`intersection` without building id lists.

        Identical scans and therefore identical I/O: tombstone-free
        snapshot slices contribute whole leaf-slice lengths, the starts
        branch keeps its per-entry ``upper >= lower`` residual test.  This
        is the Window-List's cheap join adapter -- the base
        :meth:`~repro.core.access.AccessMethod.join_count` dispatches here
        per probe.
        """
        validate_interval(lower, upper)
        total = 0
        tombstones = self._overflow_deletes
        if self._built and self._window_starts:
            window_no, window_start = self._locate_window(lower)
            if window_no is not None:
                for batch in self.snapshots.index_scan_batches(
                    "snapIndex", (window_no, lower), (window_no,)
                ):
                    if tombstones:
                        total += sum(
                            1
                            for _w, e, s, interval_id, _rowid in batch
                            if (s, e, interval_id) not in tombstones
                        )
                    else:
                        total += len(batch)
                scan_from = window_start
            else:
                scan_from = self._window_starts[0]
            for batch in self.starts.index_scan_batches(
                "startIndex", (scan_from,), (upper,)
            ):
                if tombstones:
                    total += sum(
                        1
                        for s, e, interval_id, _rowid in batch
                        if e >= lower and (s, e, interval_id) not in tombstones
                    )
                else:
                    total += sum(1 for entry in batch if entry[1] >= lower)
        for _rowid, (s, e, _interval_id) in self.overflow.scan():
            if s <= upper and e >= lower:
                total += 1
        return total

    def _locate_window(self, point: int) -> tuple[Optional[int], int]:
        """Directory lookup: the window whose start precedes ``point``.

        A single descending B+-tree probe (O(log_b n)), matching the
        directory search of the original structure.
        """
        entry = self.windir.index_last_le("dirIndex", (point,))
        if entry is None:
            return None, 0
        return entry[1], entry[0]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def interval_count(self) -> int:
        """Live intervals (static part minus tombstones, plus overflow)."""
        return self._base_count + self._overflow_count

    @property
    def index_entry_count(self) -> int:
        """Starts + snapshot copies + directory entries."""
        return (
            len(self.starts.index("startIndex").tree)
            + len(self.snapshots.index("snapIndex").tree)
            + len(self.windir.index("dirIndex").tree)
        )

    @property
    def window_count(self) -> int:
        """Number of windows created by the sweep."""
        return len(self._window_starts)
