"""Main-memory interval structures (paper Section 2.1).

These are the classical computational-geometry structures the paper builds
on and virtualises:

* :class:`BruteForceIntervals` -- the trivial O(n) scanner; ground truth for
  every test in the suite.
* :class:`IntervalTree` -- Edelsbrunner's interval tree [Ede 80] in its
  original three-fold form (materialised balanced backbone over the bounding
  points, sorted L(w)/U(w) secondary lists).  The RI-tree is exactly this
  structure with the primary structure virtualised and the secondary lists
  mapped to relational indexes, so this class doubles as an independent
  correctness oracle whose code shares nothing with :mod:`repro.core`.
* :class:`SegmentTree` -- Bentley's segment tree with canonical interval
  decomposition (the structure whose redundancy the interval tree avoids,
  Section 3.1).
* :class:`PrioritySearchTree` -- McCreight's priority search tree, the
  third classical structure Section 2.1 names: a balanced tree on the
  lower bounds carrying a max-heap on the upper bounds, answering the
  two-sided query ``lower <= u AND upper >= l`` in O(log n + r).

These are static or semi-static main-memory structures; their "limitation
... do not meet the characteristics of secondary storage" (Section 2.1) is
precisely what motivates the paper.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterable, Optional, Sequence

from ..core.interval import validate_interval

IntervalRecord = tuple[int, int, int]


class BruteForceIntervals:
    """Ground-truth oracle: a dictionary of intervals, scanned linearly."""

    def __init__(self, intervals: Iterable[IntervalRecord] = ()) -> None:
        self._data: dict[int, tuple[int, int]] = {}
        for lower, upper, interval_id in intervals:
            self.insert(lower, upper, interval_id)

    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """Add an interval (ids must be unique)."""
        validate_interval(lower, upper)
        if interval_id in self._data:
            raise KeyError(f"duplicate id {interval_id}")
        self._data[interval_id] = (lower, upper)

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Remove an interval previously inserted."""
        stored = self._data.get(interval_id)
        if stored != (lower, upper):
            raise KeyError((lower, upper, interval_id))
        del self._data[interval_id]

    def intersection(self, lower: int, upper: int) -> list[int]:
        """All ids whose interval intersects ``[lower, upper]`` (O(n))."""
        validate_interval(lower, upper)
        return [
            interval_id
            for interval_id, (s, e) in self._data.items()
            if s <= upper and e >= lower
        ]

    def stab(self, point: int) -> list[int]:
        """Ids containing ``point``."""
        return self.intersection(point, point)

    def __len__(self) -> int:
        return len(self._data)

    def records(self) -> list[IntervalRecord]:
        """All stored (lower, upper, id) records."""
        return [(s, e, i) for i, (s, e) in self._data.items()]


class _ITNode:
    """One node of the materialised interval-tree backbone."""

    __slots__ = ("value", "left", "right", "lowers", "uppers")

    def __init__(self, value: int) -> None:
        self.value = value
        self.left: Optional[_ITNode] = None
        self.right: Optional[_ITNode] = None
        # L(w): (lower, id) ascending; U(w): (upper, id) ascending.
        self.lowers: list[tuple[int, int]] = []
        self.uppers: list[tuple[int, int]] = []


class IntervalTree:
    """Edelsbrunner's interval tree over a fixed set of bounding points.

    The primary structure is a balanced binary tree over the sorted
    bounding-point universe supplied at construction; intervals may be added
    and removed dynamically as long as their bounds come from that universe
    (the classical "static universe, dynamic set" setting the paper departs
    from with its virtual backbone).
    """

    def __init__(self, points: Sequence[int]) -> None:
        universe = sorted(set(points))
        if not universe:
            raise ValueError("interval tree needs a non-empty point universe")
        self._universe = universe
        self._root = self._build(0, len(universe) - 1)
        self._count = 0

    def _build(self, lo: int, hi: int) -> Optional[_ITNode]:
        if lo > hi:
            return None
        mid = (lo + hi) // 2
        node = _ITNode(self._universe[mid])
        node.left = self._build(lo, mid - 1)
        node.right = self._build(mid + 1, hi)
        return node

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """Register an interval at its fork node."""
        validate_interval(lower, upper)
        node = self._fork(lower, upper)
        insort(node.lowers, (lower, interval_id))
        insort(node.uppers, (upper, interval_id))
        self._count += 1

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Remove an interval registered earlier."""
        node = self._fork(lower, upper)
        try:
            node.lowers.remove((lower, interval_id))
            node.uppers.remove((upper, interval_id))
        except ValueError:
            raise KeyError((lower, upper, interval_id)) from None
        self._count -= 1

    def _fork(self, lower: int, upper: int) -> _ITNode:
        node = self._root
        while node is not None:
            if upper < node.value:
                node = node.left
            elif node.value < lower:
                node = node.right
            else:
                return node
        raise ValueError(
            f"interval ({lower}, {upper}) does not embrace any universe point"
        )

    # ------------------------------------------------------------------
    # queries (the three descents of paper Section 4.1)
    # ------------------------------------------------------------------
    def intersection(self, lower: int, upper: int) -> list[int]:
        """Ids of all registered intervals intersecting ``[lower, upper]``."""
        validate_interval(lower, upper)
        results: list[int] = []
        # Descent 1: root to the fork node of the query.
        node = self._root
        while node is not None:
            if upper < node.value:
                self._scan_lowers(node, upper, results)
                node = node.left
            elif node.value < lower:
                self._scan_uppers(node, lower, results)
                node = node.right
            else:
                break
        if node is None:
            return results
        # The fork itself: every interval here contains a common point.
        results.extend(interval_id for _, interval_id in node.lowers)
        # Descent 2: fork's left child toward lower.
        current = node.left
        while current is not None:
            if current.value < lower:
                self._scan_uppers(current, lower, results)
                current = current.right
            else:
                results.extend(i for _, i in current.lowers)
                self._report_subtree(current.right, results)
                current = current.left
        # Descent 3: fork's right child toward upper.
        current = node.right
        while current is not None:
            if upper < current.value:
                self._scan_lowers(current, upper, results)
                current = current.left
            else:
                results.extend(i for _, i in current.lowers)
                self._report_subtree(current.left, results)
                current = current.right
        return results

    def stab(self, point: int) -> list[int]:
        """Stabbing query (degenerate intersection)."""
        return self.intersection(point, point)

    @staticmethod
    def _scan_lowers(node: _ITNode, upper: int, results: list[int]) -> None:
        """Report intervals at ``node`` with lower <= query upper."""
        idx = bisect_right(node.lowers, (upper, float("inf")))
        results.extend(interval_id for _, interval_id in node.lowers[:idx])

    @staticmethod
    def _scan_uppers(node: _ITNode, lower: int, results: list[int]) -> None:
        """Report intervals at ``node`` with upper >= query lower."""
        idx = bisect_left(node.uppers, (lower, float("-inf")))
        results.extend(interval_id for _, interval_id in node.uppers[idx:])

    def _report_subtree(self, node: Optional[_ITNode], results: list[int]) -> None:
        if node is None:
            return
        results.extend(interval_id for _, interval_id in node.lowers)
        self._report_subtree(node.left, results)
        self._report_subtree(node.right, results)

    def __len__(self) -> int:
        return self._count


class SegmentTree:
    """Bentley's segment tree over a fixed endpoint universe.

    Intervals are *decomposed* into O(log n) canonical node fragments -- the
    redundancy that Edelsbrunner's structure (and hence the RI-tree) avoids.
    ``redundancy`` reports the realised duplication factor.
    """

    def __init__(self, points: Sequence[int]) -> None:
        universe = sorted(set(points))
        if not universe:
            raise ValueError("segment tree needs a non-empty point universe")
        self._points = universe
        size = 1
        while size < len(universe):
            size *= 2
        self._size = size
        self._nodes: list[list[IntervalRecord]] = [[] for _ in range(2 * size)]
        self._count = 0
        self._fragments = 0
        # Sorted lower bounds support intersection via stab + range scan.
        self._by_lower: list[tuple[int, int, int]] = []

    def _leaf_index(self, point: int) -> int:
        idx = bisect_left(self._points, point)
        if idx >= len(self._points) or self._points[idx] != point:
            raise ValueError(f"point {point} not in the endpoint universe")
        return idx

    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """Insert via canonical decomposition over universe slots."""
        validate_interval(lower, upper)
        lo = self._leaf_index(lower)
        hi = self._leaf_index(upper)
        record = (lower, upper, interval_id)
        self._place(1, 0, self._size - 1, lo, hi, record)
        insort(self._by_lower, (lower, upper, interval_id))
        self._count += 1

    def _place(
        self,
        node: int,
        node_lo: int,
        node_hi: int,
        lo: int,
        hi: int,
        record: IntervalRecord,
    ) -> None:
        if hi < node_lo or node_hi < lo:
            return
        if lo <= node_lo and node_hi <= hi:
            self._nodes[node].append(record)
            self._fragments += 1
            return
        mid = (node_lo + node_hi) // 2
        self._place(2 * node, node_lo, mid, lo, hi, record)
        self._place(2 * node + 1, mid + 1, node_hi, lo, hi, record)

    def stab(self, point: int) -> list[int]:
        """Ids of intervals containing ``point`` (root-to-leaf walk)."""
        idx = bisect_right(self._points, point) - 1
        if idx < 0:
            return []
        # The slot of `point` is the one whose representative leaf precedes
        # or equals it; exact containment is re-checked per record.
        results: list[int] = []
        node, node_lo, node_hi = 1, 0, self._size - 1
        while True:
            results.extend(
                interval_id
                for lower, upper, interval_id in self._nodes[node]
                if lower <= point <= upper
            )
            if node_lo == node_hi:
                break
            mid = (node_lo + node_hi) // 2
            if idx <= mid:
                node, node_hi = 2 * node, mid
            else:
                node, node_lo = 2 * node + 1, mid + 1
        return results

    def intersection(self, lower: int, upper: int) -> list[int]:
        """stab(lower) plus every interval starting inside ``(lower, upper]``."""
        validate_interval(lower, upper)
        results = self.stab(lower)
        start = bisect_right(self._by_lower, (lower, float("inf"), float("inf")))
        end = bisect_right(self._by_lower, (upper, float("inf"), float("inf")))
        results.extend(interval_id for _, __, interval_id in self._by_lower[start:end])
        return results

    @property
    def redundancy(self) -> float:
        """Canonical fragments per stored interval (>= 1)."""
        if self._count == 0:
            return 0.0
        return self._fragments / self._count

    def __len__(self) -> int:
        return self._count


class _PSTNode:
    """One node: the heap record plus the lower-bound split key."""

    __slots__ = ("record", "split", "left", "right")

    def __init__(self, record: IntervalRecord, split: int) -> None:
        self.record = record
        self.split = split
        self.left: Optional["_PSTNode"] = None
        self.right: Optional["_PSTNode"] = None


class PrioritySearchTree:
    """McCreight's priority search tree over a static record set.

    The tree is balanced on the *lower* bounds and heap-ordered (max) on
    the *upper* bounds.  An intersection query ``[l, u]`` reports exactly
    the records with ``lower <= u`` and ``upper >= l``: the search walks
    only subtrees whose heap maximum still reaches ``l`` and whose
    lower-bound range still starts at or below ``u``, giving O(log n + r).
    """

    def __init__(self, records: Sequence[IntervalRecord]) -> None:
        self._records = list(records)
        by_lower = sorted(self._records)
        self._root = self._build(by_lower)

    def _build(self, records: list[IntervalRecord]) -> Optional[_PSTNode]:
        if not records:
            return None
        # The heap root is the record with the maximal upper bound; the
        # remaining records split at the median lower bound.
        top_index = max(range(len(records)), key=lambda i: records[i][1])
        top = records[top_index]
        rest = records[:top_index] + records[top_index + 1 :]
        if not rest:
            return _PSTNode(top, top[0])
        mid = len(rest) // 2
        node = _PSTNode(top, rest[mid][0])
        node.left = self._build(rest[:mid])
        node.right = self._build(rest[mid:])
        return node

    def intersection(self, lower: int, upper: int) -> list[int]:
        """Ids of stored intervals intersecting ``[lower, upper]``."""
        validate_interval(lower, upper)
        results: list[int] = []
        self._query(self._root, lower, upper, results)
        return results

    def _query(
        self, node: Optional[_PSTNode], lower: int, upper: int, results: list[int]
    ) -> None:
        if node is None:
            return
        s, e, interval_id = node.record
        if e < lower:
            # Heap order: nothing below reaches the query either.
            return
        if s <= upper:
            results.append(interval_id)
        self._query(node.left, lower, upper, results)
        # Right subtree holds records with lower >= split only.
        if node.split <= upper:
            self._query(node.right, lower, upper, results)

    def stab(self, point: int) -> list[int]:
        """Ids of stored intervals containing ``point``."""
        return self.intersection(point, point)

    def __len__(self) -> int:
        return len(self._records)
