"""MAP21 of Nascimento and Dunham [ND 99].

Paper Section 2.3: "The MAP21 approach ... behaves very similar to the IST
while the composite index (lower, upper) is implemented by a single-column
index.  A static partitioning by the interval lengths is introduced, but
intersection query processing still requires O(n/b) I/Os if the database
contains many long intervals."

Model
-----
An interval maps to the single value ``z = lower * 2**shift_bits + upper``
(MAP21's decimal-shift encoding in binary).  Intervals are statically
partitioned by length class ``p = ceil(log2(length + 1))``; partition ``p``
holds intervals no longer than ``2**p - 1``.  An intersection query scans,
in every non-empty partition, the z-range corresponding to
``lower in [query_lower - (2**p - 1), query_upper]`` and refines exactly --
long-interval partitions therefore degrade toward full scans, which is the
weakness the paper cites.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.access import AccessMethod, IntervalRecord
from ..core.interval import validate_interval
from ..engine.database import Database

#: Bits reserved for the upper bound inside the z-encoding; covers the
#: paper's [0, 2^20-1] evaluation domain with headroom.
DEFAULT_SHIFT_BITS = 24


class Map21(AccessMethod):
    """MAP21: single-column z-encoding with static length partitions."""

    method_name = "MAP21"

    def __init__(
        self,
        db: Optional[Database] = None,
        shift_bits: int = DEFAULT_SHIFT_BITS,
        name: str = "Map21Intervals",
    ) -> None:
        super().__init__(db)
        self.shift_bits = shift_bits
        self._limit = 2**shift_bits
        self.table = self.db.create_table(name, ["pclass", "z", "id"])
        self.table.create_index("zIndex", ["pclass", "z", "id"])
        # Non-empty partition classes and their populations (O(log domain)
        # bookkeeping; MAP21 fixes the partition set statically).
        self._class_counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self, lower: int, upper: int) -> int:
        """``z = lower * 2**shift_bits + upper`` -- order-preserving on
        (lower, upper) within the domain."""
        if not 0 <= lower < self._limit or not 0 <= upper < self._limit:
            raise ValueError(
                f"bounds ({lower}, {upper}) outside MAP21 domain "
                f"[0, 2^{self.shift_bits})"
            )
        return lower * self._limit + upper

    def decode(self, z: int) -> tuple[int, int]:
        """Inverse of :meth:`encode`."""
        return divmod(z, self._limit)

    @staticmethod
    def length_class(lower: int, upper: int) -> int:
        """Partition class: smallest p with ``upper - lower < 2**p``."""
        return (upper - lower).bit_length()

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """One z-entry in the interval's length partition."""
        validate_interval(lower, upper)
        pclass = self.length_class(lower, upper)
        self.table.insert((pclass, self.encode(lower, upper), interval_id))
        self._class_counts[pclass] = self._class_counts.get(pclass, 0) + 1

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Remove the z-entry."""
        validate_interval(lower, upper)
        pclass = self.length_class(lower, upper)
        key = (pclass, self.encode(lower, upper), interval_id)
        for entry in self.table.index_scan("zIndex", key, key):
            self.table.delete(entry[3])
            remaining = self._class_counts[pclass] - 1
            if remaining:
                self._class_counts[pclass] = remaining
            else:
                del self._class_counts[pclass]
            return
        raise KeyError((lower, upper, interval_id))

    def bulk_load(self, intervals: Sequence[IntervalRecord]) -> None:
        """Encode everything, then bulk load the z-table."""
        rows = []
        for lower, upper, interval_id in intervals:
            validate_interval(lower, upper)
            pclass = self.length_class(lower, upper)
            rows.append((pclass, self.encode(lower, upper), interval_id))
            self._class_counts[pclass] = self._class_counts.get(pclass, 0) + 1
        self.table.bulk_load(rows)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def intersection(self, lower: int, upper: int) -> list[int]:
        """Per-partition z-range scans with exact refinement.

        In partition ``p`` (max length ``2**p - 1``) an intersecting
        interval must start in ``[lower - (2**p - 1), upper]``; entries in
        that z-range are refined on their decoded upper bound.
        """
        validate_interval(lower, upper)
        results: list[int] = []
        limit = self._limit
        for pclass in sorted(self._class_counts):
            max_len = 2**pclass - 1
            scan_from = (lower - max_len) * limit
            scan_to = upper * limit + (limit - 1)
            # z-range scan per partition, consumed as leaf slices; the
            # refinement decodes with divmod inline (no per-entry call).
            for batch in self.table.index_scan_batches(
                "zIndex", (pclass, scan_from), (pclass, scan_to)
            ):
                results.extend(
                    entry[2]
                    for entry in batch
                    if entry[1] // limit <= upper and entry[1] % limit >= lower
                )
        return results

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def interval_count(self) -> int:
        """Number of stored intervals."""
        return self.table.row_count

    @property
    def index_entry_count(self) -> int:
        """Exactly ``n``: MAP21 produces no redundancy."""
        return len(self.table.index("zIndex").tree)

    @property
    def partition_classes(self) -> list[int]:
        """Currently non-empty length classes."""
        return sorted(self._class_counts)
