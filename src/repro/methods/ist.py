"""Interval-Spatial Transformation (IST) of Goh et al. [GLOT 96].

Paper Section 2.3: the IST encodes intervals by space-filling orderings of
their boundary points.  "Aside from quantization aspects, the D-ordering is
equivalent to a composite index on the interval bounds (upper, lower), and
the V-ordering corresponds to an index on (lower, upper). ... The H-ordering
simulates an index on (upper - lower, lower)."

The experimental comparison (Section 6.1) uses the D-order: "For integer
interval bounds, the D-order index is equivalent to a composite index on the
attributes (upper, lower) and therefore has identical performance
characteristics", with the Figure 11 single-statement range query.

The decisive weakness the paper demonstrates (Figure 17): an intersection
query must scan the full index tail on the *primary* attribute -- for the
D-order, every entry with ``upper >= lower_q`` -- so I/O degenerates to
O(n/b) when the query sits far from the favourable end of the data space.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..core.access import AccessMethod, IntervalRecord
from ..core.interval import validate_interval
from ..engine.database import Database

#: The three orderings of [GLOT 96] and their composite-index equivalents.
ORDERINGS = ("D", "V", "H")


class ISTree(AccessMethod):
    """IST as a single composite B+-tree index (one per ordering).

    Parameters
    ----------
    ordering:
        ``"D"`` -> index (upper, lower); ``"V"`` -> index (lower, upper);
        ``"H"`` -> index (upper - lower, lower).  The evaluation uses ``"D"``.
    """

    def __init__(
        self,
        db: Optional[Database] = None,
        ordering: str = "D",
        name: str = "ISTIntervals",
    ) -> None:
        super().__init__(db)
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; expected one of {ORDERINGS}"
            )
        self.ordering = ordering
        self.method_name = f"IST({ordering}-order)"
        if ordering == "H":
            # H-order keys on the derived length column; store it explicitly.
            columns = ["length", "lower", "upper", "id"]
            key = ["length", "lower", "id"]
        else:
            columns = ["lower", "upper", "id"]
            key = (
                ["upper", "lower", "id"]
                if ordering == "D"
                else ["lower", "upper", "id"]
            )
        self.table = self.db.create_table(name, columns)
        self.table.create_index("istIndex", key)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """One index entry per interval -- the IST produces no redundancy."""
        validate_interval(lower, upper)
        self.table.insert(self._row(lower, upper, interval_id))

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Locate the entry through the composite index and remove the row."""
        validate_interval(lower, upper)
        key = self._index_key(lower, upper, interval_id)
        for entry in self.table.index_scan("istIndex", key, key):
            self.table.delete(entry[len(key)])
            return
        raise KeyError((lower, upper, interval_id))

    def bulk_load(self, intervals: Sequence[IntervalRecord]) -> None:
        """Bulk load in ordering-clustered sequence (as in the paper)."""
        rows = [
            self._row(lower, upper, interval_id)
            for lower, upper, interval_id in intervals
        ]
        self.table.bulk_load(rows)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def intersection(self, lower: int, upper: int) -> list[int]:
        """The Figure 11 query: ``upper >= :lower AND lower <= :upper``.

        * D-order: index range scan on ``upper >= :lower``; the residual
          ``lower <= :upper`` filters inside the scan.  Cost grows with the
          number of intervals ending at or after the query -- the
          degeneration of Figure 17.
        * V-order: symmetric scan on ``lower <= :upper``.
        * H-order: no bound is a prefix of the key; the scan visits every
          length class (worst-case O(n/b), as the paper notes for
          length-agnostic predicates).
        """
        validate_interval(lower, upper)
        results: list[int] = []
        for batch in self._intersection_batches(lower, upper):
            results.extend(self._refine(batch, lower, upper))
        return results

    def intersection_count(self, lower: int, upper: int) -> int:
        """Count via the same scan; only the residual filter is per-entry."""
        validate_interval(lower, upper)
        return sum(
            len(self._refine(batch, lower, upper))
            for batch in self._intersection_batches(lower, upper)
        )

    def _intersection_batches(
        self, lower: int, upper: int
    ) -> Iterator[list[tuple[int, ...]]]:
        """The single index range scan of Figure 11, as leaf slices."""
        if self.ordering == "D":
            return self.table.index_scan_batches("istIndex", (lower,), ())
        if self.ordering == "V":
            return self.table.index_scan_batches("istIndex", (), (upper,))
        return self.table.index_scan_batches("istIndex", (), ())

    def _refine(
        self, batch: list[tuple[int, ...]], lower: int, upper: int
    ) -> list[int]:
        """Apply the ordering's residual predicate to one leaf slice."""
        if self.ordering == "D":
            # entries: (upper, lower, id, rowid)
            return [entry[2] for entry in batch if entry[1] <= upper]
        if self.ordering == "V":
            # entries: (lower, upper, id, rowid)
            return [entry[2] for entry in batch if entry[1] >= lower]
        # entries: (length, lower, id, rowid); refine on both bounds.
        return [
            entry[2]
            for entry in batch
            if entry[1] <= upper and entry[1] + entry[0] >= lower
        ]

    def length_query(self, min_length: int, max_length: int) -> list[int]:
        """H-order's signature capability: report by interval length."""
        if self.ordering != "H":
            raise ValueError("length_query requires the H-ordering")
        return [
            entry[2]
            for entry in self.table.index_scan(
                "istIndex", (min_length,), (max_length,)
            )
        ]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def interval_count(self) -> int:
        """Number of stored intervals."""
        return self.table.row_count

    @property
    def index_entry_count(self) -> int:
        """Exactly ``n`` -- "the IST technique produces no redundancy"."""
        return len(self.table.index("istIndex").tree)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _row(self, lower: int, upper: int, interval_id: int) -> tuple[int, ...]:
        if self.ordering == "H":
            return (upper - lower, lower, upper, interval_id)
        return (lower, upper, interval_id)

    def _index_key(self, lower: int, upper: int, interval_id: int) -> tuple[int, ...]:
        if self.ordering == "D":
            return (upper, lower, interval_id)
        if self.ordering == "V":
            return (lower, upper, interval_id)
        return (upper - lower, lower, interval_id)
