"""The Tile Index (T-index) of Oracle8i Spatial [RS 99], in one dimension.

Paper Sections 2.3 and 6.1: the Tile Index is "a relational implementation
of the multi-dimensional Linear Quadtree.  Spatial objects are decomposed
and indexed at a user-defined fixed quadtree level. ... Intersection queries
are performed by an equijoin on the indexed fixed-sized tiles, followed by a
sequential scan on the corresponding variable-sized tiles."  The authors
"reimplemented the hybrid indexing package for one-dimensional data spaces";
this module does the same.

Model
-----
The domain ``[0, 2**domain_bits - 1]`` is partitioned into fixed tiles of
size ``2**(domain_bits - fixed_level)``.  Storage is the classical two-layer
spatial-index layout:

* a *geometry table* holding one ``(lower, upper, id)`` row per interval,
  with a B+-tree on ``id`` (the GID index of the Oracle layout);
* a *tile entry table* with one ``(tile, id)`` row per fixed tile the
  interval overlaps, organised by a B+-tree on that key -- the redundancy
  of the paper's Figure 12.

An intersection query runs the two spatial filter stages:

* **primary filter**: one index range scan over the tiles covered by the
  query window.  Entries whose tile lies *fully inside* the window are
  results outright (the tile is covered, hence the interval intersects);
* **secondary filter**: entries in the window's two *boundary* tiles are
  only candidates; each distinct candidate joins back to the geometry
  table through the GID index (one B+-tree probe plus one base-table
  access -- the "sequential scan on the corresponding variable-sized
  tiles") and is tested exactly.

The secondary-filter joins are per-candidate index probes and scattered
base-table reads, which is what makes the T-index pay per *candidate* while
the RI-tree pays per *result block* -- the mechanism behind the paper's
Figures 13, 14 and 16.

Trade-off (Section 2.3): a high fixed level (small tiles) explodes
redundancy for long intervals; a low level (big tiles) floods the boundary
tiles with false candidates.  ``tune_fixed_level`` reproduces the paper's
protocol -- "we took a representative sample of 1,000 intervals from each
individual data distribution and determined the optimal setting".  The fixed
level is frozen at index creation; re-levelling requires a full rebuild
("adapting it ... requires bulk-loading the whole dataset anew"), the
drawback the RI-tree avoids.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.access import AccessMethod, IntervalRecord
from ..core.interval import validate_interval
from ..engine.database import Database

#: Domain size used throughout the paper's evaluation: [0, 2^20 - 1].
DEFAULT_DOMAIN_BITS = 20


class TileIndex(AccessMethod):
    """1-D hybrid tile index with a frozen fixed level.

    Parameters
    ----------
    fixed_level:
        Subdivision depth: the domain splits into ``2**fixed_level`` tiles.
        Must be in ``[0, domain_bits]``.
    domain_bits:
        The data space is ``[0, 2**domain_bits - 1]``; intervals outside it
        are rejected (the Tile Index, unlike the RI-tree, cannot expand its
        data space dynamically -- Section 2.3).
    """

    method_name = "T-index"

    def __init__(
        self,
        db: Optional[Database] = None,
        fixed_level: int = 8,
        domain_bits: int = DEFAULT_DOMAIN_BITS,
        name: str = "Tile",
    ) -> None:
        super().__init__(db)
        if not 0 <= fixed_level <= domain_bits:
            raise ValueError(f"fixed_level {fixed_level} outside [0, {domain_bits}]")
        self.fixed_level = fixed_level
        self.domain_bits = domain_bits
        self.tile_size = 2 ** (domain_bits - fixed_level)
        self.geometry = self.db.create_table(
            f"{name}Geometry", ["lower", "upper", "id"]
        )
        self.geometry.create_index("gidIndex", ["id"])
        self.entries = self.db.create_table(f"{name}Entries", ["tile", "id"])
        self.entries.create_index("tileIndex", ["tile", "id"])

    # ------------------------------------------------------------------
    # decomposition
    # ------------------------------------------------------------------
    def tiles_for(self, lower: int, upper: int) -> range:
        """Fixed tiles overlapped by ``[lower, upper]``."""
        return range(lower // self.tile_size, upper // self.tile_size + 1)

    def _check_domain(self, lower: int, upper: int) -> None:
        if lower < 0 or upper >= 2**self.domain_bits:
            raise ValueError(
                f"interval ({lower}, {upper}) outside the tile index domain "
                f"[0, 2^{self.domain_bits} - 1]"
            )

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """One geometry row plus one entry per covered fixed tile."""
        validate_interval(lower, upper)
        self._check_domain(lower, upper)
        self.geometry.insert((lower, upper, interval_id))
        for tile in self.tiles_for(lower, upper):
            self.entries.insert((tile, interval_id))

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Remove the geometry row and every tile entry."""
        validate_interval(lower, upper)
        georow = None
        for entry in self.geometry.index_scan(
            "gidIndex", (interval_id,), (interval_id,)
        ):
            candidate = self.geometry.fetch(entry[1])
            if candidate == (lower, upper, interval_id):
                georow = entry[1]
                break
        if georow is None:
            raise KeyError((lower, upper, interval_id))
        entry_rowids = []
        for tile in self.tiles_for(lower, upper):
            for entry in self.entries.index_scan(
                "tileIndex", (tile, interval_id), (tile, interval_id)
            ):
                entry_rowids.append(entry[2])
        for rowid in entry_rowids:
            self.entries.delete(rowid)
        self.geometry.delete(georow)

    def bulk_load(self, intervals: Sequence[IntervalRecord]) -> None:
        """Load geometries, then bulk-build the clustered tile entries."""
        for lower, upper, _ in intervals:
            validate_interval(lower, upper)
            self._check_domain(lower, upper)
        self.geometry.bulk_load(intervals)
        rows = []
        for lower, upper, interval_id in intervals:
            for tile in self.tiles_for(lower, upper):
                rows.append((tile, interval_id))
        self.entries.bulk_load(rows)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def intersection(self, lower: int, upper: int) -> list[int]:
        """Primary filter (tile equijoin) + secondary filter (fetches).

        Unlike the RI-tree's duplicate-free plan, decomposed entries force
        de-duplication by id here -- part of the T-index's query overhead.
        """
        validate_interval(lower, upper)
        lower_clip = max(lower, 0)
        upper_clip = min(upper, 2**self.domain_bits - 1)
        if lower_clip > upper_clip:
            return []
        first = lower_clip // self.tile_size
        last = upper_clip // self.tile_size
        seen: set[int] = set()
        results: list[int] = []
        # The tile equijoin consumes the scan as leaf slices; only the two
        # boundary tiles fall through to the per-candidate secondary filter.
        for batch in self.entries.index_scan_batches("tileIndex", (first,), (last,)):
            for tile, interval_id, _rowid in batch:
                if interval_id in seen:
                    continue
                if first < tile < last or self._tile_covered(tile, lower, upper):
                    # Primary filter suffices: the window covers this tile.
                    seen.add(interval_id)
                    results.append(interval_id)
                    continue
                # Secondary filter: join to the geometry through the GID
                # index (one B+-tree probe + one base-table access) and
                # test exactly.
                seen.add(interval_id)
                for gid_entry in self.geometry.index_scan(
                    "gidIndex", (interval_id,), (interval_id,)
                ):
                    geo_lower, geo_upper, _ = self.geometry.fetch(gid_entry[1])
                    if geo_lower <= upper and geo_upper >= lower:
                        results.append(interval_id)
                    break
        return results

    def _tile_covered(self, tile: int, lower: int, upper: int) -> bool:
        tile_lower = tile * self.tile_size
        tile_upper = tile_lower + self.tile_size - 1
        return lower <= tile_lower and tile_upper <= upper

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def interval_count(self) -> int:
        """Number of distinct stored intervals."""
        return self.geometry.row_count

    @property
    def index_entry_count(self) -> int:
        """Total tile entries (Figure 12's redundancy-inflated count)."""
        return len(self.entries.index("tileIndex").tree)


def tune_fixed_level(
    sample: Sequence[IntervalRecord],
    queries: Sequence[tuple[int, int]],
    domain_bits: int = DEFAULT_DOMAIN_BITS,
    levels: Optional[Sequence[int]] = None,
    block_size: int = 2048,
    cache_blocks: int = 64,
) -> int:
    """The paper's tuning protocol (Section 6.1).

    Builds a throwaway tile index per candidate level over ``sample``
    (the paper uses 1,000 intervals), replays ``queries`` against it and
    returns the level with the lowest total buffer traffic.

    A 1,000-interval sample fits any reasonable cache, so physical reads
    at tuning time are cold-start noise; the discriminating signal -- the
    one that predicts query performance at production scale -- is the
    number of page requests the query plan makes (logical reads).  Ties
    break toward physical reads, then the lower (coarser, smaller) level.
    """
    if not sample:
        raise ValueError("tuning needs a non-empty sample")
    if levels is None:
        levels = range(0, domain_bits + 1)
    best_level = None
    best_cost = None
    for level in levels:
        db = Database(block_size=block_size, cache_blocks=cache_blocks)
        index = TileIndex(db, fixed_level=level, domain_bits=domain_bits)
        index.bulk_load(sample)
        db.clear_cache()
        with db.measure() as delta:
            for q_lower, q_upper in queries:
                index.intersection(q_lower, q_upper)
        cost = (delta.logical_reads, delta.physical_reads, level)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_level = level
    return best_level
