"""Domain-sharding router: one ``IntervalStore`` made of many.

The serving layer's path to "millions of users": the indexed domain is
split at *cut points* into contiguous slices, one backend store per
slice, and the router presents the whole ensemble as a single
:class:`~repro.core.access.IntervalStore`.  The split points come from
the :class:`~repro.core.costmodel.BoundSummary` equi-depth histograms
the cost model already builds (:func:`derive_cuts`), so shards carry
roughly equal record populations under the measured workload shape.

Replication and deduplication
-----------------------------
Shard ``t`` owns the slice ``(cuts[t-1], cuts[t]]`` (the first slice is
left-unbounded, the last right-unbounded), and a record's *home* shard
is the slice containing its lower bound.  A record crossing a cut is
**replicated** into every shard its extent touches -- queries then never
consult more shards than their window overlaps -- and the router keeps,
per shard, a multiset of the *left-crossing replicas* that entered it
(mirroring HINT's replica flags, one level up).

Merging follows the **first-occurrence convention**: a query ``[ql,
qu]`` is clipped to each touched shard's slice, the first touched shard
reports everything it matches, and every later shard's result drops its
left-crossing replicas -- each of which provably matches any clipped
window handed to that shard, because the clip starts exactly at the
slice start ``slo_t`` and a left replica has ``lower < slo_t <= upper``
(infinite replicas always match; ``now``-relative replicas match iff
the shared clock has reached ``slo_t``).  Counts subtract the same
per-shard replica totals without materialising ids, which is what keeps
``intersection_count``/``join_count`` replication-blind.

Temporal rows ride along: ``[l, oo)`` and ``[l, now]`` records replicate
from their home shard to every shard to its right (the clock may pass
any cut), every shard shares one router-advanced clock, and the
sentinel uppers of :mod:`repro.core.temporal` route through the
dedicated entry points exactly as on :class:`~repro.core.hint.
HintStore`.

Predicate queries evaluate on *full* record bounds (replicas are whole
copies, never truncated), so every replica-holding shard reports the
same verdict as the home shard; the router refines its replica
multisets with the same pure predicate to subtract the extras.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from typing import Optional, Sequence

from .access import IntervalRecord, IntervalStore
from .backbone import VirtualBackbone
from .costmodel import DEFAULT_BUCKETS, BoundSummary, RITreeCostModel
from .interval import validate_interval
from .predicates import (
    resolve_join_predicate,
    shim_positional_predicate,
)
from .temporal import UPPER_INF, UPPER_NOW, resolve_clock_argument
from .verify import VerificationReport


def derive_cuts(summary: BoundSummary, shard_count: int) -> list[int]:
    """Split points for ``shard_count`` shards from a bound histogram.

    Takes the equi-depth *lower*-bound boundaries of ``summary`` at
    ``shard_count - 1`` evenly spaced quantile positions, so each slice
    receives about the same number of interval starts -- the routing
    load balancer.  Duplicate boundaries (heavily skewed data) collapse,
    which may yield fewer cuts than requested; callers get the shard
    count they can actually use from ``len(cuts) + 1``.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    if shard_count == 1:
        return []
    if summary.count == 0:
        raise ValueError(
            "cannot derive cuts from an empty summary; pass explicit "
            "cuts= instead")
    bounds = summary.lower_bounds
    segments = len(bounds) - 1
    cuts = {
        int(bounds[min(max(round(j * segments / shard_count), 0), segments)])
        for j in range(1, shard_count)
    }
    # A cut at or past the global maximum lower bound would leave the
    # last slice without any home records; such degenerate cuts drop.
    return sorted(c for c in cuts if c < bounds[-1])


class ShardedStore(IntervalStore):
    """Domain-sharding router over homogeneous backend shards.

    Parameters
    ----------
    shards:
        One constructed backend store per slice, ``len(cuts) + 1`` of
        them.  Build through :meth:`create` (which goes through
        :func:`repro.core.stores.create_store`) unless you need custom
        per-shard construction.
    cuts:
        Strictly increasing split points; shard ``t`` owns ``(cuts[t-1],
        cuts[t]]``.
    now:
        Initial shared clock (must match the shards' clocks).

    Example
    -------
    >>> from repro.core.stores import create_store
    >>> store = create_store("sharded", backend="hint", cuts=[100])
    >>> store.insert(90, 110, interval_id=1)   # crosses the cut
    >>> store.insert(10, 20, interval_id=2)
    >>> sorted(store.intersection(0, 200))     # replica deduplicated
    [1, 2]
    >>> store.intersection_count(95, 105)
    1
    """

    method_name = "sharded"
    name = "sharded-store"

    def __init__(
        self,
        shards: Sequence[IntervalStore],
        cuts: Sequence[int],
        now: int = 0,
    ) -> None:
        cuts = list(cuts)
        if any(b <= a for a, b in zip(cuts, cuts[1:])):
            raise ValueError(f"cuts must be strictly increasing: {cuts}")
        if len(shards) != len(cuts) + 1:
            raise ValueError(
                f"{len(cuts)} cuts require {len(cuts) + 1} shards, got "
                f"{len(shards)}")
        self.shards = list(shards)
        self.cuts = cuts
        self.method_name = (
            f"sharded[{len(self.shards)}]({self.shards[0].method_name})")
        self._now = now
        self._count = 0
        # Per-shard left-crossing replica multisets: full triples for
        # predicate refinement and stored_records(), id Counters for
        # intersection-result stripping, plain totals for count paths.
        n = len(self.shards)
        self._rep_fin: list[Counter] = [Counter() for _ in range(n)]
        self._rep_inf: list[Counter] = [Counter() for _ in range(n)]
        self._rep_now: list[Counter] = [Counter() for _ in range(n)]
        self._rep_fin_ids: list[Counter] = [Counter() for _ in range(n)]
        self._rep_inf_ids: list[Counter] = [Counter() for _ in range(n)]
        self._rep_now_ids: list[Counter] = [Counter() for _ in range(n)]
        self._rep_fin_n = [0] * n
        self._rep_inf_n = [0] * n
        self._rep_now_n = [0] * n
        # Routing observability (served through the service /stats op).
        self._stat_queries = [0] * n
        self._stat_predicate_queries = [0] * n
        self._stat_inserts = [0] * n
        self._stat_join_probes = [0] * n
        self._stat_appends = [0] * n
        self._stat_append_replicas = [0] * n
        # Optimizer statistics seam (finite bounds only, like HINT's).
        self._backbone = VirtualBackbone()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        backend: str = "hint",
        shard_count: Optional[int] = None,
        cuts: Optional[Sequence[int]] = None,
        records: Optional[Sequence[IntervalRecord]] = None,
        now: int = 0,
        buckets: int = DEFAULT_BUCKETS,
        backend_opts: Optional[dict] = None,
    ) -> "ShardedStore":
        """Build a router with shards constructed by backend name.

        Split points come from ``cuts`` when given; otherwise they are
        derived from the :class:`BoundSummary` of ``records`` via
        :func:`derive_cuts` (``shard_count`` slices), and the records
        are then bulk-loaded.  ``backend_opts`` are forwarded to every
        shard's factory call -- leave connection-like options unset so
        each shard gets its own (the default sqlite factory opens one
        in-memory database per shard).
        """
        from .stores import create_store

        if cuts is None:
            count = 1 if shard_count is None else shard_count
            if count > 1 and not records:
                raise ValueError(
                    "deriving cuts needs records=; pass cuts= to shard "
                    "an empty store")
            cuts = (derive_cuts(BoundSummary.from_records(records, buckets),
                                count)
                    if count > 1 else [])
        opts = dict(backend_opts or {})
        if now:
            opts["now"] = now
        shards = [create_store(backend, **opts)
                  for _ in range(len(cuts) + 1)]
        store = cls(shards, cuts, now=now)
        if records:
            store.bulk_load(records)
        return store

    # ------------------------------------------------------------------
    # slice geometry
    # ------------------------------------------------------------------
    def _shard_of(self, value: int) -> int:
        """Index of the slice containing ``value``."""
        return bisect_left(self.cuts, value)

    def _slice_lo(self, t: int) -> Optional[int]:
        """First value of slice ``t`` (``None`` = unbounded left)."""
        return self.cuts[t - 1] + 1 if t > 0 else None

    def _slice_hi(self, t: int) -> Optional[int]:
        """Last value of slice ``t`` (``None`` = unbounded right)."""
        return self.cuts[t] if t < len(self.cuts) else None

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """Insert, replicating across every cut the extent touches.

        Sentinel uppers route to the temporal entry points, mirroring
        :class:`~repro.core.hint.HintStore`, so sentinel-bearing
        records load through the uniform ``bulk_load`` too.
        """
        if upper == UPPER_INF:
            self.insert_infinite(lower, interval_id)
            return
        if upper == UPPER_NOW:
            self.insert_until_now(lower, interval_id)
            return
        validate_interval(lower, upper)
        first = self._shard_of(lower)
        last = self._shard_of(upper)
        for t in range(first, last + 1):
            self.shards[t].insert(lower, upper, interval_id)
            self._stat_inserts[t] += 1
            if t > first:
                self._rep_fin[t][(lower, upper, interval_id)] += 1
                self._rep_fin_ids[t][interval_id] += 1
                self._rep_fin_n[t] += 1
        self._count += 1
        self._backbone.register(lower, upper)

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Remove one copy of the exact record from every touched shard."""
        if upper == UPPER_INF:
            self.delete_infinite(lower, interval_id)
            return
        if upper == UPPER_NOW:
            self.delete_until_now(lower, interval_id)
            return
        validate_interval(lower, upper)
        first = self._shard_of(lower)
        last = self._shard_of(upper)
        # The home shard goes first: if the record is absent, its
        # KeyError propagates before any replica shard was touched.
        for t in range(first, last + 1):
            self.shards[t].delete(lower, upper, interval_id)
            if t > first:
                self._drop_replica(self._rep_fin, self._rep_fin_ids, t,
                                   (lower, upper, interval_id), interval_id)
                self._rep_fin_n[t] -= 1
        self._count -= 1

    @staticmethod
    def _drop_replica(triples, ids, t, triple, interval_id) -> None:
        triples[t][triple] -= 1
        if not triples[t][triple]:
            del triples[t][triple]
        ids[t][interval_id] -= 1
        if not ids[t][interval_id]:
            del ids[t][interval_id]

    def bulk_load(self, intervals: Sequence[IntervalRecord]) -> None:
        """Batch per shard: one backend ``bulk_load`` per slice."""
        batches: list[list[IntervalRecord]] = [[] for _ in self.shards]
        sentinels: list[IntervalRecord] = []
        for lower, upper, interval_id in intervals:
            if upper in (UPPER_INF, UPPER_NOW):
                sentinels.append((lower, upper, interval_id))
                continue
            validate_interval(lower, upper)
            first = self._shard_of(lower)
            last = self._shard_of(upper)
            for t in range(first, last + 1):
                batches[t].append((lower, upper, interval_id))
                self._stat_inserts[t] += 1
                if t > first:
                    self._rep_fin[t][(lower, upper, interval_id)] += 1
                    self._rep_fin_ids[t][interval_id] += 1
                    self._rep_fin_n[t] += 1
            self._count += 1
            self._backbone.register(lower, upper)
        for shard, batch in zip(self.shards, batches):
            if batch:
                shard.bulk_load(batch)
        for lower, upper, interval_id in sentinels:
            self.insert(lower, upper, interval_id)

    def append_batch(self, intervals: Sequence[IntervalRecord]) -> None:
        """Streaming append: one backend ``append_batch`` per touched shard.

        Routing and replica bookkeeping match :meth:`insert` /
        :meth:`insert_infinite` / :meth:`insert_until_now` exactly; the
        difference is dispatch shape -- records fan into per-shard
        batches first, then each shard takes its whole slice of the
        batch in ONE ``append_batch`` call (one group commit per shard
        for WAL-backed backends).  Appends are tracked separately from
        inserts in the routing stats (``appends`` / ``append_replicas``),
        so the service's ingest traffic is distinguishable from the
        point-insert path.
        """
        batches: list[list[IntervalRecord]] = [[] for _ in self.shards]
        for lower, upper, interval_id in intervals:
            if upper == UPPER_INF:
                self._require_temporal("insert_infinite")
                validate_interval(lower, lower)
                home = self._shard_of(lower)
                for t in range(home, len(self.shards)):
                    batches[t].append((lower, UPPER_INF, interval_id))
                    self._stat_appends[t] += 1
                    if t > home:
                        self._rep_inf[t][(lower, interval_id)] += 1
                        self._rep_inf_ids[t][interval_id] += 1
                        self._rep_inf_n[t] += 1
                        self._stat_append_replicas[t] += 1
                self._count += 1
                self._backbone.register(lower, lower)
            elif upper == UPPER_NOW:
                self._require_temporal("insert_until_now")
                validate_interval(lower, lower)
                if lower > self._now:
                    raise ValueError(
                        f"now-relative interval starts after now={self._now}")
                home = self._shard_of(lower)
                for t in range(home, len(self.shards)):
                    batches[t].append((lower, UPPER_NOW, interval_id))
                    self._stat_appends[t] += 1
                    if t > home:
                        self._rep_now[t][(lower, interval_id)] += 1
                        self._rep_now_ids[t][interval_id] += 1
                        self._rep_now_n[t] += 1
                        self._stat_append_replicas[t] += 1
                self._count += 1
                self._backbone.register(lower, lower)
            else:
                validate_interval(lower, upper)
                first = self._shard_of(lower)
                last = self._shard_of(upper)
                for t in range(first, last + 1):
                    batches[t].append((lower, upper, interval_id))
                    self._stat_appends[t] += 1
                    if t > first:
                        self._rep_fin[t][(lower, upper, interval_id)] += 1
                        self._rep_fin_ids[t][interval_id] += 1
                        self._rep_fin_n[t] += 1
                        self._stat_append_replicas[t] += 1
                self._count += 1
                self._backbone.register(lower, upper)
        for shard, batch in zip(self.shards, batches):
            if batch:
                shard.append_batch(batch)

    # ------------------------------------------------------------------
    # temporal rows (shared clock, replicate-right placement)
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current clock value, shared by every shard."""
        return self._now

    def advance_to(self, now: Optional[int] = None, *,
                   timestamp: Optional[int] = None) -> None:
        """Move the shared clock forward on every shard."""
        now = resolve_clock_argument(now, timestamp)
        if now < self._now:
            raise ValueError(
                f"clock moves forward only: {now} < now={self._now}")
        self._require_temporal("advance_to")
        for shard in self.shards:
            shard.advance_to(now)
        self._now = now

    def _require_temporal(self, op: str) -> None:
        shard = self.shards[0]
        if not hasattr(shard, op):
            raise NotImplementedError(
                f"backend {shard.method_name!r} has no temporal support "
                f"({op}); shard a temporal backend instead")

    def insert_infinite(self, lower: int, interval_id: int) -> None:
        """Insert ``[lower, oo)``: home shard plus every shard right."""
        self._require_temporal("insert_infinite")
        home = self._shard_of(lower)
        for t in range(home, len(self.shards)):
            self.shards[t].insert_infinite(lower, interval_id)
            self._stat_inserts[t] += 1
            if t > home:
                self._rep_inf[t][(lower, interval_id)] += 1
                self._rep_inf_ids[t][interval_id] += 1
                self._rep_inf_n[t] += 1
        self._count += 1
        self._backbone.register(lower, lower)

    def insert_until_now(self, lower: int, interval_id: int) -> None:
        """Insert ``[lower, now]``; placed like an infinite row because
        the clock may later pass any cut."""
        self._require_temporal("insert_until_now")
        if lower > self._now:
            raise ValueError(
                f"now-relative interval starts after now={self._now}")
        home = self._shard_of(lower)
        for t in range(home, len(self.shards)):
            self.shards[t].insert_until_now(lower, interval_id)
            self._stat_inserts[t] += 1
            if t > home:
                self._rep_now[t][(lower, interval_id)] += 1
                self._rep_now_ids[t][interval_id] += 1
                self._rep_now_n[t] += 1
        self._count += 1
        self._backbone.register(lower, lower)

    def delete_infinite(self, lower: int, interval_id: int) -> None:
        """Delete an infinite row from its home shard and all replicas."""
        self._require_temporal("delete_infinite")
        home = self._shard_of(lower)
        for t in range(home, len(self.shards)):
            self.shards[t].delete_infinite(lower, interval_id)
            if t > home:
                self._drop_replica(self._rep_inf, self._rep_inf_ids, t,
                                   (lower, interval_id), interval_id)
                self._rep_inf_n[t] -= 1
        self._count -= 1

    def delete_until_now(self, lower: int, interval_id: int) -> None:
        """Delete a now-relative row from home shard and all replicas."""
        self._require_temporal("delete_until_now")
        home = self._shard_of(lower)
        for t in range(home, len(self.shards)):
            self.shards[t].delete_until_now(lower, interval_id)
            if t > home:
                self._drop_replica(self._rep_now, self._rep_now_ids, t,
                                   (lower, interval_id), interval_id)
                self._rep_now_n[t] -= 1
        self._count -= 1

    def close_now_interval(self, lower: int, interval_id: int,
                           upper: int) -> None:
        """Terminate ``[lower, now]`` at a fixed ``upper``."""
        validate_interval(lower, upper)
        self.delete_until_now(lower, interval_id)
        self.insert(lower, upper, interval_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def intersection(self, lower: int, upper: int) -> list[int]:
        validate_interval(lower, upper)
        first = self._shard_of(lower)
        last = self._shard_of(upper)
        self._stat_queries[first] += 1
        if first == last:
            return self.shards[first].intersection(lower, upper)
        hi = self._slice_hi(first)
        out = self.shards[first].intersection(lower, min(upper, hi))
        for t in range(first + 1, last + 1):
            self._stat_queries[t] += 1
            lo = self._slice_lo(t)
            hi = self._slice_hi(t)
            ids = self.shards[t].intersection(
                lo, upper if hi is None else min(upper, hi))
            out.extend(self._strip(ids, self._replica_ids(t)))
        return out

    def _replica_ids(self, t: int) -> Counter:
        """Ids (with multiplicity) every clipped query must drop in ``t``.

        Every left-crossing replica of shard ``t`` matches any window
        clipped to start at the slice start; ``now``-relative replicas
        only once the clock has reached it.
        """
        remove = self._rep_fin_ids[t] + self._rep_inf_ids[t]
        lo = self._slice_lo(t)
        if self._rep_now_n[t] and self._now >= lo:
            remove = remove + self._rep_now_ids[t]
        return remove

    def _replica_total(self, t: int) -> int:
        """Count analogue of :meth:`_replica_ids`."""
        total = self._rep_fin_n[t] + self._rep_inf_n[t]
        if self._rep_now_n[t] and self._now >= self._slice_lo(t):
            total += self._rep_now_n[t]
        return total

    @staticmethod
    def _strip(ids: list[int], remove: Counter) -> list[int]:
        """Drop ``remove[id]`` occurrences of each id (first-occurrence
        dedup: the kept copy was already reported by an earlier shard)."""
        if not remove:
            return ids
        need = dict(remove)
        out = []
        for interval_id in ids:
            pending = need.get(interval_id, 0)
            if pending:
                need[interval_id] = pending - 1
            else:
                out.append(interval_id)
        return out

    def intersection_count(self, lower: int, upper: int) -> int:
        validate_interval(lower, upper)
        first = self._shard_of(lower)
        last = self._shard_of(upper)
        self._stat_queries[first] += 1
        if first == last:
            return self.shards[first].intersection_count(lower, upper)
        hi = self._slice_hi(first)
        total = self.shards[first].intersection_count(lower, min(upper, hi))
        for t in range(first + 1, last + 1):
            self._stat_queries[t] += 1
            lo = self._slice_lo(t)
            hi = self._slice_hi(t)
            total += self.shards[t].intersection_count(
                lo, upper if hi is None else min(upper, hi))
            total -= self._replica_total(t)
        return total

    def _query_relation(self, pred, lower: int, upper: int) -> list[int]:
        """Fan a relation predicate out; refine replicas with the same
        pure predicate to subtract the extra copies.

        Relation predicates see *full* record bounds on every shard (no
        clipping -- replicas are whole copies), so each replica-holding
        shard reaches the same verdict as the home shard and the
        replica multiset refines with the identical formula.
        """
        out: list[int] = []
        holds = pred.holds
        for t, shard in enumerate(self.shards):
            self._stat_queries[t] += 1
            self._stat_predicate_queries[t] += 1
            ids = shard.query(lower, upper, predicate=pred)
            remove: Counter = Counter()
            for (s, e, interval_id), n in self._rep_fin[t].items():
                if holds(s, e, lower, upper):
                    remove[interval_id] += n
            for (s, interval_id), n in self._rep_inf[t].items():
                if holds(s, UPPER_INF, lower, upper):
                    remove[interval_id] += n
            for (s, interval_id), n in self._rep_now[t].items():
                if holds(s, self._now, lower, upper):
                    remove[interval_id] += n
            out.extend(self._strip(ids, remove))
        return out

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def _clipped_probes(self, probes):
        """Clip every probe to each touched shard's slice.

        Returns per-shard probe batches plus, per shard, the pair strip
        Counter and the count correction: a probe entering shard ``t``
        as a non-first shard matches every left-crossing replica of
        ``t`` (same argument as single queries), so each such probe
        drops the full replica id multiset from its pairs.
        """
        batches: list[list[IntervalRecord]] = [[] for _ in self.shards]
        strips: list[Counter] = [Counter() for _ in self.shards]
        corrections = [0] * len(self.shards)
        replica_ids = [self._replica_ids(t) for t in range(len(self.shards))]
        replica_totals = [self._replica_total(t)
                          for t in range(len(self.shards))]
        for lower, upper, probe_id in probes:
            validate_interval(lower, upper)
            first = self._shard_of(lower)
            last = self._shard_of(upper)
            self._stat_join_probes[first] += 1
            hi = self._slice_hi(first)
            batches[first].append(
                (lower, upper if hi is None else min(upper, hi), probe_id))
            for t in range(first + 1, last + 1):
                self._stat_join_probes[t] += 1
                lo = self._slice_lo(t)
                hi = self._slice_hi(t)
                batches[t].append(
                    (lo, upper if hi is None else min(upper, hi), probe_id))
                for interval_id, n in replica_ids[t].items():
                    strips[t][(probe_id, interval_id)] += n
                corrections[t] += replica_totals[t]
        return batches, strips, corrections

    def join_pairs(
        self, probes: Sequence[IntervalRecord], *legacy, predicate=None
    ) -> list[tuple[int, int]]:
        """Batched overlap join: one backend probe batch per shard.

        Predicate joins refine the router's ``stored_records`` (which
        already deduplicates) through the base-class path -- correct on
        every predicate, at nested-loop cost.
        """
        predicate = shim_positional_predicate(legacy, predicate, "join_pairs")
        pred = resolve_join_predicate(predicate)
        if pred is not None:
            return super().join_pairs(probes, predicate=pred)
        batches, strips, _ = self._clipped_probes(probes)
        pairs: list[tuple[int, int]] = []
        for shard, batch, strip in zip(self.shards, batches, strips):
            if not batch:
                continue
            got = shard.join_pairs(batch)
            pairs.extend(self._strip(got, strip) if strip else got)
        return pairs

    def join_count(
        self, probes: Sequence[IntervalRecord], *legacy, predicate=None
    ) -> int:
        """Replication-blind join cardinality (the no-double-count rule)."""
        predicate = shim_positional_predicate(legacy, predicate, "join_count")
        pred = resolve_join_predicate(predicate)
        if pred is not None:
            return len(self.join_pairs(probes, predicate=pred))
        batches, _, corrections = self._clipped_probes(probes)
        total = 0
        for shard, batch, correction in zip(
                self.shards, batches, corrections):
            if batch:
                total += shard.join_count(batch) - correction
        return total

    # ------------------------------------------------------------------
    # enumeration / planning
    # ------------------------------------------------------------------
    def stored_records(self) -> list[IntervalRecord]:
        """The logical record multiset: shard contents minus replicas."""
        out: list[IntervalRecord] = []
        for t, shard in enumerate(self.shards):
            records = shard.stored_records()
            replicas = self._materialized_replicas(t)
            if not replicas:
                out.extend(records)
                continue
            kept = Counter(records)
            kept.subtract(replicas)
            for record, n in kept.items():
                out.extend([record] * n)
        return out

    def _materialized_replicas(self, t: int) -> Counter:
        """Shard ``t``'s replicas as they appear in its stored_records
        (now-relative rows materialise the clock, infinite rows keep
        the sentinel -- the shared store convention)."""
        replicas: Counter = Counter(self._rep_fin[t])
        for (lower, interval_id), n in self._rep_inf[t].items():
            replicas[(lower, UPPER_INF, interval_id)] += n
        for (lower, interval_id), n in self._rep_now[t].items():
            replicas[(lower, self._now, interval_id)] += n
        return replicas

    def cost_model(self):
        """A router-level :class:`RITreeCostModel` over the logical
        (deduplicated) record population."""
        return RITreeCostModel(
            statistics=_RouterStatistics(self),
            source="records",
            cache_residency=1.0,
        )

    # ------------------------------------------------------------------
    # accounting / observability
    # ------------------------------------------------------------------
    @property
    def interval_count(self) -> int:
        return self._count

    @property
    def index_entry_count(self) -> int:
        """Physical entries across shards -- replication included, the
        same Figure 12 storage metric HINT reports per partition."""
        return sum(shard.index_entry_count for shard in self.shards)

    @property
    def replica_count(self) -> int:
        """Live replica records (extra physical copies across cuts)."""
        return (sum(self._rep_fin_n) + sum(self._rep_inf_n)
                + sum(self._rep_now_n))

    def routing_stats(self) -> dict:
        """Routing observability for the service ``stats`` op."""
        return {
            "backend": self.shards[0].method_name,
            "shard_count": len(self.shards),
            "cuts": list(self.cuts),
            "records": self._count,
            "replicas": self.replica_count,
            "shards": [
                {
                    "slice": [self._slice_lo(t), self._slice_hi(t)],
                    "records": shard.interval_count,
                    "replicas": (self._rep_fin_n[t] + self._rep_inf_n[t]
                                 + self._rep_now_n[t]),
                    "queries": self._stat_queries[t],
                    "predicate_queries": self._stat_predicate_queries[t],
                    "inserts": self._stat_inserts[t],
                    "join_probes": self._stat_join_probes[t],
                    "appends": self._stat_appends[t],
                    "append_replicas": self._stat_append_replicas[t],
                }
                for t, shard in enumerate(self.shards)
            ],
        }

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _verify_into(self, report: VerificationReport) -> None:
        super()._verify_into(report)
        report.add_check("shard-accounting")
        physical = sum(shard.interval_count for shard in self.shards)
        expected = self._count + self.replica_count
        if physical != expected:
            report.add_issue(
                "shard-accounting-mismatch",
                f"shards hold {physical} records but {self._count} "
                f"logical + {self.replica_count} replicas were routed",
            )
        report.add_check("shard-verify")
        for t, shard in enumerate(self.shards):
            sub = shard.verify()
            for issue in sub.issues:
                report.add_issue(
                    f"shard{t}-{issue.code}",
                    f"[shard {t}] {issue.message}",
                    issue.context,
                )


class _RouterStatistics:
    """Statistics source over a :class:`ShardedStore` for the cost model.

    Histograms come from the deduplicated logical records, the backbone
    from the router's registration mirror, and the geometry is the
    memory-resident shape with one partition per shard.
    """

    sources = ("records",)

    def __init__(self, store: ShardedStore) -> None:
        self.store = store

    @property
    def backbone(self) -> VirtualBackbone:
        return self.store._backbone

    def summarize(self, source: str, buckets: int) -> BoundSummary:
        return BoundSummary.from_records(
            self.store.stored_records(), buckets)

    def geometry(self, count: int):
        from .costmodel import memory_resident_geometry

        return memory_resident_geometry(
            count, max(1, self.store.shard_count))
