"""HINT-style main-memory interval store (third ``IntervalStore`` backend).

The RI-tree of the source paper is shaped for block-oriented storage:
every query pays index descents, and the cost model prices buffer-cache
misses.  This module is its main-memory sibling, after Christodoulou,
Bouros & Mamoulis, "HINT: A Hierarchical Index for Intervals in Main
Memory" (SIGMOD 2022; see PAPERS.md): a hierarchy of ``m + 1`` levels of
domain partitions, where level ``l`` splits the indexed domain into
``2**l`` equal cells and each stored interval is assigned to at most two
partitions per level by the common prefixes of its discretised bounds.

Why this answers queries almost comparison-free:

* A range query ``[l, u]`` touches, per level, the partitions between
  the cells of ``l`` and ``u``.  Every interval stored in a *middle*
  partition (strictly between the two boundary cells) is guaranteed to
  intersect the query, so those partitions are emitted wholesale --
  ``list.extend`` at C speed, no Python-level comparisons at all.
* The two *boundary* partitions need one comparison each, and the
  per-partition data is kept in two sorted views (by lower bound and by
  upper bound), so even those comparisons collapse into ``bisect``
  slices rather than per-record Python work.
* Replicated entries (an interval appears in up to two partitions per
  level) are deduplicated by the *first occurrence* rule: replicas are
  only reported from the first partition of a level's walk, which is
  the unique assigned partition containing the query's start cell.

The store implements the full :class:`~repro.core.access.IntervalStore`
protocol -- updates, the intersection family, predicate ``query`` via
the PR-5 inverse-candidate-range convention, ``join_pairs`` /
``join_count``, temporal sentinel handling (``[s, oo)`` and ``[s, now]``
rows live in dedicated side lists, mirroring the reserved fork nodes of
:class:`~repro.core.temporal.TemporalRITree`), and a structured
``verify()``.  It also ships the third cost-model statistics provider:
:class:`HintCostModel` prices joins with a zero-physical-read term so
:class:`~repro.core.join.AutoJoin` can plan memory-vs-disk, not just
index-vs-sweep.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from dataclasses import replace
from itertools import repeat
from typing import Iterable, Optional, Sequence

from .access import IntervalRecord, IntervalStore
from .backbone import VirtualBackbone
from .costmodel import (
    DEFAULT_BUCKETS,
    BoundSummary,
    JoinEstimate,
    RITreeCostModel,
    memory_resident_geometry,
)
from .interval import validate_interval
from .predicates import (
    resolve_join_predicate,
    shim_positional_predicate,
)
from .temporal import UPPER_INF, UPPER_NOW, resolve_clock_argument
from .verify import VerificationReport

#: Default partitioning depth: ``levels = m`` gives ``2**m`` cells at the
#: finest level.  10 keeps the per-level walk short while holding bottom
#: cells to ~1k domain values for the benchmark workloads.
DEFAULT_LEVELS = 10

# Python-frame planner constants for the HINT probe path, calibrated with
# the profile-hook counter of benchmarks/benchlib.py (bench_hint.py): one
# walk activation per probe plus a couple of boundary list comprehensions
# per non-empty level; emitted pairs ride C-level ``extend``/``zip``.
HINT_FRAMES_PER_PROBE = 4.0
HINT_FRAMES_PER_LEVEL = 1.5
HINT_FRAMES_PER_PAIR = 0.05

#: Frames per candidate record of a predicate join's refinement: one
#: ``holds`` activation each, same regime as the RI-tree's leaf slices.
HINT_FRAMES_PER_CANDIDATE = 1.2


class _Bucket:
    """One replication class (originals *or* replicas) of a partition.

    Records are held in six parallel lists forming two sorted views:
    ``s_*`` ordered by lower bound, ``e_*`` ordered by upper bound.  The
    two views let every boundary-partition filter run as a ``bisect``
    slice: "all records with ``upper >= l``" is a tail of the ``e_*``
    view, "all records with ``lower <= u``" a head of the ``s_*`` view.
    """

    __slots__ = ("s_lowers", "s_uppers", "s_ids",
                 "e_uppers", "e_lowers", "e_ids")

    def __init__(self) -> None:
        self.s_lowers: list[int] = []
        self.s_uppers: list[int] = []
        self.s_ids: list[int] = []
        self.e_uppers: list[int] = []
        self.e_lowers: list[int] = []
        self.e_ids: list[int] = []

    def __len__(self) -> int:
        return len(self.s_ids)

    def add(self, lower: int, upper: int, interval_id: int) -> None:
        i = bisect_right(self.s_lowers, lower)
        self.s_lowers.insert(i, lower)
        self.s_uppers.insert(i, upper)
        self.s_ids.insert(i, interval_id)
        j = bisect_right(self.e_uppers, upper)
        self.e_uppers.insert(j, upper)
        self.e_lowers.insert(j, lower)
        self.e_ids.insert(j, interval_id)

    def append_raw(self, lower: int, upper: int, interval_id: int) -> None:
        """Unsorted append: O(1) per entry, views left out of order.

        The batched-ingest half of :meth:`add` -- the caller collects
        the touched buckets and must :meth:`resort` each before any
        read touches the views again.
        """
        self.s_lowers.append(lower)
        self.s_uppers.append(upper)
        self.s_ids.append(interval_id)
        self.e_uppers.append(upper)
        self.e_lowers.append(lower)
        self.e_ids.append(interval_id)

    def resort(self) -> None:
        """Rebuild both sorted views after a run of raw appends.

        One ``sorted`` per view instead of one ``list.insert`` per
        record: equal-key entries may land in a different relative
        order than bisect insertion would give, which is fine -- query
        results are order-unspecified and the sorted-view invariants
        only constrain the keys.
        """
        by_start = sorted(zip(self.s_lowers, self.s_uppers, self.s_ids))
        self.s_lowers = [lower for lower, _, _ in by_start]
        self.s_uppers = [upper for _, upper, _ in by_start]
        self.s_ids = [i for _, _, i in by_start]
        by_end = sorted(zip(self.e_uppers, self.e_lowers, self.e_ids))
        self.e_uppers = [upper for upper, _, _ in by_end]
        self.e_lowers = [lower for _, lower, _ in by_end]
        self.e_ids = [i for _, _, i in by_end]

    def remove(self, lower: int, upper: int, interval_id: int) -> None:
        self._remove_from(self.s_lowers, self.s_uppers, self.s_ids,
                          lower, upper, interval_id)
        self._remove_from(self.e_uppers, self.e_lowers, self.e_ids,
                          upper, lower, interval_id)

    @staticmethod
    def _remove_from(keys, others, ids, key, other, interval_id):
        i = bisect_left(keys, key)
        while i < len(keys) and keys[i] == key:
            if others[i] == other and ids[i] == interval_id:
                del keys[i]
                del others[i]
                del ids[i]
                return
            i += 1
        raise KeyError((key, other, interval_id))


#: A partition is a pair of buckets: ``(originals, replicas)``.
_Partition = tuple[_Bucket, _Bucket]


class HintStore(IntervalStore):
    """Hierarchical main-memory interval store (HINT-style).

    Parameters
    ----------
    levels:
        Partitioning depth ``m``; the finest level has ``2**m`` cells.
    now:
        Initial clock for now-relative temporal rows.

    The domain mapping ``position(v) = (v - offset) >> shift`` is fitted
    lazily from the first insert and refitted (with doubling headroom on
    both sides) whenever an insert falls outside the covered range, so
    callers never declare a domain up front.  Refits reassign every
    stored record -- amortised constant work per insert, exactly like a
    growing array.
    """

    method_name = "HINT"
    name = "hint-store"

    def __init__(self, levels: int = DEFAULT_LEVELS, now: int = 0) -> None:
        if not 1 <= levels <= 24:
            raise ValueError(f"levels must be in [1, 24], got {levels}")
        self.levels = levels
        self._size = 1 << levels
        # One dict of partitions per level; populated lazily, pruned on
        # delete, so empty regions cost nothing to walk past.
        self._levels: list[dict[int, _Partition]] = [
            {} for _ in range(levels + 1)]
        # Finite-record registry with multiplicity (duplicate records are
        # legal; ids are only unique per (lower, upper, id) triple).
        self._finite: Counter[IntervalRecord] = Counter()
        self._finite_count = 0
        self._finite_entries = 0
        # Domain mapping; None until the first finite insert.
        self._offset: Optional[int] = None
        self._shift = 0
        # Historic finite bound envelope (never shrinks under deletes;
        # sizes domain refits conservatively).
        self._fin_lo: Optional[int] = None
        self._fin_hi: Optional[int] = None
        # Global bound envelope for predicate candidate extents.  Like
        # TemporalRITree, sentinel rows note (lower, lower): the extent
        # ceiling only needs to reach every stored *lower* bound.
        self._min_lower: Optional[int] = None
        self._max_upper: Optional[int] = None
        # Temporal side lists, sorted by lower bound.
        self._now = now
        self._inf_lowers: list[int] = []
        self._inf_ids: list[int] = []
        self._now_lowers: list[int] = []
        self._now_ids: list[int] = []
        # Virtual backbone fed to the planner's transient-entry sampler.
        self._backbone = VirtualBackbone()
        self._cost_model: Optional[HintCostModel] = None
        self._cost_model_version: Optional[tuple] = None

    # ------------------------------------------------------------------
    # domain mapping
    # ------------------------------------------------------------------
    def _pos(self, value: int) -> int:
        """Clamped cell index of ``value`` at the finest level."""
        pos = (value - self._offset) >> self._shift
        if pos < 0:
            return 0
        if pos >= self._size:
            return self._size - 1
        return pos

    def _set_domain(self, lo: int, hi: int) -> None:
        span = max(1, hi - lo)
        self._offset = lo - span
        required = hi - self._offset
        self._shift = max(0, required.bit_length() - self.levels)

    def _ensure_domain(self, lower: int, upper: int) -> None:
        if self._offset is None:
            self._set_domain(lower, upper)
            return
        if (lower >= self._offset
                and (upper - self._offset) >> self._shift < self._size):
            return
        lo = lower if self._fin_lo is None else min(self._fin_lo, lower)
        hi = upper if self._fin_hi is None else max(self._fin_hi, upper)
        self._set_domain(lo, hi)
        self._levels = [{} for _ in range(self.levels + 1)]
        self._finite_entries = 0
        for (s, e, i), mult in self._finite.items():
            for _ in range(mult):
                self._place(s, e, i)

    # ------------------------------------------------------------------
    # partition assignment
    # ------------------------------------------------------------------
    def _assignments(self, a: int, b: int) -> list[tuple[int, int, bool]]:
        """``(level, partition, is_original)`` cover of cell range [a, b].

        Walks the two bound prefixes bottom-up; a cell is split off
        whenever its prefix is odd-aligned (start side) or even-aligned
        (end side), exactly once per side per level, so every interval
        lands in at most two partitions per level and the assigned
        extents disjointly cover ``[a, b]``.  The single partition whose
        extent contains ``a`` is flagged as the *original*; every other
        assignment is a replica, skipped by non-first partitions of a
        query walk (the first-occurrence dedup rule).
        """
        out: list[tuple[int, int, bool]] = []
        level = self.levels
        start_assigned = False
        while True:
            if a & 1:
                out.append((level, a, not start_assigned))
                start_assigned = True
                a += 1
            if not b & 1:
                original = not start_assigned and b == a
                out.append((level, b, original))
                if original:
                    start_assigned = True
                b -= 1
            if a > b:
                return out
            a >>= 1
            b >>= 1
            level -= 1

    def _place(self, lower: int, upper: int, interval_id: int) -> int:
        """Insert one finite record into its partitions; entry count."""
        a = (lower - self._offset) >> self._shift
        b = (upper - self._offset) >> self._shift
        assignments = self._assignments(a, b)
        for level, pid, original in assignments:
            part = self._levels[level].get(pid)
            if part is None:
                part = (_Bucket(), _Bucket())
                self._levels[level][pid] = part
            part[0 if original else 1].add(lower, upper, interval_id)
        self._finite_entries += len(assignments)
        return len(assignments)

    def _displace(self, lower: int, upper: int, interval_id: int) -> None:
        a = (lower - self._offset) >> self._shift
        b = (upper - self._offset) >> self._shift
        for level, pid, original in self._assignments(a, b):
            parts = self._levels[level]
            part = parts[pid]
            part[0 if original else 1].remove(lower, upper, interval_id)
            if not part[0].s_ids and not part[1].s_ids:
                del parts[pid]
            self._finite_entries -= 1

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        if upper == UPPER_INF:
            self.insert_infinite(lower, interval_id)
            return
        if upper == UPPER_NOW:
            self.insert_until_now(lower, interval_id)
            return
        validate_interval(lower, upper)
        self._ensure_domain(lower, upper)
        self._place(lower, upper, interval_id)
        self._finite[(lower, upper, interval_id)] += 1
        self._finite_count += 1
        self._note_bounds(lower, upper)
        if self._fin_lo is None or lower < self._fin_lo:
            self._fin_lo = lower
        if self._fin_hi is None or upper > self._fin_hi:
            self._fin_hi = upper
        self._backbone.register(lower, upper)

    def append_batch(self, intervals) -> None:
        """Streaming append: raw bucket appends, one resort per bucket.

        Sentinel rows take the regular side-list inserts.  Finite rows
        are fitted under a single domain check over the batch envelope
        (a mid-batch refit would rebuild the levels from ``_finite``
        and drop the still-unsorted raw appends), appended unsorted to
        their assigned buckets, and every touched bucket is resorted
        once at the end -- O(k log k) per dirty bucket instead of O(k^2)
        bisect insertion for a batch that lands k records in one bucket.
        """
        finite: list[IntervalRecord] = []
        lo: Optional[int] = None
        hi: Optional[int] = None
        for lower, upper, interval_id in intervals:
            if upper == UPPER_INF:
                self.insert_infinite(lower, interval_id)
            elif upper == UPPER_NOW:
                self.insert_until_now(lower, interval_id)
            else:
                validate_interval(lower, upper)
                finite.append((lower, upper, interval_id))
                if lo is None or lower < lo:
                    lo = lower
                if hi is None or upper > hi:
                    hi = upper
        if not finite:
            return
        self._ensure_domain(lo, hi)
        dirty: dict[int, _Bucket] = {}
        for lower, upper, interval_id in finite:
            a = (lower - self._offset) >> self._shift
            b = (upper - self._offset) >> self._shift
            assignments = self._assignments(a, b)
            for level, pid, original in assignments:
                part = self._levels[level].get(pid)
                if part is None:
                    part = (_Bucket(), _Bucket())
                    self._levels[level][pid] = part
                bucket = part[0 if original else 1]
                bucket.append_raw(lower, upper, interval_id)
                dirty[id(bucket)] = bucket
            self._finite_entries += len(assignments)
            self._finite[(lower, upper, interval_id)] += 1
            self._finite_count += 1
            self._note_bounds(lower, upper)
            if self._fin_lo is None or lower < self._fin_lo:
                self._fin_lo = lower
            if self._fin_hi is None or upper > self._fin_hi:
                self._fin_hi = upper
            self._backbone.register(lower, upper)
        for bucket in dirty.values():
            bucket.resort()

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        if upper == UPPER_INF:
            self.delete_infinite(lower, interval_id)
            return
        if upper == UPPER_NOW:
            self.delete_until_now(lower, interval_id)
            return
        record = (lower, upper, interval_id)
        if self._finite.get(record, 0) <= 0:
            raise KeyError(record)
        self._displace(lower, upper, interval_id)
        self._finite[record] -= 1
        if not self._finite[record]:
            del self._finite[record]
        self._finite_count -= 1

    def _note_bounds(self, lower: int, upper: int) -> None:
        if self._min_lower is None or lower < self._min_lower:
            self._min_lower = lower
        if self._max_upper is None or upper > self._max_upper:
            self._max_upper = upper

    # ------------------------------------------------------------------
    # temporal sentinels
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current clock value used for now-relative semantics."""
        return self._now

    def advance_to(self, now: Optional[int] = None, *,
                   timestamp: Optional[int] = None) -> None:
        """Move the clock forward; time never runs backwards."""
        now = resolve_clock_argument(now, timestamp)
        if now < self._now:
            raise ValueError(
                f"clock moves forward only: {now} < now={self._now}")
        self._now = now

    def insert_infinite(self, lower: int, interval_id: int) -> None:
        """Insert the open-ended interval ``[lower, infinity)``."""
        validate_interval(lower, lower)
        i = bisect_right(self._inf_lowers, lower)
        self._inf_lowers.insert(i, lower)
        self._inf_ids.insert(i, interval_id)
        self._note_bounds(lower, lower)

    def insert_until_now(self, lower: int, interval_id: int) -> None:
        """Insert the now-relative interval ``[lower, now]``.

        The row's effective upper bound follows the clock without any
        maintenance: the side list keys on the lower bound only.
        """
        validate_interval(lower, lower)
        if lower > self._now:
            raise ValueError(
                f"now-relative interval starts at {lower}, after now="
                f"{self._now}")
        i = bisect_right(self._now_lowers, lower)
        self._now_lowers.insert(i, lower)
        self._now_ids.insert(i, interval_id)
        self._note_bounds(lower, lower)

    def delete_infinite(self, lower: int, interval_id: int) -> None:
        """Delete an infinite interval by its lower bound and id."""
        self._remove_side(self._inf_lowers, self._inf_ids,
                          lower, interval_id)

    def delete_until_now(self, lower: int, interval_id: int) -> None:
        """Delete a now-relative interval by its lower bound and id."""
        self._remove_side(self._now_lowers, self._now_ids,
                          lower, interval_id)

    def close_now_interval(self, lower: int, interval_id: int,
                           upper: int) -> None:
        """Terminate ``[lower, now]`` at a fixed ``upper``: the record
        is re-registered as an ordinary finite interval."""
        validate_interval(lower, upper)
        self.delete_until_now(lower, interval_id)
        self.insert(lower, upper, interval_id)

    @staticmethod
    def _remove_side(lowers, ids, lower, interval_id):
        i = bisect_left(lowers, lower)
        while i < len(lowers) and lowers[i] == lower:
            if ids[i] == interval_id:
                del lowers[i]
                del ids[i]
                return
            i += 1
        raise KeyError((lower, interval_id))

    @property
    def infinite_count(self) -> int:
        """Number of stored ``[s, oo)`` intervals."""
        return len(self._inf_ids)

    @property
    def now_relative_count(self) -> int:
        """Number of stored ``[s, now]`` intervals."""
        return len(self._now_ids)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def interval_count(self) -> int:
        return (self._finite_count + len(self._inf_ids)
                + len(self._now_ids))

    @property
    def index_entry_count(self) -> int:
        return (self._finite_entries + len(self._inf_ids)
                + len(self._now_ids))

    @property
    def partition_count(self) -> int:
        """Number of non-empty partitions across all levels."""
        return sum(len(parts) for parts in self._levels)

    def level_occupancy(self) -> list[tuple[int, int]]:
        """Per level: ``(partitions, entries)`` -- a structure summary."""
        out = []
        for parts in self._levels:
            entries = sum(len(p[0]) + len(p[1]) for p in parts.values())
            out.append((len(parts), entries))
        return out

    # ------------------------------------------------------------------
    # the intersection family (the comparison-free walks)
    # ------------------------------------------------------------------
    def _finite_ids(self, lower: int, upper: int, out: list[int]) -> None:
        """Append ids of finite records intersecting ``[lower, upper]``.

        One pass over the levels; per level the walk touches the
        partitions between the cells of the two query bounds.  Middle
        partitions contribute their originals wholesale (provably all
        matches, no comparisons); the two boundary partitions filter by
        a single ``bisect`` slice each; replicas are read only from the
        first partition (the dedup rule).  All bulk movement is C-level
        ``extend``/slicing -- Python frames stay O(levels), not
        O(results).
        """
        if self._offset is None:
            return
        pl = self._pos(lower)
        pu = self._pos(upper)
        m = self.levels
        for level in range(m, -1, -1):
            parts = self._levels[level]
            if not parts:
                continue
            shift = m - level
            f = pl >> shift
            t = pu >> shift
            if f == t:
                part = parts.get(f)
                if part is not None:
                    for b in part:
                        k = bisect_left(b.e_uppers, lower)
                        out.extend([i for s, i in
                                    zip(b.e_lowers[k:], b.e_ids[k:])
                                    if s <= upper])
                continue
            part = parts.get(f)
            if part is not None:
                for b in part:
                    out.extend(b.e_ids[bisect_left(b.e_uppers, lower):])
            for pid in range(f + 1, t):
                part = parts.get(pid)
                if part is not None:
                    out.extend(part[0].s_ids)
            part = parts.get(t)
            if part is not None:
                b = part[0]
                out.extend(b.s_ids[:bisect_right(b.s_lowers, upper)])

    def intersection(self, lower: int, upper: int) -> list[int]:
        validate_interval(lower, upper)
        out: list[int] = []
        self._finite_ids(lower, upper, out)
        out.extend(self._inf_ids[:bisect_right(self._inf_lowers, upper)])
        if lower <= self._now:
            out.extend(
                self._now_ids[:bisect_right(self._now_lowers, upper)])
        return out

    def intersection_count(self, lower: int, upper: int) -> int:
        """Count without materialising: every term is a ``bisect`` or a
        ``len`` over a sorted view, so whole-partition and boundary
        counts alike cost zero per-record Python work."""
        validate_interval(lower, upper)
        total = 0
        if self._offset is not None:
            pl = self._pos(lower)
            pu = self._pos(upper)
            m = self.levels
            for level in range(m, -1, -1):
                parts = self._levels[level]
                if not parts:
                    continue
                shift = m - level
                f = pl >> shift
                t = pu >> shift
                if f == t:
                    part = parts.get(f)
                    if part is not None:
                        # matches = n - #(e < l) - #(s > u); the two
                        # excluded sets are disjoint, so the count is a
                        # difference of two bisects.
                        for b in part:
                            total += (bisect_right(b.s_lowers, upper)
                                      - bisect_left(b.e_uppers, lower))
                    continue
                part = parts.get(f)
                if part is not None:
                    for b in part:
                        total += (len(b.e_uppers)
                                  - bisect_left(b.e_uppers, lower))
                for pid in range(f + 1, t):
                    part = parts.get(pid)
                    if part is not None:
                        total += len(part[0].s_ids)
                part = parts.get(t)
                if part is not None:
                    total += bisect_right(part[0].s_lowers, upper)
        total += bisect_right(self._inf_lowers, upper)
        if lower <= self._now:
            total += bisect_right(self._now_lowers, upper)
        return total

    # ------------------------------------------------------------------
    # predicate queries (inverse-candidate-range convention)
    # ------------------------------------------------------------------
    def _candidate_extent(self):
        """Conservative ``(floor, ceiling)`` over stored bounds, for the
        unbounded sides of ``before``/``after`` candidate ranges."""
        if self._min_lower is None:
            return None, None
        return self._min_lower, self._max_upper

    def _candidate_records(self, lower: int, upper: int) -> list:
        """``(lower, upper, id)`` triples intersecting ``[lower, upper]``,
        with *effective* upper bounds for sentinel rows (``UPPER_INF``
        stays symbolic; now-relative rows materialise the clock).  Same
        walk as :meth:`_finite_ids`, carrying bounds for refinement."""
        out: list = []
        if self._offset is not None:
            pl = self._pos(lower)
            pu = self._pos(upper)
            m = self.levels
            for level in range(m, -1, -1):
                parts = self._levels[level]
                if not parts:
                    continue
                shift = m - level
                f = pl >> shift
                t = pu >> shift
                if f == t:
                    part = parts.get(f)
                    if part is not None:
                        for b in part:
                            k = bisect_left(b.e_uppers, lower)
                            out.extend([
                                (s, e, i) for s, e, i in
                                zip(b.e_lowers[k:], b.e_uppers[k:],
                                    b.e_ids[k:])
                                if s <= upper])
                    continue
                part = parts.get(f)
                if part is not None:
                    for b in part:
                        k = bisect_left(b.e_uppers, lower)
                        out.extend(zip(b.e_lowers[k:], b.e_uppers[k:],
                                       b.e_ids[k:]))
                for pid in range(f + 1, t):
                    part = parts.get(pid)
                    if part is not None:
                        b = part[0]
                        out.extend(zip(b.s_lowers, b.s_uppers, b.s_ids))
                part = parts.get(t)
                if part is not None:
                    b = part[0]
                    k = bisect_right(b.s_lowers, upper)
                    out.extend(zip(b.s_lowers[:k], b.s_uppers[:k],
                                   b.s_ids[:k]))
        k = bisect_right(self._inf_lowers, upper)
        out.extend(zip(self._inf_lowers[:k], repeat(UPPER_INF),
                       self._inf_ids[:k]))
        if lower <= self._now:
            k = bisect_right(self._now_lowers, upper)
            out.extend(zip(self._now_lowers[:k], repeat(self._now),
                           self._now_ids[:k]))
        return out

    def _candidate_window(self, pred, lower: int, upper: int):
        floor = ceiling = None
        if (pred.name in ("before", "after")
                or getattr(pred, "needs_extent", False)):
            floor, ceiling = self._candidate_extent()
            if floor is None:
                return None
        return pred.candidates(lower, upper, floor, ceiling)

    def _query_relation(self, pred, lower: int, upper: int) -> list[int]:
        window = self._candidate_window(pred, lower, upper)
        if window is None:
            return []
        holds = pred.holds
        return [i for s, e, i in self._candidate_records(*window)
                if holds(s, e, lower, upper)]

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def join_pairs(self, probes: Sequence[IntervalRecord], *legacy,
                   predicate=None) -> list[tuple[int, int]]:
        predicate = shim_positional_predicate(legacy, predicate, "join_pairs")
        pred = resolve_join_predicate(predicate)
        pairs: list[tuple[int, int]] = []
        if pred is None:
            inf_lowers = self._inf_lowers
            now_lowers = self._now_lowers
            for lower, upper, probe_id in probes:
                validate_interval(lower, upper)
                ids: list[int] = []
                self._finite_ids(lower, upper, ids)
                ids.extend(self._inf_ids[:bisect_right(inf_lowers, upper)])
                if lower <= self._now:
                    ids.extend(
                        self._now_ids[:bisect_right(now_lowers, upper)])
                pairs.extend(zip(repeat(probe_id), ids))
            return pairs
        inverse = pred.inverse
        holds = pred.holds
        floor = ceiling = None
        if inverse.name in ("before", "after"):
            floor, ceiling = self._candidate_extent()
            if floor is None:
                return []
        for lower, upper, probe_id in probes:
            validate_interval(lower, upper)
            window = inverse.candidates(lower, upper, floor, ceiling)
            if window is None:
                continue
            pairs.extend([
                (probe_id, interval_id)
                for s, e, interval_id in self._candidate_records(*window)
                if holds(lower, upper, s, e)])
        return pairs

    def join_count(self, probes: Sequence[IntervalRecord], *legacy,
                   predicate=None) -> int:
        predicate = shim_positional_predicate(legacy, predicate, "join_count")
        pred = resolve_join_predicate(predicate)
        if pred is None:
            total = 0
            for lower, upper, _ in probes:
                total += self.intersection_count(lower, upper)
            return total
        return len(self.join_pairs(probes, predicate=predicate))

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def stored_records(self) -> list[IntervalRecord]:
        """Every stored record; now-relative rows materialise the
        current clock, infinite rows keep the ``UPPER_INF`` sentinel."""
        out: list[IntervalRecord] = []
        for record, mult in self._finite.items():
            out.extend(repeat(record, mult))
        out.extend(zip(self._inf_lowers, repeat(UPPER_INF),
                       self._inf_ids))
        out.extend(zip(self._now_lowers, repeat(self._now),
                       self._now_ids))
        return out

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def cost_model(self, refresh: bool = False) -> "HintCostModel":
        version = (self._finite_count, self._finite_entries,
                   len(self._inf_ids), len(self._now_ids), self._now)
        if (self._cost_model is None or refresh
                or self._cost_model_version != version):
            self._cost_model = HintCostModel(self)
            self._cost_model_version = version
        return self._cost_model

    def _bound_histograms(self) -> tuple[list[int], list[int]]:
        """Sorted lower/upper bound lists assembled from the partition
        arrays (originals only -- one entry per stored record) plus the
        temporal side lists with their effective upper bounds."""
        lowers: list[int] = []
        uppers: list[int] = []
        for parts in self._levels:
            for part in parts.values():
                lowers.extend(part[0].s_lowers)
                uppers.extend(part[0].s_uppers)
        lowers.extend(self._inf_lowers)
        uppers.extend(repeat(UPPER_INF, len(self._inf_ids)))
        lowers.extend(self._now_lowers)
        uppers.extend(repeat(self._now, len(self._now_ids)))
        lowers.sort()
        uppers.sort()
        return lowers, uppers

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _verify_into(self, report: VerificationReport) -> None:
        super()._verify_into(report)
        self._verify_domain(report)
        self._verify_partitions(report)
        self._verify_side_lists(report)
        report.add_check("index-entry-count")
        placed = sum(
            len(p[0]) + len(p[1])
            for parts in self._levels for p in parts.values())
        expected_entries = placed + len(self._inf_ids) + len(self._now_ids)
        if expected_entries != self.index_entry_count:
            report.add_issue(
                "entry-count-mismatch",
                f"partitions hold {placed} entries but the store "
                f"accounts {self.index_entry_count}",
                {"placed": placed, "accounted": self.index_entry_count})

    def _verify_domain(self, report: VerificationReport) -> None:
        report.add_check("partition-domain")
        if self._finite and self._offset is None:
            report.add_issue(
                "domain-unset",
                "finite records stored but no domain mapping fitted")
            return
        for (lower, upper, interval_id) in self._finite:
            if self._offset is None:
                break
            a = (lower - self._offset) >> self._shift
            b = (upper - self._offset) >> self._shift
            if not (0 <= a <= b < self._size):
                report.add_issue(
                    "record-outside-domain",
                    f"record ({lower}, {upper}, {interval_id}) maps to "
                    f"cells [{a}, {b}] outside [0, {self._size - 1}]",
                    {"record": [lower, upper, interval_id]})

    def _verify_partitions(self, report: VerificationReport) -> None:
        report.add_check("partition-assignment")
        report.add_check("replication-dedup")
        report.add_check("partition-sort-order")
        if self._offset is None:
            return
        expected: Counter = Counter()
        for (lower, upper, interval_id), mult in self._finite.items():
            a = (lower - self._offset) >> self._shift
            b = (upper - self._offset) >> self._shift
            assignments = self._assignments(a, b)
            originals = [(level, pid) for level, pid, orig in assignments
                         if orig]
            if len(originals) != 1:
                report.add_issue(
                    "replication-dedup",
                    f"record ({lower}, {upper}, {interval_id}) has "
                    f"{len(originals)} original assignments, expected 1",
                    {"record": [lower, upper, interval_id]})
            else:
                level, pid = originals[0]
                if a >> (self.levels - level) != pid:
                    report.add_issue(
                        "replication-dedup",
                        f"original partition {pid} at level {level} does "
                        f"not contain the start cell of record "
                        f"({lower}, {upper}, {interval_id})",
                        {"record": [lower, upper, interval_id]})
            for level, pid, orig in assignments:
                expected[(level, pid, orig,
                          (lower, upper, interval_id))] += mult
        actual: Counter = Counter()
        for level, parts in enumerate(self._levels):
            for pid, part in parts.items():
                for orig, bucket in ((True, part[0]), (False, part[1])):
                    n = len(bucket.s_ids)
                    lists = (bucket.s_lowers, bucket.s_uppers,
                             bucket.e_uppers, bucket.e_lowers,
                             bucket.e_ids)
                    if any(len(lst) != n for lst in lists):
                        report.add_issue(
                            "partition-sort-order",
                            f"ragged parallel arrays in level {level} "
                            f"partition {pid}",
                            {"level": level, "partition": pid})
                        continue
                    if (any(x > y for x, y in
                            zip(bucket.s_lowers, bucket.s_lowers[1:]))
                            or any(x > y for x, y in
                                   zip(bucket.e_uppers,
                                       bucket.e_uppers[1:]))):
                        report.add_issue(
                            "partition-sort-order",
                            f"unsorted view in level {level} partition "
                            f"{pid}",
                            {"level": level, "partition": pid})
                    by_start = Counter(zip(bucket.s_lowers,
                                           bucket.s_uppers, bucket.s_ids))
                    by_end = Counter(zip(bucket.e_lowers, bucket.e_uppers,
                                         bucket.e_ids))
                    if by_start != by_end:
                        report.add_issue(
                            "partition-sort-order",
                            f"by-start and by-end views disagree in "
                            f"level {level} partition {pid}",
                            {"level": level, "partition": pid})
                    for record, count in by_start.items():
                        actual[(level, pid, orig, record)] += count
        if expected != actual:
            missing = expected - actual
            extra = actual - expected
            report.add_issue(
                "partition-assignment",
                f"partition contents disagree with the assignment rule: "
                f"{sum(missing.values())} entries missing, "
                f"{sum(extra.values())} unexpected",
                {"missing": sum(missing.values()),
                 "extra": sum(extra.values())})

    def _verify_side_lists(self, report: VerificationReport) -> None:
        report.add_check("temporal-rows")
        for label, lowers, ids in (
                ("infinite", self._inf_lowers, self._inf_ids),
                ("now", self._now_lowers, self._now_ids)):
            if len(lowers) != len(ids):
                report.add_issue(
                    "temporal-rows",
                    f"ragged {label} side list",
                    {"side": label})
            if any(x > y for x, y in zip(lowers, lowers[1:])):
                report.add_issue(
                    "temporal-rows",
                    f"unsorted {label} side list",
                    {"side": label})
        if any(lower > self._now for lower in self._now_lowers):
            report.add_issue(
                "temporal-rows",
                f"now-relative row starts after the clock ({self._now})",
                {"side": "now"})


class _HintStatistics:
    """Statistics source over a :class:`HintStore` for the cost model.

    The third provider next to the engine and sqlite ones: bound
    histograms come straight from the partition arrays (each record's
    original entry, already sorted per partition), and the geometry is
    the memory-resident shape -- no descent, everything cached.
    """

    sources = ("partitions",)

    def __init__(self, store: HintStore) -> None:
        self.store = store

    @property
    def backbone(self) -> VirtualBackbone:
        return self.store._backbone

    def summarize(self, source: str, buckets: int) -> BoundSummary:
        lowers, uppers = self.store._bound_histograms()
        # Durations need paired bounds, which the per-bound partition
        # arrays cannot recover; one enumeration pass pairs them on
        # *effective* bounds (now materialised, infinity kept symbolic).
        durations = sorted(upper - lower for lower, upper, _
                           in self.store.stored_records())
        return BoundSummary(lowers, uppers, buckets,
                            sorted_durations=durations)

    def geometry(self, count: int):
        return memory_resident_geometry(
            count, max(1, self.store.partition_count))


class HintCostModel(RITreeCostModel):
    """Join planner over a main-memory HINT store.

    Reuses the RI-tree model's selectivity machinery (histogram
    convolution, expected pair counts) but prices both strategies with
    **zero physical reads** -- the store lives in memory, so the LRU
    buffer model's cold-miss terms do not apply -- and replaces the
    index path's frame term with the HINT walk's O(levels)-per-probe
    shape.  With physical reads tied at zero, :class:`JoinEstimate`'s
    choice falls through to the Python-frame comparison: exactly the
    memory-vs-disk planning axis ``AutoJoin`` needs.
    """

    def __init__(self, store: HintStore,
                 buckets: int = DEFAULT_BUCKETS) -> None:
        super().__init__(statistics=_HintStatistics(store),
                         buckets=buckets, cache_residency=1.0,
                         source="partitions")

    def estimate_join(self, outer: Sequence[IntervalRecord],
                      predicate=None) -> JoinEstimate:
        estimate = super().estimate_join(outer, predicate=predicate)
        index = replace(
            estimate.index,
            logical_reads=0.0,
            physical_reads=0.0,
            frame_cost=self._hint_frames(
                len(outer), estimate.result_count, predicate))
        sweep = replace(estimate.sweep, physical_reads=0.0)
        return JoinEstimate(estimate.outer_n, estimate.inner_n,
                            estimate.result_count, index, sweep)

    def _hint_frames(self, probes: int, pairs: float,
                     predicate) -> float:
        name = getattr(predicate, "name", predicate)
        per_probe = (HINT_FRAMES_PER_PROBE
                     + HINT_FRAMES_PER_LEVEL * (self.store.levels + 1))
        per_pair = (HINT_FRAMES_PER_PAIR if name in (None, "intersects")
                    else HINT_FRAMES_PER_CANDIDATE)
        return probes * per_probe + pairs * per_pair


def bulk_loaded(records: Iterable[IntervalRecord],
                levels: int = DEFAULT_LEVELS, now: int = 0) -> HintStore:
    """Convenience constructor: a :class:`HintStore` holding ``records``."""
    store = HintStore(levels=levels, now=now)
    store.extend(records)
    return store
