"""Optimizer cost model for RI-tree queries and joins (paper Section 5).

"With a cost model registered at the optimizer, the server is able to
generate efficient execution plans for queries on interval data types."
This module supplies that component: selectivity estimation from bound
histograms plus an I/O model of the Figure 10 access plan, so a query
optimizer can decide between the RI-tree plan and alternatives (full scan,
other predicates first) without executing anything.

Estimation model
----------------
An interval intersects ``[l, u]`` iff ``lower <= u`` and ``upper >= l``, so

    r(l, u)  =  n - #{lower > u} - #{upper < l}

which needs only the two marginal cumulative distributions of the bounds.
The model keeps equi-depth histograms of both, refreshed either from the
base relation or from the leftmost bound columns of the two composite
indexes (:meth:`RITreeCostModel.refresh` with ``source="indexes"``).

The I/O model follows Section 4.4: each of the O(h) transient entries costs
one index descent of ``ceil(log_b n)`` block reads, and the result blocks
add ``r / entries_per_leaf``; a buffer-cache residency factor discounts the
repeated upper-level reads, matching the warm-cache behaviour of the
benchmark harness.

Join estimation
---------------
:class:`JoinEstimate` extends the model to the interval equi-overlap join
``R JOIN S``: the expected pair count convolves both sides' bound
histograms,

    E[pairs] = n_R * n_S * ( E_{u ~ R.upper}[F_S.lower(u)]
                             - E_{l ~ R.lower}[F_S.upper(l - 1)] )

(the per-probe identity above, averaged over the outer side's bound
distributions), and per-strategy cost formulas predict logical reads,
physical reads, and Python-frame work for the index-nested-loop join
against an RI-tree versus the sort-based plane sweep.  The planner entry
points -- :meth:`RITreeCostModel.estimate_join` on a loaded tree and the
engine-free :func:`choose_join_strategy` on raw record sequences -- feed
the ``auto`` strategy of :mod:`repro.core.join`, which dispatches to the
predicted-cheaper strategy.  The physical model for repeated index probes
is a two-regime LRU approximation in the spirit of Mackert & Lohman's
buffer model: leaf sets that fit the cache are read at most once, larger
leaf sets pay a steady-state miss rate damped by a calibrated locality
factor (probe locality on bulk-loaded indexes is far better than uniform).
"""

from __future__ import annotations

import math
import sqlite3
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..engine.buffer import DEFAULT_CACHE_BLOCKS
from ..engine.serial import PAGE_HEADER_SIZE
from ..engine.storage import DEFAULT_BLOCK_SIZE
from .access import IntervalRecord
from .backbone import VirtualBackbone
from .interval import validate_interval
from .predicates import compile_query, resolve_join_predicate
from .ritree import RITree
from .temporal import UPPER_NOW
from .transient import collect_query_nodes

#: Default number of histogram buckets (equi-depth boundaries kept).
DEFAULT_BUCKETS = 128

#: How many outer records are probed against the virtual backbone (pure
#: arithmetic, no I/O) to estimate the average transient-entry count.
TRANSIENT_SAMPLE = 64

#: Bytes per serialised integer column (engine-wide fixed width).
_INT_BYTES = 8

#: Leaf-miss damping for the over-cache LRU regime: probe streams against
#: a bulk-loaded index are strongly clustered (consecutive transient
#: entries of one probe land on neighbouring leaves), so the steady-state
#: uniform miss rate overshoots.  Calibrated against the measured
#: crossover grid of ``benchmarks/bench_join_crossover.py``.
LEAF_MISS_LOCALITY = 0.1

#: Fraction of transient-entry scans that land on a *new* leaf block:
#: within one probe the scan plan walks node ranges in key order, so many
#: of its O(h) range scans hit the leaf the previous range ended on (or
#: an empty gap inside it).  Feeds the Yao distinct-block estimate below;
#: calibrated alongside :data:`LEAF_MISS_LOCALITY`.
SCAN_LEAF_DISTINCT = 0.25

# Python-frame cost constants, calibrated with the profile-hook counter of
# benchmarks/benchlib.py on the crossover grid (least-squares fit over
# count-path runs; the planner only compares strategies with them, so
# order-of-magnitude fidelity is what matters).
SWEEP_FRAMES_PER_INPUT = 1.0
SWEEP_FRAMES_PER_PAIR = 1.0
INDEX_FRAMES_PER_PROBE = 8.0
INDEX_FRAMES_PER_SCAN = 4.8
INDEX_FRAMES_PER_LEAF = 40.0

#: Python frames per fetched candidate record in a predicate join's
#: leaf-slice refinement: one ``holds`` activation per record (the
#: listcomp itself runs at C speed).
INDEX_FRAMES_PER_CANDIDATE = 1.2

#: Fraction of predicate-join candidate scans landing on a new leaf
#: block.  Candidate ranges are stabs/prefixes at *per-probe* positions
#: scattered across the data space, so consecutive scans cluster far
#: less than one intersection probe's node ranges do
#: (:data:`SCAN_LEAF_DISTINCT`); calibrated against the measured
#: predicate-join grid of ``benchmarks/bench_predicate_join.py``.
PREDICATE_SCAN_LEAF_DISTINCT = 0.4


def heap_scan_blocks(
    rows: int, columns: int, block_size: int = DEFAULT_BLOCK_SIZE
) -> int:
    """Blocks of a heap file holding ``rows`` fixed-width integer rows.

    Mirrors :class:`repro.engine.heap.HeapFile`'s layout: one live flag
    plus ``columns`` integers per slot, ``PAGE_HEADER_SIZE`` bytes of page
    header -- the cost of one sequential relation scan.
    """
    if rows <= 0:
        return 0
    slot_bytes = _INT_BYTES * (columns + 1)
    per_page = max(1, (block_size - PAGE_HEADER_SIZE) // slot_bytes)
    return -(-rows // per_page)


def index_geometry(
    entries: int, key_columns: int, block_size: int = DEFAULT_BLOCK_SIZE
) -> tuple[int, int]:
    """``(height, leaf_capacity)`` of a B+-tree index without building it.

    Mirrors :class:`repro.engine.bptree.BPlusTree`'s page layout (key
    columns plus rowid per entry, internal pages with 8-byte child
    pointers), so the engine-free planner prices descents with the same
    geometry the engine would realise.
    """
    entry_bytes = _INT_BYTES * (key_columns + 1)
    leaf_capacity = max(4, (block_size - PAGE_HEADER_SIZE) // entry_bytes)
    internal_capacity = max(
        4, (block_size - PAGE_HEADER_SIZE - 8) // (entry_bytes + 8))
    height = 1
    pages = -(-max(entries, 1) // leaf_capacity)
    while pages > 1:
        height += 1
        pages = -(-pages // internal_capacity)
    return height, leaf_capacity


def index_internal_blocks(
    entries: int, leaf_capacity: int, internal_capacity: int
) -> int:
    """Non-leaf block count of one B+-tree with ``entries`` entries."""
    pages = -(-max(entries, 1) // max(1, leaf_capacity))
    internal = 0
    while pages > 1:
        pages = -(-pages // max(4, internal_capacity))
        internal += pages
    return internal


class BoundSummary:
    """Equi-depth histograms of one relation's lower and upper bounds.

    The reusable statistics object behind both the single-query and the
    join estimators: ``count`` intervals summarised by quantile boundaries
    of each bound, with interpolated CDF lookups and bucket-weighted means
    over either bound distribution.
    """

    __slots__ = ("count", "buckets", "lower_bounds", "upper_bounds",
                 "duration_bounds")

    def __init__(
        self,
        sorted_lowers: Sequence[int],
        sorted_uppers: Sequence[int],
        buckets: int = DEFAULT_BUCKETS,
        sorted_durations: Optional[Sequence[int]] = None,
    ) -> None:
        if buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {buckets}")
        if len(sorted_lowers) != len(sorted_uppers):
            raise ValueError("bound lists must have equal lengths")
        self.count = len(sorted_lowers)
        self.buckets = buckets
        self.lower_bounds = self._equi_depth(sorted_lowers)
        self.upper_bounds = self._equi_depth(sorted_uppers)
        # The derived-column histogram behind range-duration pricing:
        # equi-depth over ``upper - lower``.  Durations need *paired*
        # bounds, which the two sorted marginals cannot recover, so
        # sources hand them in explicitly; ``None`` (a boundary-only
        # source) degrades duration_fraction() to 1.0.
        if sorted_durations is None:
            self.duration_bounds = None
        else:
            self.duration_bounds = self._equi_depth(sorted_durations)

    @classmethod
    def from_records(
        cls, records: Sequence[IntervalRecord],
        buckets: int = DEFAULT_BUCKETS,
    ) -> "BoundSummary":
        """Summarise ``(lower, upper, id)`` records (one sorting pass)."""
        lowers = sorted(r[0] for r in records)
        uppers = sorted(r[1] for r in records)
        durations = sorted(r[1] - r[0] for r in records)
        return cls(lowers, uppers, buckets, sorted_durations=durations)

    @classmethod
    def from_boundaries(
        cls,
        count: int,
        lower_bounds: Sequence[int],
        upper_bounds: Sequence[int],
        buckets: int = DEFAULT_BUCKETS,
        duration_bounds: Optional[Sequence[int]] = None,
    ) -> "BoundSummary":
        """Build a summary from precomputed quantile boundaries.

        For statistics sources that compute the equi-depth boundaries
        themselves (the sqlite backend's ``NTILE`` aggregation) instead
        of handing over full sorted value lists.
        """
        if buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {buckets}")
        summary = cls.__new__(cls)
        summary.count = count
        summary.buckets = buckets
        summary.lower_bounds = list(lower_bounds)
        summary.upper_bounds = list(upper_bounds)
        if duration_bounds is None:
            summary.duration_bounds = None
        else:
            summary.duration_bounds = list(duration_bounds)
        return summary

    def _equi_depth(self, values: Sequence[int]) -> list[int]:
        """Quantile boundaries q_0..q_B of a sorted value list."""
        if not values:
            return []
        if len(values) <= self.buckets:
            return list(values)
        last = len(values) - 1
        return [values[(i * last) // self.buckets]
                for i in range(self.buckets + 1)]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @staticmethod
    def _cdf(boundaries: list[int], value: int) -> float:
        """P(X <= value) from quantile boundaries, linearly interpolated."""
        if not boundaries:
            return 0.0
        if value < boundaries[0]:
            return 0.0
        if value >= boundaries[-1]:
            return 1.0
        bucket_count = len(boundaries) - 1
        index = bisect_right(boundaries, value) - 1
        left = boundaries[index]
        right = boundaries[index + 1]
        within = (value - left) / (right - left) if right > left else 1.0
        return (index + within) / bucket_count

    def cdf_lower(self, value: int) -> float:
        """P(lower <= value)."""
        return self._cdf(self.lower_bounds, value)

    def cdf_upper(self, value: int) -> float:
        """P(upper <= value)."""
        return self._cdf(self.upper_bounds, value)

    def intersecting(self, lower: int, upper: int) -> float:
        """Expected number of summarised intervals meeting ``[lower, upper]``.

        The exact identity for l <= u (the two exclusions cannot overlap):
        ``r = n - #{lower > u} - #{upper < l}``.
        """
        if self.count == 0:
            return 0.0
        lower_gt_u = self.count * (1.0 - self.cdf_lower(upper))
        upper_lt_l = self.count * self.cdf_upper(lower - 1)
        return max(0.0, self.count - lower_gt_u - upper_lt_l)

    def duration_fraction(self, dmin: int, dmax: int) -> float:
        """P(dmin <= upper - lower <= dmax) from the duration histogram.

        The selectivity factor behind range-duration pricing.  A summary
        built without durations (boundary-only sources that predate the
        histogram) returns 1.0 -- the band is priced as non-selective,
        never under-estimated to zero.
        """
        if not self.duration_bounds:
            return 1.0
        return max(0.0, self._cdf(self.duration_bounds, dmax)
                   - self._cdf(self.duration_bounds, dmin - 1))

    def point_lower(self, value: int) -> float:
        """Estimated mass of ``lower == value`` (one quantile-width step)."""
        return max(0.0, self.cdf_lower(value) - self.cdf_lower(value - 1))

    def point_upper(self, value: int) -> float:
        """Estimated mass of ``upper == value`` (one quantile-width step)."""
        return max(0.0, self.cdf_upper(value) - self.cdf_upper(value - 1))

    def relation_count(self, relation: str, lower: int, upper: int) -> float:
        """Expected intervals standing in ``relation`` to ``[lower, upper]``.

        Per-relation selectivity from the two bound marginals alone:

        * ``before``/``after`` are CDF prefix masses (``#{upper < l}`` /
          ``#{lower > u}``) -- exact up to histogram resolution;
        * the equality-pinning relations (``meets``, ``starts``,
          ``equals``, ...) get quantile-width point masses of the pinned
          bound.  Their strict side conditions are dropped: on proper
          intervals they are implied at the pinned bound, and the
          planner needs order-of-magnitude fidelity, not unbiasedness;
        * the containment/overlap relations multiply the two marginal
          masses (an independence approximation) clamped by their
          candidate-range intersection count, which is an upper bound
          by construction.
        """
        n = self.count
        if n == 0:
            return 0.0
        if relation == "intersects":
            return self.intersecting(lower, upper)
        if relation == "stab":
            return self.intersecting(lower, lower)
        if relation == "before":
            return n * self.cdf_upper(lower - 1)
        if relation == "after":
            return n * (1.0 - self.cdf_lower(upper))
        if relation == "meets":
            return n * self.point_upper(lower)
        if relation == "met_by":
            return n * self.point_lower(upper)
        if relation in ("starts", "started_by"):
            return n * self.point_lower(lower)
        if relation in ("finishes", "finished_by"):
            return n * self.point_upper(upper)
        if relation == "equals":
            return n * min(self.point_lower(lower), self.point_upper(upper))
        if relation == "during":
            mass = (1.0 - self.cdf_lower(lower)) * self.cdf_upper(upper - 1)
            return min(n * mass, self.intersecting(lower, upper))
        if relation == "contains":
            mass = self.cdf_lower(lower - 1) * (1.0 - self.cdf_upper(upper))
            return min(n * mass, self.intersecting(lower, lower))
        if relation == "overlaps":
            ends_inside = max(
                0.0, self.cdf_upper(upper - 1) - self.cdf_upper(lower))
            mass = self.cdf_lower(lower - 1) * ends_inside
            return min(n * mass, self.intersecting(lower, lower))
        if relation == "overlapped_by":
            starts_inside = max(
                0.0, self.cdf_lower(upper - 1) - self.cdf_lower(lower))
            mass = starts_inside * (1.0 - self.cdf_upper(upper))
            return min(n * mass, self.intersecting(upper, upper))
        raise ValueError(f"unknown relation {relation!r}")

    def extent(self) -> tuple[Optional[int], Optional[int]]:
        """``(floor, ceiling)``: smallest lower / largest upper boundary."""
        floor = self.lower_bounds[0] if self.lower_bounds else None
        ceiling = self.upper_bounds[-1] if self.upper_bounds else None
        return floor, ceiling

    def _mean(
        self, boundaries: list[int], func: Callable[[int], float]
    ) -> float:
        """Bucket-weighted mean of ``func`` over one bound distribution.

        Equi-depth boundaries carry equal probability mass per bucket, so
        the trapezoid over consecutive boundaries integrates ``func``
        against the empirical distribution; small relations keep every
        value, making the mean exact.
        """
        if not boundaries:
            return 0.0
        if len(boundaries) == 1:
            return func(boundaries[0])
        if self.count <= self.buckets:
            return sum(func(v) for v in boundaries) / len(boundaries)
        samples = [func(v) for v in boundaries]
        bucket_count = len(boundaries) - 1
        return sum((samples[i] + samples[i + 1]) / 2.0
                   for i in range(bucket_count)) / bucket_count

    def mean_over_lowers(self, func: Callable[[int], float]) -> float:
        """E[func(X)] with X drawn from the lower-bound distribution."""
        return self._mean(self.lower_bounds, func)

    def mean_over_uppers(self, func: Callable[[int], float]) -> float:
        """E[func(X)] with X drawn from the upper-bound distribution."""
        return self._mean(self.upper_bounds, func)


def expected_join_pairs(outer: BoundSummary, inner: BoundSummary) -> float:
    """Expected equi-overlap pair count by histogram convolution.

    Averages the per-probe intersection identity over the outer side's
    bound distributions: a pair ``(r, s)`` exists iff ``s.lower <= r.upper``
    and ``s.upper >= r.lower``, so the expected count is ``n_R * n_S``
    times the mean started-by-``r.upper`` probability minus the mean
    ended-before-``r.lower`` probability.
    """
    if outer.count == 0 or inner.count == 0:
        return 0.0
    started = outer.mean_over_uppers(inner.cdf_lower)
    ended = outer.mean_over_lowers(lambda l: inner.cdf_upper(l - 1))
    return max(0.0, outer.count * inner.count * (started - ended))


def expected_predicate_pairs(
    outer: Sequence[IntervalRecord],
    inner: BoundSummary,
    pred,
    sample: int = TRANSIENT_SAMPLE,
) -> float:
    """Expected predicate-join pair count from the inner marginals.

    Samples the outer side and averages the inner side's per-relation
    selectivity of the predicate's *inverse* (the stored record is the
    subject of each probe's question): before/after reduce to CDF prefix
    masses, the equality-pinning relations to quantile-width masses --
    exactly :meth:`BoundSummary.relation_count` per sampled probe.
    """
    if not outer or inner.count == 0:
        return 0.0
    inverse = pred.inverse
    estimator = getattr(inverse, "estimator", None)
    step = max(1, len(outer) // sample)
    chosen = outer[::step]
    if estimator is not None:
        # Compiled families price each sampled probe through their own
        # hook (range_duration: a probe outside the duration band
        # contributes exactly zero pairs).
        total = sum(max(0.0, estimator(inner, lower, upper))
                    for lower, upper, _ in chosen)
    else:
        total = sum(inner.relation_count(inverse.name, lower, upper)
                    for lower, upper, _ in chosen)
    return total / len(chosen) * len(outer)


def predicate_probe_statistics(
    outer: Sequence[IntervalRecord],
    inner: BoundSummary,
    backbone: VirtualBackbone,
    inverse,
    sample: int = TRANSIENT_SAMPLE,
) -> tuple[float, float]:
    """``(avg transient entries, total candidate rows)`` of predicate probes.

    The index path of a predicate join scans the *inverse* relation's
    candidate range per probe; this prices those scans by sampling the
    probes: the backbone is walked (pure arithmetic) over each sampled
    candidate range, and the candidate row count comes from the inner
    side's intersection identity over the same range.
    """
    if not outer or inner.count == 0:
        return 0.0, 0.0
    floor, ceiling = inner.extent()
    step = max(1, len(outer) // sample)
    chosen = outer[::step]
    transient = 0.0
    rows = 0.0
    for lower, upper, _ in chosen:
        candidate = inverse.candidates(lower, upper, floor, ceiling)
        if candidate is None:
            continue
        rows += inner.intersecting(candidate[0], candidate[1])
        if not backbone.is_empty:
            transient += collect_query_nodes(
                backbone, candidate[0], candidate[1]).total_entries
    scale = len(outer) / len(chosen)
    return transient / len(chosen), rows * scale


@dataclass
class QueryEstimate:
    """The optimizer-facing prediction for one intersection query."""

    result_count: float
    selectivity: float
    transient_entries: int
    index_probes: int
    logical_reads: float
    physical_reads: float

    def cheaper_than_full_scan(self, table_blocks: int) -> bool:
        """The plan-choice predicate: index plan vs full relation scan."""
        return self.logical_reads < table_blocks


@dataclass
class JoinStrategyCost:
    """Predicted cost of evaluating the join with one strategy."""

    strategy: str
    logical_reads: float
    physical_reads: float
    frame_cost: float

    def as_dict(self) -> dict:
        """Flat dict for benchmark reports."""
        return {
            "strategy": self.strategy,
            "logical_reads": round(self.logical_reads, 1),
            "physical_reads": round(self.physical_reads, 1),
            "frame_cost": round(self.frame_cost, 1),
        }


@dataclass
class JoinEstimate:
    """The planner-facing prediction for one interval equi-overlap join.

    ``result_count`` is the convolved pair-count estimate; ``index`` and
    ``sweep`` price the two executable strategies.  :attr:`choice` is the
    planner's verdict: the strategy with fewer predicted physical reads,
    Python-frame cost breaking ties -- physical block accesses are the
    paper's figure of merit, frames the substrate's.
    """

    outer_n: int
    inner_n: int
    result_count: float
    index: JoinStrategyCost
    sweep: JoinStrategyCost

    @property
    def choice(self) -> str:
        """Name of the predicted-cheaper strategy."""
        if self.index.physical_reads != self.sweep.physical_reads:
            if self.index.physical_reads < self.sweep.physical_reads:
                return self.index.strategy
            return self.sweep.strategy
        if self.index.frame_cost <= self.sweep.frame_cost:
            return self.index.strategy
        return self.sweep.strategy

    @property
    def chosen(self) -> JoinStrategyCost:
        """The cost row of the predicted-cheaper strategy."""
        if self.choice == self.index.strategy:
            return self.index
        return self.sweep

    def as_dict(self) -> dict:
        """Nested dict for benchmark reports and harness rows."""
        return {
            "choice": self.choice,
            "outer_n": self.outer_n,
            "inner_n": self.inner_n,
            "result_count": round(self.result_count, 1),
            "index": self.index.as_dict(),
            "sweep": self.sweep.as_dict(),
        }


def _index_join_cost(
    probes: int,
    avg_transient: float,
    pairs: float,
    height: int,
    leaf_capacity: int,
    leaf_blocks: float,
    internal_blocks: float,
    cache_blocks: int,
    cache_residency: float,
) -> JoinStrategyCost:
    """Price the index-nested-loop join against an RI-tree.

    Logical reads follow Section 4.4 per probe; physical reads split the
    index into its upper levels (shared across probes, discounted by the
    cache-residency factor and capped at the internal block count -- the
    handful of non-leaf pages is LRU-resident for the whole batch) and
    its leaves (two-regime LRU: leaf sets within the cache are read at
    most once, larger ones pay a locality-damped steady-state miss rate).
    """
    descent = max(1, height)
    per_leaf = max(1, leaf_capacity)
    scans = probes * avg_transient
    result_leaves = pairs / per_leaf
    logical = scans * descent + result_leaves
    cold_fraction = 1.0 - cache_residency
    internal = min(scans * (descent - 1) * cold_fraction, internal_blocks)
    leaf_misses = _lru_block_misses(
        touches=scans + result_leaves,
        yao_accesses=scans * SCAN_LEAF_DISTINCT + result_leaves,
        blocks=leaf_blocks,
        cache_blocks=cache_blocks,
    )
    frames = (probes * INDEX_FRAMES_PER_PROBE
              + scans * INDEX_FRAMES_PER_SCAN
              + result_leaves * INDEX_FRAMES_PER_LEAF)
    return JoinStrategyCost(
        strategy="index-nested-loop",
        logical_reads=logical,
        physical_reads=internal + leaf_misses,
        frame_cost=frames,
    )


def _lru_block_misses(
    touches: float, yao_accesses: float, blocks: float, cache_blocks: int
) -> float:
    """Two-regime LRU miss estimate over one block set.

    The physical model of :func:`_index_join_cost`, factored for reuse
    by the predicate join's heap accesses: a Yao distinct-block estimate
    for the cold phase (``yao_accesses`` clustered accesses over
    ``blocks``), then -- only when the set outgrows the cache -- a
    locality-damped steady-state miss rate on the remaining touches.
    """
    blocks = max(1.0, blocks)
    distinct = blocks * (1.0 - (1.0 - 1.0 / blocks) ** max(yao_accesses, 0.0))
    if blocks <= cache_blocks:
        return min(touches, distinct)
    miss_rate = (blocks - cache_blocks) / blocks
    steady = max(0.0, touches - distinct) * miss_rate * LEAF_MISS_LOCALITY
    return min(touches, distinct + steady)


def _index_predicate_join_cost(
    probes: int,
    avg_transient: float,
    candidate_rows: float,
    height: int,
    leaf_capacity: int,
    leaf_blocks: float,
    internal_blocks: float,
    cache_blocks: int,
    cache_residency: float,
    table_blocks: int,
) -> JoinStrategyCost:
    """Price the index path of a predicate join against an RI-tree.

    The same descent/leaf model as :func:`_index_join_cost`, applied to
    the *inverse* relation's candidate ranges, plus the refinement's
    table access by rowid: the candidate rows of one probe are few and
    scattered (sparse candidate sets pay roughly one heap page per row)
    or span whole ranges (dense sets saturate the heap) -- a Yao
    distinct-block estimate over the base relation covers both regimes.
    """
    descent = max(1, height)
    per_leaf = max(1, leaf_capacity)
    scans = probes * avg_transient
    candidate_leaves = candidate_rows / per_leaf
    blocks_t = float(max(table_blocks, 1))
    heap_touches = blocks_t * (
        1.0 - (1.0 - 1.0 / blocks_t) ** max(candidate_rows, 0.0))
    logical = scans * descent + candidate_leaves + heap_touches
    cold_fraction = 1.0 - cache_residency
    internal = min(scans * (descent - 1) * cold_fraction, internal_blocks)
    leaf_misses = _lru_block_misses(
        touches=scans + candidate_leaves,
        yao_accesses=scans * PREDICATE_SCAN_LEAF_DISTINCT + candidate_leaves,
        blocks=leaf_blocks,
        cache_blocks=cache_blocks,
    )
    heap_misses = _lru_block_misses(
        touches=heap_touches,
        yao_accesses=heap_touches,
        blocks=blocks_t,
        cache_blocks=cache_blocks,
    )
    frames = (probes * INDEX_FRAMES_PER_PROBE
              + scans * INDEX_FRAMES_PER_SCAN
              + candidate_leaves * INDEX_FRAMES_PER_LEAF
              + candidate_rows * INDEX_FRAMES_PER_CANDIDATE)
    return JoinStrategyCost(
        strategy="index-nested-loop",
        logical_reads=logical,
        physical_reads=internal + leaf_misses + heap_misses,
        frame_cost=frames,
    )


def _sweep_join_cost(
    outer_n: int, inner_n: int, pairs: float, block_size: int
) -> JoinStrategyCost:
    """Price the plane sweep: two sequential input scans plus merge work.

    The sweep is index-free; its engine I/O is exactly one heap scan per
    relation (each block read once, cold), and its Python work is the
    endpoint merge -- a few frames per input record plus one per emitted
    pair.
    """
    scan_blocks = (heap_scan_blocks(outer_n, 3, block_size)
                   + heap_scan_blocks(inner_n, 3, block_size))
    frames = (SWEEP_FRAMES_PER_INPUT * (outer_n + inner_n)
              + SWEEP_FRAMES_PER_PAIR * pairs)
    return JoinStrategyCost(
        strategy="sweep",
        logical_reads=float(scan_blocks),
        physical_reads=float(scan_blocks),
        frame_cost=frames,
    )


def average_transient_entries(
    backbone: VirtualBackbone,
    probes: Sequence[IntervalRecord],
    sample: int = TRANSIENT_SAMPLE,
) -> float:
    """Mean transient-entry count of a probe workload, by sampling.

    Walks the virtual backbone (pure arithmetic, Section 4.2: "causing no
    I/O effort") for up to ``sample`` evenly spaced probes.
    """
    if backbone.is_empty or not probes:
        return 0.0
    step = max(1, len(probes) // sample)
    chosen = probes[::step]
    total = sum(collect_query_nodes(backbone, lower, upper).total_entries
                for lower, upper, _ in chosen)
    return total / len(chosen)


@dataclass
class StoreGeometry:
    """Physical shape of one backend's indexes, as the planner sees it.

    The strategy cost formulas above are engine-generic in these inputs;
    a statistics provider realises them either from the live B+-trees of
    the simulated engine or from sqlite's page counts, so the identical
    :class:`RITreeCostModel` plans over either backend.
    """

    height: int
    leaf_capacity: int
    leaf_blocks: float
    internal_blocks: float
    cache_blocks: int
    block_size: int
    table_blocks: int


#: Cache size handed to fully memory-resident geometries: larger than
#: any block count the model will ever see, so the LRU terms stay in the
#: everything-fits regime.
MEMORY_CACHE_BLOCKS = 1 << 30


def memory_resident_geometry(
    count: int, partitions: int, block_size: int = DEFAULT_BLOCK_SIZE
) -> StoreGeometry:
    """The planner-side shape of a main-memory store (no real blocks).

    Partitions stand in for leaves (one "descent" reaches them -- there
    is no tree to walk), the cache is effectively unbounded, and the
    virtual table-block count only feeds relative refinement terms.  A
    memory store's cost model still zeroes the resulting physical reads
    (see :class:`repro.core.hint.HintCostModel`); this geometry merely
    keeps the shared formulas well-defined and comparable.
    """
    per_partition = max(1, -(-max(count, 1) // max(1, partitions)))
    return StoreGeometry(
        height=1,
        leaf_capacity=per_partition,
        leaf_blocks=float(max(1, partitions)),
        internal_blocks=0.0,
        cache_blocks=MEMORY_CACHE_BLOCKS,
        block_size=block_size,
        table_blocks=heap_scan_blocks(count, 3, block_size),
    )


class _EngineTreeStatistics:
    """Statistics source over an engine-backed :class:`RITree`."""

    sources = ("table", "indexes")

    def __init__(self, tree: RITree) -> None:
        self.tree = tree

    @property
    def backbone(self) -> VirtualBackbone:
        return self.tree.backbone

    def summarize(self, source: str, buckets: int) -> BoundSummary:
        """Collect both bound distributions from the chosen source.

        ``"table"`` scans the stored relation once; ``"indexes"`` scans
        the two composite indexes instead and collects their bound
        columns (entries are ``(node, bound, id)``, so the bound sits at
        position 1).
        """
        now = getattr(self.tree, "_now", None)

        def effective(upper: int) -> int:
            # Now-relative sentinel rows contribute their *effective*
            # duration; infinite rows keep the sentinel (open-ended).
            if now is not None and upper == UPPER_NOW:
                return now
            return upper

        if source == "indexes" and self.tree.table.indexes:
            # Index entries arrive in (node, bound, id) order; the bound
            # columns re-sort into the two global distributions, and the
            # id column pairs them back up for the duration histogram.
            lower_entries = list(
                self.tree.table.index("lowerIndex").tree.scan_all())
            upper_entries = list(
                self.tree.table.index("upperIndex").tree.scan_all())
            lowers = [entry[1] for entry in lower_entries]
            uppers = [entry[1] for entry in upper_entries]
            lower_of = {entry[2]: entry[1] for entry in lower_entries}
            durations = sorted(
                effective(entry[1]) - lower_of[entry[2]]
                for entry in upper_entries if entry[2] in lower_of)
        else:
            lowers = []
            uppers = []
            durations = []
            for _rowid, row in self.tree.table.scan():
                lowers.append(row[1])
                uppers.append(row[2])
                durations.append(effective(row[2]) - row[1])
            durations.sort()
        lowers.sort()
        uppers.sort()
        return BoundSummary(lowers, uppers, buckets,
                            sorted_durations=durations)

    def geometry(self, count: int) -> StoreGeometry:
        """Read the realised index shape off the live B+-trees."""
        index = self.tree.table.indexes["lowerIndex"].tree
        db = self.tree.db
        return StoreGeometry(
            height=index.height,
            leaf_capacity=index.leaf_capacity,
            leaf_blocks=2.0 * math.ceil(
                max(count, 1) / max(1, index.leaf_capacity)),
            internal_blocks=2.0 * index_internal_blocks(
                count, index.leaf_capacity, index.internal_capacity),
            cache_blocks=db.pool.capacity,
            block_size=db.disk.block_size,
            table_blocks=self.tree.table.heap.page_count,
        )


class _SQLStoreStatistics:
    """Statistics source over a sqlite3-backed RI-tree.

    Histograms come from SQL aggregation (one ``NTILE`` window pass per
    bound column -- the quantile computation runs inside the engine, not
    in Python), geometry from sqlite's page counts: ``PRAGMA page_size``
    and ``PRAGMA cache_size`` fix the block model, and the ``dbstat``
    virtual table supplies real per-index page counts where the build
    ships it (falling back to the analytic B+-tree layout otherwise).
    Reserved Section 4.6 fork rows carry sentinel bounds and are
    excluded from the statistics.
    """

    sources = ("table", "indexes")

    def __init__(self, store) -> None:
        self.store = store

    @property
    def backbone(self) -> VirtualBackbone:
        return self.store.backbone

    @property
    def _where(self) -> str:
        from .temporal import FORK_INF, FORK_NOW
        return f'"node" NOT IN ({FORK_INF}, {FORK_NOW})'

    def summarize(self, source: str, buckets: int) -> BoundSummary:
        # Both sources read the same persistent rows on this backend
        # (sqlite's indexes are covering); the distinction only matters
        # on the simulated engine.
        conn, name = self.store.conn, self.store.name
        count = conn.execute(
            f'SELECT COUNT(*) FROM {name} WHERE {self._where}'
        ).fetchone()[0]
        if count == 0:
            return BoundSummary([], [], buckets)
        if count <= buckets:
            lowers = [row[0] for row in conn.execute(
                f'SELECT "lower" FROM {name} WHERE {self._where} '
                f'ORDER BY "lower"')]
            uppers = [row[0] for row in conn.execute(
                f'SELECT "upper" FROM {name} WHERE {self._where} '
                f'ORDER BY "upper"')]
            durations = [row[0] for row in conn.execute(
                f'SELECT "upper" - "lower" FROM {name} WHERE {self._where} '
                f'ORDER BY "upper" - "lower"')]
            return BoundSummary(lowers, uppers, buckets,
                                sorted_durations=durations)
        return BoundSummary.from_boundaries(
            count,
            self._quantiles(conn, name, '"lower"', buckets),
            self._quantiles(conn, name, '"upper"', buckets),
            buckets,
            duration_bounds=self._quantiles(
                conn, name, '"upper" - "lower"', buckets),
        )

    def _quantiles(
        self, conn, name: str, expr: str, buckets: int
    ) -> list[int]:
        """Equi-depth boundaries q_0..q_B of one bound expression, in SQL.

        ``expr`` is a quoted column or an arithmetic expression over the
        bound columns (the duration histogram passes
        ``'"upper" - "lower"'``); one NTILE window pass either way.
        """
        floor = conn.execute(
            f'SELECT MIN({expr}) FROM {name} WHERE {self._where}'
        ).fetchone()[0]
        tiles = conn.execute(
            f'SELECT MAX("b") FROM (SELECT {expr} AS "b", '
            f'NTILE(?) OVER (ORDER BY {expr}) AS "t" '
            f'FROM {name} WHERE {self._where}) GROUP BY "t" ORDER BY "t"',
            (buckets,))
        return [floor] + [row[0] for row in tiles]

    def geometry(self, count: int) -> StoreGeometry:
        conn, name = self.store.conn, self.store.name
        page_size = conn.execute("PRAGMA page_size").fetchone()[0]
        height, leaf_capacity = index_geometry(count, 3, page_size)
        entry_bytes = _INT_BYTES * 4
        internal_capacity = max(
            4, (page_size - PAGE_HEADER_SIZE - 8) // (entry_bytes + 8))
        internal_blocks = 2.0 * index_internal_blocks(
            count, leaf_capacity, internal_capacity)
        leaf_blocks = 2.0 * math.ceil(max(count, 1) / leaf_capacity)
        table_blocks = heap_scan_blocks(count, 4, page_size)
        try:
            pages = dict(conn.execute(
                "SELECT name, COUNT(*) FROM dbstat "
                "WHERE name IN (?, ?, ?) GROUP BY name",
                (name, f"{name}_lowerIndex", f"{name}_upperIndex")))
        except sqlite3.Error:
            pages = {}
        index_pages = (pages.get(f"{name}_lowerIndex", 0)
                       + pages.get(f"{name}_upperIndex", 0))
        if index_pages:
            leaf_blocks = max(float(index_pages) - internal_blocks, 2.0)
        if pages.get(name):
            table_blocks = pages[name]
        cache = conn.execute("PRAGMA cache_size").fetchone()[0]
        if cache >= 0:
            cache_blocks = cache
        else:
            cache_blocks = max(1, (-cache * 1024) // page_size)
        return StoreGeometry(
            height=height,
            leaf_capacity=leaf_capacity,
            leaf_blocks=leaf_blocks,
            internal_blocks=internal_blocks,
            cache_blocks=cache_blocks,
            block_size=page_size,
            table_blocks=table_blocks,
        )


class RITreeCostModel:
    """Bound-histogram cost model over a loaded :class:`RITree`.

    Parameters
    ----------
    tree:
        The tree to model.  Histograms are built by :meth:`refresh`.
    buckets:
        Histogram resolution; estimation error is O(n / buckets) counts.
    cache_residency:
        Fraction of non-leaf index reads expected to hit the buffer cache
        (0 = cold, 1 = fully cached upper levels).  The harness's
        batch-with-warm-cache protocol sits near 0.9.
    source:
        Where :meth:`refresh` reads the bounds from: ``"table"`` scans the
        base relation, ``"indexes"`` reads the bound columns out of the
        already-loaded composite indexes (lowerIndex/upperIndex) -- the
        planner's choice, since a served tree always has them in place.
    """

    def __init__(
        self,
        tree: Optional[RITree] = None,
        buckets: int = DEFAULT_BUCKETS,
        cache_residency: float = 0.9,
        source: str = "table",
        statistics=None,
    ) -> None:
        if statistics is None:
            if tree is None:
                raise ValueError("need a tree or an explicit statistics "
                                 "source")
            statistics = _EngineTreeStatistics(tree)
        if buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {buckets}")
        if not 0.0 <= cache_residency <= 1.0:
            raise ValueError(f"cache residency {cache_residency} not in [0,1]")
        if source not in statistics.sources:
            raise ValueError(f"unknown statistics source {source!r}")
        self.stats = statistics
        self.tree = getattr(statistics, "tree", None)
        #: The modelled store, whichever backend it lives on.
        if self.tree is not None:
            self.store = self.tree
        else:
            self.store = getattr(statistics, "store", None)
        self.buckets = buckets
        self.cache_residency = cache_residency
        self.source = source
        self.summary: BoundSummary = BoundSummary([], [], buckets)
        self.refresh()

    @classmethod
    def from_sql_tree(
        cls, store, buckets: int = DEFAULT_BUCKETS,
        cache_residency: float = 0.9,
    ) -> "RITreeCostModel":
        """Model a :class:`~repro.sql.SQLRITree` -- the planner port.

        The cost model is engine-generic in its inputs; this constructor
        realises them from sqlite: bound histograms through SQL
        aggregation (``NTILE`` equi-depth quantiles), index geometry and
        cache size from sqlite's page counts (``dbstat`` /
        ``PRAGMA``).  The returned model exposes the identical planning
        surface (:meth:`estimate`, :meth:`estimate_join`,
        :meth:`choose_join_strategy`), so the ``auto`` join strategy
        plans on the sqlite backend exactly as it does on the simulated
        engine.
        """
        return cls(buckets=buckets, cache_residency=cache_residency,
                   statistics=_SQLStoreStatistics(store))

    # ------------------------------------------------------------------
    # statistics maintenance (ANALYZE)
    # ------------------------------------------------------------------
    def refresh(self, source: Optional[str] = None) -> None:
        """Rebuild both bound histograms -- the engine's ``ANALYZE`` pass.

        On the simulated engine, ``source="table"`` scans the stored
        relation once while ``source="indexes"`` reads the bound columns
        out of the two composite indexes; the sqlite backend aggregates
        in SQL either way.  Run after bulk loads or heavy update
        batches; omitting ``source`` keeps the constructor's.
        """
        chosen = source or self.source
        if chosen not in self.stats.sources:
            raise ValueError(f"unknown statistics source {chosen!r}")
        self.summary = self.stats.summarize(chosen, self.buckets)

    @property
    def _count(self) -> int:
        """Summarised interval count (kept for extension-hook stability)."""
        return self.summary.count

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def estimate_result_count(self, lower: int, upper: int) -> float:
        """Expected number of intersecting intervals for ``[lower, upper]``."""
        validate_interval(lower, upper)
        return self.summary.intersecting(lower, upper)

    def estimate(self, lower: int, upper: int) -> QueryEstimate:
        """Full plan estimate for one intersection query."""
        validate_interval(lower, upper)
        result_count = self.estimate_result_count(lower, upper)
        backbone = self.stats.backbone
        if backbone.is_empty:
            transient = 0
        else:
            transient = collect_query_nodes(
                backbone, lower, upper).total_entries
        geometry = self.stats.geometry(self.summary.count)
        descent = max(1, geometry.height)
        per_leaf = max(1, geometry.leaf_capacity)
        probes = transient
        logical = probes * descent + result_count / per_leaf
        # Upper index levels are shared across probes and mostly cached.
        cold_fraction = 1.0 - self.cache_residency
        physical = (probes * (1 + (descent - 1) * cold_fraction)
                    + result_count / per_leaf)
        count = self.summary.count
        return QueryEstimate(
            result_count=result_count,
            selectivity=result_count / count if count else 0.0,
            transient_entries=transient,
            index_probes=probes,
            logical_reads=logical,
            physical_reads=physical,
        )

    def estimate_query(
        self, predicate, lower: int, upper: Optional[int] = None
    ) -> QueryEstimate:
        """Plan estimate for one *predicate* query (Section 4.5 pricing).

        ``intersects`` reduces exactly to :meth:`estimate`; ``stab`` is
        the degenerate point query.  The relational predicates are
        priced over their *candidate* intersection range -- that is what
        the compiled plan scans, plus the table access by rowid for the
        refinement -- while ``result_count``/``selectivity`` report the
        per-relation selectivity from the bound marginals
        (:meth:`BoundSummary.relation_count`).
        """
        pred = compile_query(predicate)
        if upper is None:
            upper = lower
        validate_interval(lower, upper)
        if pred.name == "intersects":
            return self.estimate(lower, upper)
        if pred.name == "stab":
            return self.estimate(lower, lower)
        estimator = getattr(pred, "estimator", None)
        if estimator is not None:
            # A compiled family prices its own parameter selectivity
            # (range_duration: intersection mass times the duration
            # histogram's band fraction).
            result_count = max(0.0, estimator(self.summary, lower, upper))
        else:
            result_count = self.summary.relation_count(
                pred.name, lower, upper)
        count = self.summary.count
        floor, ceiling = self.summary.extent()
        candidate = pred.candidates(lower, upper, floor, ceiling)
        if candidate is None or count == 0:
            return QueryEstimate(
                result_count=0.0, selectivity=0.0, transient_entries=0,
                index_probes=0, logical_reads=0.0, physical_reads=0.0,
            )
        candidate_rows = self.summary.intersecting(candidate[0], candidate[1])
        backbone = self.stats.backbone
        if backbone.is_empty:
            transient = 0
        else:
            transient = collect_query_nodes(
                backbone, candidate[0], candidate[1]).total_entries
        geometry = self.stats.geometry(count)
        descent = max(1, geometry.height)
        per_leaf = max(1, geometry.leaf_capacity)
        rows_per_block = max(1.0, count / max(geometry.table_blocks, 1))
        heap_touches = candidate_rows / rows_per_block
        logical = (transient * descent + candidate_rows / per_leaf
                   + heap_touches)
        cold_fraction = 1.0 - self.cache_residency
        physical = (transient * (1 + (descent - 1) * cold_fraction)
                    + candidate_rows / per_leaf + heap_touches)
        return QueryEstimate(
            result_count=result_count,
            selectivity=result_count / count,
            transient_entries=transient,
            index_probes=transient,
            logical_reads=logical,
            physical_reads=physical,
        )

    # ------------------------------------------------------------------
    # join estimation (the planner path)
    # ------------------------------------------------------------------
    def estimate_join(
        self, outer: Sequence[IntervalRecord], predicate=None
    ) -> JoinEstimate:
        """Predict the join of ``outer`` probes against the modelled tree.

        The tree's stored relation is the inner side; its histograms (and
        virtual backbone) are already in place, so only the outer side is
        summarised here.  Returns a :class:`JoinEstimate` whose
        :attr:`~JoinEstimate.choice` names the predicted-cheaper strategy.

        A join ``predicate`` prices the predicate join instead: the pair
        count comes from the per-relation marginals
        (:func:`expected_predicate_pairs`) and the index strategy is
        priced over the inverse relation's candidate ranges plus the
        refinement's table accesses (:func:`predicate_probe_statistics`).
        """
        pred = resolve_join_predicate(predicate)
        geometry = self.stats.geometry(self.summary.count)
        if pred is None:
            outer_summary = BoundSummary.from_records(outer, self.buckets)
            pairs = expected_join_pairs(outer_summary, self.summary)
            avg_transient = average_transient_entries(
                self.stats.backbone, outer)
            index_cost = _index_join_cost(
                probes=len(outer),
                avg_transient=avg_transient,
                pairs=pairs,
                height=geometry.height,
                leaf_capacity=geometry.leaf_capacity,
                leaf_blocks=geometry.leaf_blocks,
                internal_blocks=geometry.internal_blocks,
                cache_blocks=geometry.cache_blocks,
                cache_residency=self.cache_residency,
            )
        else:
            pairs = expected_predicate_pairs(outer, self.summary, pred)
            avg_transient, candidate_rows = predicate_probe_statistics(
                outer, self.summary, self.stats.backbone, pred.inverse)
            index_cost = _index_predicate_join_cost(
                probes=len(outer),
                avg_transient=avg_transient,
                candidate_rows=candidate_rows,
                height=geometry.height,
                leaf_capacity=geometry.leaf_capacity,
                leaf_blocks=geometry.leaf_blocks,
                internal_blocks=geometry.internal_blocks,
                cache_blocks=geometry.cache_blocks,
                cache_residency=self.cache_residency,
                table_blocks=geometry.table_blocks,
            )
        sweep_cost = _sweep_join_cost(
            outer_n=len(outer),
            inner_n=self.summary.count,
            pairs=pairs,
            block_size=geometry.block_size,
        )
        return JoinEstimate(
            outer_n=len(outer),
            inner_n=self.summary.count,
            result_count=pairs,
            index=index_cost,
            sweep=sweep_cost,
        )

    def choose_join_strategy(
        self,
        outer: Sequence[IntervalRecord],
        inner: Optional[Sequence[IntervalRecord]] = None,
        predicate=None,
    ) -> JoinEstimate:
        """Plan the join of ``outer`` against ``inner`` (or the tree).

        With ``inner`` omitted the modelled tree's stored relation is the
        inner side (:meth:`estimate_join`); passing explicit ``inner``
        records plans an ad-hoc join with the engine-free estimator
        instead, sharing this model's resolution and residency settings.
        """
        if inner is None:
            return self.estimate_join(outer, predicate=predicate)
        geometry = self.stats.geometry(self.summary.count)
        return choose_join_strategy(
            outer, inner, buckets=self.buckets,
            cache_residency=self.cache_residency,
            block_size=geometry.block_size,
            cache_blocks=geometry.cache_blocks,
            predicate=predicate,
        )

    @property
    def table_blocks(self) -> int:
        """Base-relation size in blocks (the full-scan alternative cost)."""
        return self.stats.geometry(self.summary.count).table_blocks


def choose_join_strategy(
    outer: Sequence[IntervalRecord],
    inner: Sequence[IntervalRecord],
    buckets: int = DEFAULT_BUCKETS,
    cache_residency: float = 0.9,
    block_size: int = DEFAULT_BLOCK_SIZE,
    cache_blocks: int = DEFAULT_CACHE_BLOCKS,
    predicate=None,
) -> JoinEstimate:
    """Plan an interval join from raw records, without touching an engine.

    The engine-free planner: both sides are summarised into bound
    histograms, a virtual backbone is populated by registering the inner
    records (pure arithmetic -- no relation, no I/O), and the index
    geometry an RI-tree *would* realise under the given block size is
    computed analytically.  Used by the ``auto`` join strategy before it
    decides whether building/probing an index is worth it at all.  A
    join ``predicate`` plans the predicate join per relation, exactly as
    :meth:`RITreeCostModel.estimate_join` does on a loaded tree.
    """
    pred = resolve_join_predicate(predicate)
    for lower, upper, _ in outer:
        validate_interval(lower, upper)
    for lower, upper, _ in inner:
        validate_interval(lower, upper)
    outer_summary = BoundSummary.from_records(outer, buckets)
    inner_summary = BoundSummary.from_records(inner, buckets)
    backbone = VirtualBackbone()
    for lower, upper, _ in inner:
        backbone.register(lower, upper)
    height, leaf_capacity = index_geometry(len(inner), 3, block_size)
    entry_bytes = _INT_BYTES * 4
    internal_capacity = max(
        4, (block_size - PAGE_HEADER_SIZE - 8) // (entry_bytes + 8))
    leaf_blocks = 2.0 * math.ceil(max(len(inner), 1) / leaf_capacity)
    internal_blocks = 2.0 * index_internal_blocks(
        len(inner), leaf_capacity, internal_capacity)
    if pred is None:
        pairs = expected_join_pairs(outer_summary, inner_summary)
        avg_transient = average_transient_entries(backbone, outer)
        index_cost = _index_join_cost(
            probes=len(outer),
            avg_transient=avg_transient,
            pairs=pairs,
            height=height,
            leaf_capacity=leaf_capacity,
            leaf_blocks=leaf_blocks,
            internal_blocks=internal_blocks,
            cache_blocks=cache_blocks,
            cache_residency=cache_residency,
        )
    else:
        pairs = expected_predicate_pairs(outer, inner_summary, pred)
        avg_transient, candidate_rows = predicate_probe_statistics(
            outer, inner_summary, backbone, pred.inverse)
        index_cost = _index_predicate_join_cost(
            probes=len(outer),
            avg_transient=avg_transient,
            candidate_rows=candidate_rows,
            height=height,
            leaf_capacity=leaf_capacity,
            leaf_blocks=leaf_blocks,
            internal_blocks=internal_blocks,
            cache_blocks=cache_blocks,
            cache_residency=cache_residency,
            table_blocks=heap_scan_blocks(len(inner), 4, block_size),
        )
    sweep_cost = _sweep_join_cost(
        outer_n=len(outer),
        inner_n=len(inner),
        pairs=pairs,
        block_size=block_size,
    )
    return JoinEstimate(
        outer_n=len(outer),
        inner_n=len(inner),
        result_count=pairs,
        index=index_cost,
        sweep=sweep_cost,
    )
