"""Optimizer cost model for RI-tree intersection queries (paper Section 5).

"With a cost model registered at the optimizer, the server is able to
generate efficient execution plans for queries on interval data types."
This module supplies that component: selectivity estimation from bound
histograms plus an I/O model of the Figure 10 access plan, so a query
optimizer can decide between the RI-tree plan and alternatives (full scan,
other predicates first) without executing anything.

Estimation model
----------------
An interval intersects ``[l, u]`` iff ``lower <= u`` and ``upper >= l``, so

    r(l, u)  =  n - #{lower > u} - #{upper < l}

which needs only the two marginal cumulative distributions of the bounds.
The model keeps equi-depth histograms of both, refreshed from the index
itself (the leftmost/rightmost columns of the two composite indexes).

The I/O model follows Section 4.4: each of the O(h) transient entries costs
one index descent of ``ceil(log_b n)`` block reads, and the result blocks
add ``r / entries_per_leaf``; a buffer-cache residency factor discounts the
repeated upper-level reads, matching the warm-cache behaviour of the
benchmark harness.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from .interval import validate_interval
from .ritree import RITree
from .transient import collect_query_nodes

#: Default number of histogram buckets (equi-depth boundaries kept).
DEFAULT_BUCKETS = 128


@dataclass
class QueryEstimate:
    """The optimizer-facing prediction for one intersection query."""

    result_count: float
    selectivity: float
    transient_entries: int
    index_probes: int
    logical_reads: float
    physical_reads: float

    def cheaper_than_full_scan(self, table_blocks: int) -> bool:
        """The plan-choice predicate: index plan vs full relation scan."""
        return self.logical_reads < table_blocks


class RITreeCostModel:
    """Bound-histogram cost model over a loaded :class:`RITree`.

    Parameters
    ----------
    tree:
        The tree to model.  Histograms are built by :meth:`refresh`.
    buckets:
        Histogram resolution; estimation error is O(n / buckets) counts.
    cache_residency:
        Fraction of non-leaf index reads expected to hit the buffer cache
        (0 = cold, 1 = fully cached upper levels).  The harness's
        batch-with-warm-cache protocol sits near 0.9.
    """

    def __init__(self, tree: RITree, buckets: int = DEFAULT_BUCKETS,
                 cache_residency: float = 0.9) -> None:
        if buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {buckets}")
        if not 0.0 <= cache_residency <= 1.0:
            raise ValueError(f"cache residency {cache_residency} not in [0,1]")
        self.tree = tree
        self.buckets = buckets
        self.cache_residency = cache_residency
        self._lower_bounds: list[int] = []
        self._upper_bounds: list[int] = []
        self._count = 0
        self.refresh()

    # ------------------------------------------------------------------
    # statistics maintenance (ANALYZE)
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Rebuild both bound histograms from the stored relation.

        The scan reads the base table once -- the engine equivalent of an
        ``ANALYZE`` pass; run it after bulk loads or heavy update batches.
        """
        lowers: list[int] = []
        uppers: list[int] = []
        for _rowid, row in self.tree.table.scan():
            lowers.append(row[1])
            uppers.append(row[2])
        lowers.sort()
        uppers.sort()
        self._count = len(lowers)
        self._lower_bounds = self._equi_depth(lowers)
        self._upper_bounds = self._equi_depth(uppers)

    def _equi_depth(self, values: list[int]) -> list[int]:
        """Quantile boundaries q_0..q_B of a sorted value list."""
        if not values:
            return []
        if len(values) <= self.buckets:
            return list(values)
        last = len(values) - 1
        return [values[(i * last) // self.buckets]
                for i in range(self.buckets + 1)]

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def estimate_result_count(self, lower: int, upper: int) -> float:
        """Expected number of intersecting intervals for ``[lower, upper]``."""
        validate_interval(lower, upper)
        if self._count == 0:
            return 0.0
        # Exact identity for l <= u (the two exclusions cannot overlap):
        #   r = n - #{lower > u} - #{upper < l}
        lower_gt_u = self._count * (1.0 - self._cdf(self._lower_bounds,
                                                    upper))
        upper_lt_l = self._count * self._cdf(self._upper_bounds, lower - 1)
        return max(0.0, self._count - lower_gt_u - upper_lt_l)

    def _cdf(self, boundaries: list[int], value: int) -> float:
        """P(X <= value) from quantile boundaries, linearly interpolated."""
        if not boundaries:
            return 0.0
        if value < boundaries[0]:
            return 0.0
        if value >= boundaries[-1]:
            return 1.0
        bucket_count = len(boundaries) - 1
        index = bisect_right(boundaries, value) - 1
        left = boundaries[index]
        right = boundaries[index + 1]
        within = (value - left) / (right - left) if right > left else 1.0
        return (index + within) / bucket_count

    def estimate(self, lower: int, upper: int) -> QueryEstimate:
        """Full plan estimate for one intersection query."""
        validate_interval(lower, upper)
        result_count = self.estimate_result_count(lower, upper)
        if self.tree.backbone.is_empty:
            transient = 0
        else:
            transient = collect_query_nodes(
                self.tree.backbone, lower, upper).total_entries
        index = self.tree.table.indexes["lowerIndex"].tree
        descent = max(1, index.height)
        per_leaf = max(1, index.leaf_capacity)
        probes = transient
        logical = probes * descent + result_count / per_leaf
        # Upper index levels are shared across probes and mostly cached.
        cold_fraction = 1.0 - self.cache_residency
        physical = (probes * (1 + (descent - 1) * cold_fraction)
                    + result_count / per_leaf)
        return QueryEstimate(
            result_count=result_count,
            selectivity=result_count / self._count if self._count else 0.0,
            transient_entries=transient,
            index_probes=probes,
            logical_reads=logical,
            physical_reads=physical,
        )

    @property
    def table_blocks(self) -> int:
        """Base-relation size in blocks (the full-scan alternative cost)."""
        return self.tree.table.heap.page_count
