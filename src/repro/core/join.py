"""Interval equi-overlap joins: ``R JOIN S ON overlaps(r, s)``.

The paper positions the RI-tree as a general *relational access method*
for intervals; interval joins are the workload where the index-vs-scan
trade-off actually bites.  This module provides one join API with three
interchangeable strategies:

* :class:`IndexNestedLoopJoin` -- drives an :class:`~repro.core.access.
  AccessMethod` (by default an RI-tree built over the inner relation) with
  one intersection probe per outer tuple.  Probes execute through the
  batched scan pipeline of the Figure 10 plan, so the join's logical and
  physical I/O is accounted through exactly the same
  :class:`~repro.engine.stats.IoStats` counters as the Figure 13 queries.
* :class:`SweepJoin` -- an endpoint-sorted merge join in the style of
  Piatov et al.'s cache-efficient plane sweep: both inputs are sorted by
  lower bound once, then a single merge pass maintains one *gapless*
  active list per side (arrays compacted by swap-with-last removal, never
  leaving holes).  It is the index-free competitor: O(n log n) sort plus
  O(output + purges) merge work, but it must consume both inputs in full.
* :class:`NestedLoopJoin` -- the quadratic brute-force oracle, kept only
  to falsify the other two (tests and the benchmark's parity check).
* :class:`AutoJoin` -- the planner: consults the Section 5 cost model
  (:mod:`repro.core.costmodel`) to predict per-strategy physical I/O and
  Python-frame work, then dispatches to the predicted-cheaper executable
  strategy.  The decision is kept on :attr:`AutoJoin.last_decision` so
  harness rows and benchmark reports can surface predicted-vs-measured.

All strategies emit the identical duplicate-free pair set
``{(r_id, s_id) | r overlaps s}`` over closed integer intervals, where
``[a, b]`` and ``[c, d]`` overlap iff ``a <= d and c <= b`` (shared
endpoints count, as everywhere else in this reproduction).  Every
strategy additionally accepts any join predicate of
:mod:`repro.core.predicates` (``interval_join(..., predicate="before")``):
the sweep evaluates Allen-relation joins in the style of Piatov et al.'s
extended-predicate sweeps, the index strategies probe the store with the
predicate's *inverse* relation (``join_pairs(..., predicate=...)``), and
``auto`` plans index-vs-sweep per relation through the cost model's
predicate selectivities.

Example
-------
>>> outer = [(0, 10, 1), (20, 30, 2)]
>>> inner = [(5, 25, 7), (40, 50, 8)]
>>> sorted(interval_join(outer, inner, strategy="sweep"))
[(1, 7), (2, 7)]
>>> sorted(interval_join(outer, inner, strategy="index"))
[(1, 7), (2, 7)]
>>> sorted(interval_join(outer, inner, strategy="nested-loop"))
[(1, 7), (2, 7)]
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence

from bisect import bisect_left, bisect_right

from ..engine.database import Database
from .access import AccessMethod, IntervalRecord
from .interval import validate_interval
from .predicates import resolve_join_predicate as _resolve_join_predicate
from .ritree import RITree

#: One join result: (outer interval id, inner interval id).
JoinPair = tuple[int, int]


class JoinStrategy(ABC):
    """One way to evaluate the interval equi-overlap join.

    Strategies are stateless with respect to the inputs: every call to
    :meth:`pairs`/:meth:`count` evaluates the join from scratch, so a
    benchmark can measure repeated runs.  ``outer`` and ``inner`` are
    sequences of ``(lower, upper, id)`` records with finite integer
    bounds; ids must be unique per side (they are per side in every
    workload generator, mirroring relational keys).
    """

    #: Strategy name used in benchmark output rows.
    strategy_name: str = "abstract"

    @abstractmethod
    def pairs(
        self,
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
    ) -> list[JoinPair]:
        """All ``(outer_id, inner_id)`` pairs of overlapping intervals."""

    def count(
        self,
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
    ) -> int:
        """Size of :meth:`pairs` (same evaluation unless overridden)."""
        return len(self.pairs(outer, inner))


class NestedLoopJoin(JoinStrategy):
    """Brute-force nested loop: the O(|R| * |S|) correctness oracle.

    Accepts any join predicate (``predicate=``, an
    :class:`~repro.core.predicates.IntervalPredicate` or name): every
    outer/inner combination is tested against the predicate's defining
    endpoint formula, with the outer record as the subject.
    """

    strategy_name = "nested-loop"

    def __init__(self, predicate=None) -> None:
        self.predicate = _resolve_join_predicate(predicate)

    def pairs(
        self,
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
    ) -> list[JoinPair]:
        holds = self.predicate.holds if self.predicate is not None \
            else (lambda s, e, l, u: s <= u and e >= l)
        results: list[JoinPair] = []
        for r_lower, r_upper, r_id in outer:
            validate_interval(r_lower, r_upper)
            for s_lower, s_upper, s_id in inner:
                if holds(r_lower, r_upper, s_lower, s_upper):
                    results.append((r_id, s_id))
        return results


class SweepJoin(JoinStrategy):
    """Endpoint-sorted plane-sweep merge join with gapless active lists.

    Both inputs are sorted by lower bound, then merged in one pass.  When
    a tuple starts, it is joined against the opposite side's *active
    list* -- the tuples whose interval has started but not provably ended.
    Entries whose upper bound lies before the sweep position are purged
    lazily during that probe by swap-with-last removal, keeping the lists
    gapless (dense arrays, no tombstones) as in Piatov et al.'s
    endpoint-based join.  Each pair is emitted exactly once: at the start
    event of its later-starting tuple (outer first on ties).

    Allen-relation join predicates (``predicate=``) are supported in the
    style of Piatov et al.'s extended-predicate sweeps: every relation
    except ``before``/``after`` implies closed-interval overlap, so those
    pairs are produced by the same single merge pass with the defining
    endpoint formula applied at emission (active lists then carry full
    records); ``before``/``after`` pairs are enumerated from the sorted
    endpoint arrays directly (one prefix of outers ordered by upper bound
    per inner tuple), with the count computed by bisection alone.
    """

    strategy_name = "sweep"

    def __init__(self, predicate=None) -> None:
        self.predicate = _resolve_join_predicate(predicate)

    def pairs(
        self,
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
    ) -> list[JoinPair]:
        results: list[JoinPair] = []
        if self.predicate is None:
            self._sweep(outer, inner, results.append)
        elif self.predicate.name in ("before", "after"):
            self._sorted_disjoint(outer, inner, self.predicate.name,
                                  results.append)
        else:
            self._sweep_refined(outer, inner, self.predicate.holds,
                                results.append)
        return results

    def count(
        self,
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
    ) -> int:
        if self.predicate is not None \
                and self.predicate.name in ("before", "after"):
            return self._count_disjoint(outer, inner, self.predicate.name)
        counter = _PairCounter()
        if self.predicate is None:
            self._sweep(outer, inner, counter)
        else:
            self._sweep_refined(outer, inner, self.predicate.holds, counter)
        return counter.count

    @staticmethod
    def _sorted_disjoint(
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
        relation: str,
        emit: Callable[[JoinPair], None],
    ) -> None:
        """Enumerate before/after pairs from the sorted endpoint arrays.

        ``r before s`` iff ``r.upper < s.lower``: with outers sorted by
        upper bound, each inner tuple's partners are exactly one prefix,
        found by bisection -- O(n log n) sort plus O(output) emission.
        ``after`` mirrors it on the opposite bounds.
        """
        for lower, upper, _ in outer:
            validate_interval(lower, upper)
        for lower, upper, _ in inner:
            validate_interval(lower, upper)
        if relation == "before":
            by_bound = sorted((upper, r_id) for _, upper, r_id in outer)
            bounds = [upper for upper, _ in by_bound]
            for s_lower, _s_upper, s_id in inner:
                for k in range(bisect_left(bounds, s_lower)):
                    emit((by_bound[k][1], s_id))
        else:
            by_bound = sorted((lower, r_id) for lower, _, r_id in outer)
            bounds = [lower for lower, _ in by_bound]
            for _s_lower, s_upper, s_id in inner:
                for k in range(bisect_right(bounds, s_upper), len(by_bound)):
                    emit((by_bound[k][1], s_id))

    @staticmethod
    def _count_disjoint(
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
        relation: str,
    ) -> int:
        """Size of the before/after join by bisection, O((n+m) log n)."""
        for lower, upper, _ in outer:
            validate_interval(lower, upper)
        for lower, upper, _ in inner:
            validate_interval(lower, upper)
        if relation == "before":
            uppers = sorted(upper for _, upper, _ in outer)
            return sum(bisect_left(uppers, s_lower)
                       for s_lower, _, _ in inner)
        lowers = sorted(lower for lower, _, _ in outer)
        return sum(len(lowers) - bisect_right(lowers, s_upper)
                   for _, s_upper, _ in inner)

    @staticmethod
    def _sweep_refined(
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
        holds: Callable[[int, int, int, int], bool],
        emit: Callable[[JoinPair], None],
    ) -> None:
        """The overlap sweep with a predicate refinement at emission.

        Complete for every Allen relation other than before/after: such a
        pair shares at least one coordinate, so it overlaps under closed
        semantics and the standard merge visits it exactly once.  Active
        lists carry full records (the refinement needs both bounds), kept
        gapless by the same swap-with-last purge.
        """
        for lower, upper, _ in outer:
            validate_interval(lower, upper)
        for lower, upper, _ in inner:
            validate_interval(lower, upper)
        r_events = sorted(outer)
        s_events = sorted(inner)
        n_r, n_s = len(r_events), len(s_events)
        r_active: list[IntervalRecord] = []
        s_active: list[IntervalRecord] = []
        i = j = 0
        while i < n_r or j < n_s:
            if j >= n_s or (i < n_r and r_events[i][0] <= s_events[j][0]):
                record = r_events[i]
                i += 1
                lower, upper, r_id = record
                k = 0
                while k < len(s_active):
                    s_lower, s_upper, s_id = s_active[k]
                    if s_upper < lower:
                        s_active[k] = s_active[-1]
                        s_active.pop()
                    else:
                        if holds(lower, upper, s_lower, s_upper):
                            emit((r_id, s_id))
                        k += 1
                r_active.append(record)
            else:
                record = s_events[j]
                j += 1
                lower, upper, s_id = record
                k = 0
                while k < len(r_active):
                    r_lower, r_upper, r_id = r_active[k]
                    if r_upper < lower:
                        r_active[k] = r_active[-1]
                        r_active.pop()
                    else:
                        if holds(r_lower, r_upper, lower, upper):
                            emit((r_id, s_id))
                        k += 1
                s_active.append(record)

    @staticmethod
    def _sweep(
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
        emit: Callable[[JoinPair], None],
    ) -> None:
        for lower, upper, _ in outer:
            validate_interval(lower, upper)
        for lower, upper, _ in inner:
            validate_interval(lower, upper)
        r_events = sorted(outer)
        s_events = sorted(inner)
        n_r, n_s = len(r_events), len(s_events)
        # Gapless active lists: parallel (upper, id) arrays per side.
        r_uppers: list[int] = []
        r_ids: list[int] = []
        s_uppers: list[int] = []
        s_ids: list[int] = []
        i = j = 0
        while i < n_r or j < n_s:
            # Outer goes first on lower-bound ties, so tied pairs are
            # emitted (once) when the inner tuple probes the outer list.
            if j >= n_s or (i < n_r and r_events[i][0] <= s_events[j][0]):
                lower, upper, r_id = r_events[i]
                i += 1
                k = 0
                while k < len(s_uppers):
                    if s_uppers[k] < lower:
                        # Expired: swap-with-last keeps the list gapless.
                        s_uppers[k] = s_uppers[-1]
                        s_ids[k] = s_ids[-1]
                        s_uppers.pop()
                        s_ids.pop()
                    else:
                        emit((r_id, s_ids[k]))
                        k += 1
                r_uppers.append(upper)
                r_ids.append(r_id)
            else:
                lower, upper, s_id = s_events[j]
                j += 1
                k = 0
                while k < len(r_uppers):
                    if r_uppers[k] < lower:
                        r_uppers[k] = r_uppers[-1]
                        r_ids[k] = r_ids[-1]
                        r_uppers.pop()
                        r_ids.pop()
                    else:
                        emit((r_ids[k], s_id))
                        k += 1
                s_uppers.append(upper)
                s_ids.append(s_id)


class _PairCounter:
    """Callable sink counting emitted pairs without materialising them."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def __call__(self, pair: JoinPair) -> None:
        self.count += 1


class IndexNestedLoopJoin(JoinStrategy):
    """Index-nested-loop join probing an access method over the inner side.

    Either wraps a pre-built method (``method=``, e.g. an existing
    :class:`~repro.core.temporal.TemporalRITree` serving queries) whose
    stored intervals then *are* the inner relation, or builds one per
    evaluation with ``factory`` (default: an RI-tree on a fresh
    paper-geometry engine).  Probing goes through
    :meth:`~repro.core.access.AccessMethod.join_pairs` /
    :meth:`~repro.core.access.AccessMethod.join_count`, which the RI-tree
    specialises to consume whole leaf slices of its batched scan plan.

    Join predicates (``predicate=``) ride the same hooks: the store
    probes the *inverse* relation's candidate range per outer tuple and
    refines with the direct formula, so Allen-relation joins share the
    index path's I/O accounting.
    """

    strategy_name = "index-nested-loop"

    def __init__(
        self,
        method: Optional[AccessMethod] = None,
        factory: Callable[[Database], AccessMethod] = RITree,
        predicate=None,
    ) -> None:
        self.method = method
        self.factory = factory
        self.predicate = _resolve_join_predicate(predicate)

    def _inner_method(self, inner: Sequence[IntervalRecord]) -> AccessMethod:
        if self.method is not None:
            return self.method
        method = self.factory(Database())
        method.bulk_load(inner)
        method.db.flush()
        return method

    def pairs(
        self,
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
    ) -> list[JoinPair]:
        return self._inner_method(inner).join_pairs(
            outer, predicate=self.predicate)

    def count(
        self,
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
    ) -> int:
        return self._inner_method(inner).join_count(
            outer, predicate=self.predicate)


class AutoJoin(JoinStrategy):
    """Cost-model-driven strategy choice: the join planner.

    Every evaluation first *plans*: with a pre-built inner ``method``, the
    method's own cost model is consulted (histograms refreshed from its
    already-loaded composite indexes); otherwise the engine-free
    :func:`~repro.core.costmodel.choose_join_strategy` prices both
    executable strategies from the raw record sequences.  The join is then
    dispatched to the predicted-cheaper strategy -- index-nested-loop or
    sweep -- and the full :class:`~repro.core.costmodel.JoinEstimate` is
    retained on :attr:`last_decision` for reporting.

    When a pre-built method stores the inner relation and the planner
    picks the sweep, the inner records are recovered through
    :meth:`~repro.core.access.AccessMethod.stored_records`; methods that
    cannot enumerate their intervals fall back to the index join, and
    :attr:`last_dispatch` records the strategy that actually ran (which
    on that fallback path differs from ``last_decision.choice``).

    A join ``predicate`` (any Allen relation) is planned per relation --
    the cost model prices the index path over the inverse relation's
    candidate ranges against the sweep -- and handed to whichever
    strategy wins.
    """

    strategy_name = "auto"

    def __init__(
        self,
        method: Optional[AccessMethod] = None,
        factory: Callable[[Database], AccessMethod] = RITree,
        predicate=None,
    ) -> None:
        self.method = method
        self.factory = factory
        self.predicate = _resolve_join_predicate(predicate)
        #: The JoinEstimate backing the most recent dispatch (None until
        #: the first pairs()/count() call).
        self.last_decision = None
        #: Name of the strategy the most recent evaluation actually ran.
        #: Equals ``last_decision.choice`` except on the
        #: cannot-enumerate fallback, where the planner's sweep pick
        #: degrades to index-nested-loop.
        self.last_dispatch: Optional[str] = None

    def decide(self, outer, inner):
        """Plan the join and return the planner's cost estimate."""
        self._plan(outer, inner)
        return self.last_decision

    def _plan(
        self,
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
    ) -> tuple[JoinStrategy, Sequence[IntervalRecord]]:
        """Estimate, decide, and resolve the records the winner consumes.

        With a prebuilt ``method``, its stored relation *is* the inner
        side -- both strategies then evaluate the same join, whatever the
        planner picks (the ``inner`` argument is ignored, exactly as
        :class:`IndexNestedLoopJoin` ignores it).  The stored relation is
        recovered at most once per evaluation.
        """
        from .costmodel import choose_join_strategy

        stored: Optional[list[IntervalRecord]] = None
        if self.method is not None:
            model = self.method.cost_model()
            if model is not None:
                estimate = model.estimate_join(
                    outer, predicate=self.predicate)
            else:
                stored = self.method.stored_records()
                estimate = choose_join_strategy(
                    outer, inner if stored is None else stored,
                    predicate=self.predicate,
                )
        else:
            estimate = choose_join_strategy(
                outer, inner, predicate=self.predicate)
        self.last_decision = estimate
        strategy: JoinStrategy
        records = inner
        if estimate.choice == SweepJoin.strategy_name:
            if self.method is None:
                strategy = SweepJoin(predicate=self.predicate)
            else:
                if stored is None:
                    stored = self.method.stored_records()
                if stored is not None:
                    strategy = SweepJoin(predicate=self.predicate)
                    records = stored
                else:
                    # The method cannot enumerate its intervals: keep
                    # probing it, and report the dispatch truthfully.
                    strategy = IndexNestedLoopJoin(
                        method=self.method, factory=self.factory,
                        predicate=self.predicate,
                    )
        else:
            strategy = IndexNestedLoopJoin(
                method=self.method, factory=self.factory,
                predicate=self.predicate,
            )
        self.last_dispatch = strategy.strategy_name
        return strategy, records

    def pairs(
        self,
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
    ) -> list[JoinPair]:
        strategy, records = self._plan(outer, inner)
        return strategy.pairs(outer, records)

    def count(
        self,
        outer: Sequence[IntervalRecord],
        inner: Sequence[IntervalRecord],
    ) -> int:
        strategy, records = self._plan(outer, inner)
        return strategy.count(outer, records)


#: The join strategies by benchmark/CLI name.
JOIN_STRATEGIES: dict[str, Callable[[], JoinStrategy]] = {
    NestedLoopJoin.strategy_name: NestedLoopJoin,
    SweepJoin.strategy_name: SweepJoin,
    IndexNestedLoopJoin.strategy_name: IndexNestedLoopJoin,
    AutoJoin.strategy_name: AutoJoin,
    # Convenience alias used by examples and the CLI.
    "index": IndexNestedLoopJoin,
}

#: Canonical strategy names for user-facing messages: one entry per
#: distinct strategy, aliases deduplicated.
STRATEGY_NAMES: tuple[str, ...] = tuple(sorted(
    {cls.strategy_name for cls in JOIN_STRATEGIES.values()}
))


def interval_join(
    outer: Sequence[IntervalRecord],
    inner: Sequence[IntervalRecord],
    *legacy,
    strategy: str = "sweep",
    predicate=None,
) -> list[JoinPair]:
    """Join two interval relations with a strategy chosen by name.

    ``strategy`` is one of ``"sweep"`` (default), ``"index"`` /
    ``"index-nested-loop"``, ``"nested-loop"``, or ``"auto"`` (the
    cost-model planner picking between index and sweep); all return the
    same pair set, differing only in evaluation cost.  Both options are
    keyword-only; the pre-v8 positional ``strategy`` still works behind
    a :class:`DeprecationWarning` shim.

    ``predicate`` generalises the join condition beyond overlap: any
    Allen relation (name or :class:`~repro.core.predicates.
    IntervalPredicate`), applied with the outer record as the subject --
    ``predicate="during"`` pairs each outer interval with the inner
    intervals it lies strictly inside.  Every strategy evaluates every
    join predicate: the sweep by extended-predicate merge, the index
    strategies by probing the inverse relation's candidate ranges, and
    ``auto`` by planning index-vs-sweep per relation.
    """
    if legacy:
        if len(legacy) > 1:
            raise TypeError(
                "interval_join() takes two relations; pass strategy= "
                "and predicate= as keywords")
        if strategy != "sweep":
            raise TypeError(
                "interval_join() got the strategy both positionally "
                "and as strategy=")
        import warnings

        warnings.warn(
            "passing the strategy to interval_join() positionally is "
            "deprecated; use interval_join(outer, inner, strategy=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        strategy = legacy[0]
    try:
        chosen = JOIN_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown join strategy {strategy!r}; expected one of "
            f"{list(STRATEGY_NAMES)} (or the 'index' alias for "
            f"'index-nested-loop')"
        ) from None
    pred = _resolve_join_predicate(predicate)
    if pred is None:
        return chosen().pairs(outer, inner)
    return chosen(predicate=pred).pairs(outer, inner)
