"""Structured store verification: the ``verify()`` report types.

Every :class:`~repro.core.access.IntervalStore` backend can be asked to
check its own structural invariants -- B+-tree key order and fill factors
on the simulated engine, ``PRAGMA integrity_check`` and the Figure 2
covering indexes on sqlite, fork-node consistency and the reserved
Section 4.6 rows on both.  The result is not a bare boolean but a
:class:`VerificationReport`: which checks ran, and every
:class:`VerificationIssue` they found, so a failing store names *all* of
its problems at once (crash-recovery tests diff the full report, not a
single flag).
"""

from __future__ import annotations

from typing import Optional


class VerificationIssue:
    """One violated invariant found by a store's ``verify()``.

    Attributes
    ----------
    code:
        Stable machine-readable identifier (e.g. ``"fork-node-mismatch"``).
    message:
        Human-readable description of the violation.
    context:
        Optional structured payload pinning the violation to a row, node
        or index (e.g. ``{"index": "lowerIndex", "rowid": 17}``).
    """

    __slots__ = ("code", "message", "context")

    def __init__(
        self, code: str, message: str, context: Optional[dict] = None
    ) -> None:
        self.code = code
        self.message = message
        self.context = dict(context) if context else {}

    def as_dict(self) -> dict:
        """Plain-dict form for JSON reports."""
        return {"code": self.code, "message": self.message, "context": self.context}

    def __repr__(self) -> str:
        return f"VerificationIssue({self.code!r}, {self.message!r})"


class VerificationReport:
    """The outcome of one ``verify()`` pass over a store.

    Truthiness is :attr:`ok` -- ``if store.verify():`` reads naturally --
    but the report also records *which* checks ran (:attr:`checks`), so a
    clean report over zero checks cannot be mistaken for a thorough one.
    """

    __slots__ = ("store", "backend", "checks", "issues")

    def __init__(self, store: str, backend: str) -> None:
        self.store = store
        self.backend = backend
        self.checks: list[str] = []
        self.issues: list[VerificationIssue] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add_check(self, name: str) -> None:
        """Record that the named invariant class was examined."""
        if name not in self.checks:
            self.checks.append(name)

    def add_issue(
        self, code: str, message: str, context: Optional[dict] = None
    ) -> None:
        """Record one violation."""
        self.issues.append(VerificationIssue(code, message, context))

    # ------------------------------------------------------------------
    # outcome
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """True when every executed check passed."""
        return not self.issues

    def __bool__(self) -> bool:
        return self.ok

    def raise_for_issues(self) -> None:
        """Raise ``AssertionError`` describing every issue (test helper)."""
        if self.issues:
            detail = "; ".join(
                f"[{issue.code}] {issue.message}" for issue in self.issues
            )
            raise AssertionError(
                f"store {self.store!r} ({self.backend}) failed "
                f"verification: {detail}"
            )

    def as_dict(self) -> dict:
        """Plain-dict form for JSON reports (bench / CI artifacts)."""
        return {
            "store": self.store,
            "backend": self.backend,
            "ok": self.ok,
            "checks": list(self.checks),
            "issues": [issue.as_dict() for issue in self.issues],
        }

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.issues)} issue(s)"
        return (
            f"VerificationReport({self.store!r}, {self.backend!r}, "
            f"checks={len(self.checks)}, {status})"
        )


def verify_engine_tree(report: VerificationReport, tree, label: str) -> None:
    """Fold one simulated-engine B+-tree's violations into a report."""
    report.add_check(f"bptree:{label}")
    for problem in tree.violations():
        report.add_issue("bptree-invariant", problem, {"index": label})
