"""First-class interval query predicates, compiled per backend.

The paper's Section 4.5 observes that beyond the intersection predicate
"there are 13 more fine-grained temporal relationships between intervals
... also queries based on these specialized predicates are efficiently
supported by the Relational Interval Tree".  This module makes that
family a first-class part of the store API: ``intersects``, ``stab``,
and Allen's thirteen relations are value objects that every
:class:`~repro.core.access.IntervalStore` backend compiles to its own
plan --

* the simulated engine transforms the scan plan through the algorithms
  of :mod:`repro.core.topology` (path scans for bound-equality
  relations, candidate-range refinement for the rest);
* the sqlite backend rewrites the WHERE clause of the literal Figure 9
  statement: the transient tables are filled for the predicate's
  *candidate range* and the defining endpoint predicate is appended to
  both branches (:data:`IntervalPredicate.sql_refine`);
* any other store falls back to refining its enumerated records with
  the pure predicate (:meth:`IntervalPredicate.filter`), the oracle the
  compiled plans are tested against.

Semantics: a predicate relates a *subject* interval ``[s, e]`` (a stored
record, or the outer record of a join pair) to a *reference* interval
``[l, u]`` (the query interval, or the inner record).  ``holds(s, e, l,
u)`` is the defining endpoint formula; for Allen relations on proper
intervals it agrees with :func:`repro.core.topology.relate`.

The join strategies of :mod:`repro.core.join` accept these predicates
too (``interval_join(..., predicate="before")``), in the spirit of
Piatov et al.'s sweeps for extended Allen relation predicates.  For the
*index* strategies, every predicate also knows its :attr:`~
IntervalPredicate.inverse` relation (before/after, meets/met_by,
overlaps/overlapped_by, during/contains, starts/started_by,
finishes/finished_by; intersects and equals are self-inverse): probing a
store per outer tuple asks the *stored-subject* question, so the probe's
candidate range is the inverse relation's.  On proper intervals the
inverse identity ``p.holds(a, b, c, d) == p.inverse.holds(c, d, a, b)``
is exact (Allen's algebra); degenerate (point) intervals may break the
symmetry at shared endpoints, which is why the compiled join plans scan
the inverse's *candidate range* but refine with the direct formula.

Query families
--------------
The fifteen relations above take exactly one reference interval ``[l,
u]``.  Predicates with *extra* parameters -- the range-duration queries
of Ceccarello & Gamper ("overlaps the window AND duration within a
band") being the canonical example -- are modelled as
:class:`QueryFamily` objects: a named, open-ended family whose
:meth:`~QueryFamily.compile` binds a typed parameter bundle and returns
a :class:`CompiledQuery`.  A compiled query IS an
:class:`IntervalPredicate` (same ``holds`` / ``candidates`` /
``sql_refine`` surface, so every backend's existing compilation hook
runs it unchanged) plus the bundle itself: ``family_name`` and
``param_dict`` travel over the service wire, ``sql_binds`` merges the
extra bind parameters into the rewritten Figure 9 statements, and the
optional ``estimator`` hook lets the cost model price the family's
selectivity beyond the two-bound histograms.  The fifteen classic
relations are re-expressed as zero-parameter families in
:data:`FAMILIES`, so ``compile_query(name, params)`` is the single
resolution entry point for names, predicate objects, and parameterized
families alike.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from .interval import validate_interval

#: The defining endpoint formula: holds(s, e, l, u).
PredicateTest = Callable[[int, int, int, int], bool]

#: Candidate-range transform: (l, u, floor, ceiling) -> (lo, hi) or None.
#: ``floor``/``ceiling`` are the store's smallest lower / largest upper
#: bound (only ``before``/``after`` consult them); ``None`` means the
#: result is provably empty without touching the store.
CandidateRange = Callable[
    [int, int, Optional[int], Optional[int]], Optional[tuple[int, int]]]


@dataclass(frozen=True)
class IntervalPredicate:
    """One interval predicate as a backend-independent value object.

    ``holds`` is the ground truth; ``candidates`` maps the query to the
    intersection range whose result set provably contains every match
    (so any backend's intersection machinery can produce candidates);
    ``sql_refine`` is the residual WHERE fragment the sqlite backend
    appends to the Figure 9 statement (``None`` means the candidates
    are exact and no refinement is needed); ``inverse_name`` names the
    relation with subject and reference swapped (``None`` for ``stab``,
    which relates an interval to a point).
    """

    name: str
    holds: PredicateTest
    candidates: CandidateRange
    sql_refine: Optional[str]
    inverse_name: Optional[str] = None

    @property
    def inverse(self) -> "IntervalPredicate":
        """The subject-swapped relation: ``a p b`` iff ``b p.inverse a``.

        Exact on proper intervals; a join plan probing a store per outer
        tuple scans the inverse's candidate range (the stored record is
        the subject there) and refines with the direct formula.
        """
        if self.inverse_name is None:
            raise ValueError(f"predicate {self.name!r} has no inverse")
        return PREDICATES[self.inverse_name]

    def matches(self, subject: tuple[int, int], reference: tuple[int, int]
                ) -> bool:
        """Does ``subject`` stand in this relation to ``reference``?"""
        s, e = subject
        l, u = reference
        return self.holds(s, e, l, u)

    def filter(self, records: Sequence[tuple[int, int, int]],
               lower: int, upper: int) -> list[int]:
        """Refine ``(lower, upper, id)`` records by the pure predicate.

        The brute-force evaluation every compiled plan must agree with;
        also the generic fallback for stores without a native compile.
        """
        validate_interval(lower, upper)
        holds = self.holds
        return [interval_id for s, e, interval_id in records
                if holds(s, e, lower, upper)]


@dataclass(frozen=True)
class CompiledQuery(IntervalPredicate):
    """An :class:`IntervalPredicate` with a bound parameter bundle.

    Produced by :meth:`QueryFamily.compile`.  Because it *is* a
    predicate, every backend's compilation hook (`_query_relation`,
    the Figure 9 rewrite, the HINT partition filter, the router
    fan-out) runs it without modification; the extra fields carry what
    the classic fifteen relations never needed:

    ``family_name``/``params``
        the wire-format identity -- ``compile_query(family_name,
        param_dict)`` on the far side of the service protocol rebuilds
        an equivalent compiled query (``params`` is a tuple of
        ``(name, value)`` pairs so the object stays hashable).
    ``binds``
        extra named SQL bind parameters (e.g. ``:dmin``/``:dmax``)
        merged into the rewritten one-statement plans; exposed as a
        dict via :attr:`sql_binds`.
    ``inverse_factory``
        builds the subject-swapped compiled query (the classic
        relations resolve inverses by name, which a parameterized
        predicate cannot).
    ``estimator``
        optional cost-model hook ``estimator(summary, lower, upper)``
        returning the expected number of matching stored records for
        reference ``[lower, upper]``; lets
        :meth:`~repro.core.costmodel.RITreeCostModel.estimate_query`
        price parameter selectivity (duration bands) that the
        name-keyed histogram formulas cannot see.
    """

    family_name: str = ""
    params: tuple[tuple[str, int], ...] = ()
    binds: tuple[tuple[str, int], ...] = ()
    inverse_factory: Optional[Callable[[], "CompiledQuery"]] = None
    estimator: Optional[Callable[..., float]] = None
    #: Set when ``candidates`` consults the store's ``floor``/``ceiling``
    #: data-space extent (like before/after do); backends then resolve
    #: the extent before calling the transform.
    needs_extent: bool = False

    @property
    def param_dict(self) -> dict[str, int]:
        """The parameter bundle as a dict (service wire format)."""
        return dict(self.params)

    @property
    def sql_binds(self) -> dict[str, int]:
        """Extra named bind parameters for the rewritten SQL plans."""
        return dict(self.binds)

    @property
    def inverse(self) -> IntervalPredicate:
        if self.inverse_factory is not None:
            return self.inverse_factory()
        return IntervalPredicate.inverse.fget(self)


def _whole_query(l, u, floor, ceiling):
    return (l, u)


def _stab_lower(l, u, floor, ceiling):
    return (l, l)


def _stab_upper(l, u, floor, ceiling):
    return (u, u)


def _strictly_before(l, u, floor, ceiling):
    if floor is None or floor > l - 1:
        return None
    return (floor, l - 1)


def _strictly_after(l, u, floor, ceiling):
    if ceiling is None or u + 1 > ceiling:
        return None
    return (u + 1, ceiling)


#: The fifteen predicates of the store API.  Candidate-range soundness:
#: every relation except before/after forces the subject to intersect
#: the listed range (bound-equality and containment relations pin a
#: shared coordinate; ``during`` implies intersection with the query
#: itself), and before/after intersect the data-space envelope clipped
#: at the query bound -- exactly the transforms
#: :mod:`repro.core.topology` uses on the simulated engine.
PREDICATES: dict[str, IntervalPredicate] = {
    predicate.name: predicate for predicate in (
        IntervalPredicate(
            "intersects",
            lambda s, e, l, u: s <= u and e >= l,
            _whole_query, None, "intersects"),
        IntervalPredicate(
            "stab",
            lambda s, e, l, u: s <= l and e >= l,
            _stab_lower, None, None),
        IntervalPredicate(
            "before",
            lambda s, e, l, u: e < l,
            _strictly_before, 'i."upper" < :lower', "after"),
        IntervalPredicate(
            "after",
            lambda s, e, l, u: s > u,
            _strictly_after, 'i."lower" > :upper', "before"),
        IntervalPredicate(
            "meets",
            lambda s, e, l, u: e == l and s < l,
            _stab_lower, 'i."upper" = :lower AND i."lower" < :lower',
            "met_by"),
        IntervalPredicate(
            "met_by",
            lambda s, e, l, u: s == u and e > u,
            _stab_upper, 'i."lower" = :upper AND i."upper" > :upper',
            "meets"),
        IntervalPredicate(
            "overlaps",
            lambda s, e, l, u: s < l < e < u,
            _stab_lower,
            'i."lower" < :lower AND i."upper" > :lower '
            'AND i."upper" < :upper',
            "overlapped_by"),
        IntervalPredicate(
            "overlapped_by",
            lambda s, e, l, u: l < s < u < e,
            _stab_upper,
            'i."lower" > :lower AND i."lower" < :upper '
            'AND i."upper" > :upper',
            "overlaps"),
        IntervalPredicate(
            "during",
            lambda s, e, l, u: l < s and e < u,
            _whole_query, 'i."lower" > :lower AND i."upper" < :upper',
            "contains"),
        IntervalPredicate(
            "contains",
            lambda s, e, l, u: s < l and u < e,
            _stab_lower, 'i."lower" < :lower AND i."upper" > :upper',
            "during"),
        IntervalPredicate(
            "starts",
            lambda s, e, l, u: s == l and e < u,
            _stab_lower, 'i."lower" = :lower AND i."upper" < :upper',
            "started_by"),
        IntervalPredicate(
            "started_by",
            lambda s, e, l, u: s == l and e > u,
            _stab_lower, 'i."lower" = :lower AND i."upper" > :upper',
            "starts"),
        IntervalPredicate(
            "finishes",
            lambda s, e, l, u: e == u and s > l,
            _stab_upper, 'i."upper" = :upper AND i."lower" > :lower',
            "finished_by"),
        IntervalPredicate(
            "finished_by",
            lambda s, e, l, u: e == u and s < l,
            _stab_upper, 'i."upper" = :upper AND i."lower" < :lower',
            "finishes"),
        IntervalPredicate(
            "equals",
            lambda s, e, l, u: s == l and e == u,
            _stab_lower, 'i."lower" = :lower AND i."upper" = :upper',
            "equals"),
    )
}

#: The predicates meaningful as join predicates (``stab`` relates an
#: interval to a point, not to another interval).
JOIN_PREDICATES = tuple(name for name in PREDICATES if name != "stab")


@dataclass(frozen=True)
class QueryFamily:
    """A named, parameterized family of interval predicates.

    ``compile(**params)`` binds a typed parameter bundle and returns
    the concrete :class:`IntervalPredicate` (usually a
    :class:`CompiledQuery`) every backend then compiles natively.  The
    fifteen classic relations are zero-parameter families, so the
    family registry is the one open extension seam: a new query class
    registers a factory here and rides through every backend, the
    service wire, and the cost model without further per-layer work.
    """

    name: str
    parameters: tuple[str, ...]
    factory: Callable[..., IntervalPredicate]
    description: str = ""

    def compile(self, **params) -> IntervalPredicate:
        """Bind ``params`` and return the compiled predicate."""
        unknown = sorted(set(params) - set(self.parameters))
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {unknown} for query family "
                f"{self.name!r}; accepted parameters: "
                f"{list(self.parameters)}")
        return self.factory(**params)


#: Durations are at most ``UPPER_INF - lower`` (< 2**61); this stands
#: in for "no upper duration bound" while keeping the bundle integral
#: for the SQL binds and the service wire.
DURATION_UNBOUNDED = 1 << 62


def range_duration(dmin: int = 0,
                   dmax: Optional[int] = None) -> CompiledQuery:
    """Compile a range-duration query: intersection plus duration band.

    The subject ``[s, e]`` matches reference ``[l, u]`` iff it
    intersects the window *and* ``dmin <= e - s <= dmax`` (Ceccarello &
    Gamper's range-duration predicate).  Durations are evaluated on
    *effective* bounds everywhere: now-relative rows materialize the
    store clock, while still-open ``UPPER_INF`` rows keep the sentinel
    and therefore only match unbounded (``dmax=None``) bands.

    The candidate range is the whole query window -- duration is a
    derived column the RI-tree does not index, so every backend fetches
    the Figure 9/10 intersection candidates and refines with the band:
    the engine trees filter fetched leaf slices, sqlite appends the
    ``(upper - lower) BETWEEN :dmin AND :dmax`` fragment to both
    branches of the one-statement plan, HINT filters its partition
    slices.  The inverse (reference-subject) compiled query is exact at
    candidate time: a probe whose own duration misses the band is
    provably empty before touching the store.
    """
    if dmax is None:
        dmax = DURATION_UNBOUNDED
    dmin, dmax = int(dmin), int(dmax)
    if dmin > dmax:
        raise ValueError(
            f"empty duration band: dmin={dmin} exceeds dmax={dmax}")
    params = (("dmin", dmin), ("dmax", dmax))

    def _direct_estimate(summary, lower, upper):
        return (summary.relation_count("intersects", lower, upper)
                * summary.duration_fraction(dmin, dmax))

    def _inverse_estimate(summary, lower, upper):
        if dmin <= upper - lower <= dmax:
            return summary.relation_count("intersects", lower, upper)
        return 0.0

    def _inverse() -> CompiledQuery:
        return CompiledQuery(
            name=f"range_duration_by[{dmin},{dmax}]",
            holds=lambda s, e, l, u:
                s <= u and e >= l and dmin <= u - l <= dmax,
            candidates=lambda l, u, floor, ceiling:
                (l, u) if dmin <= u - l <= dmax else None,
            sql_refine=None,
            inverse_name=None,
            family_name="range_duration_by",
            params=params,
            binds=(),
            inverse_factory=lambda: range_duration(dmin, dmax),
            estimator=_inverse_estimate,
        )

    return CompiledQuery(
        name=f"range_duration[{dmin},{dmax}]",
        holds=lambda s, e, l, u:
            s <= u and e >= l and dmin <= e - s <= dmax,
        candidates=_whole_query,
        sql_refine='(i."upper" - i."lower") BETWEEN :dmin AND :dmax',
        inverse_name=None,
        family_name="range_duration",
        params=params,
        binds=params,
        inverse_factory=_inverse,
        estimator=_direct_estimate,
    )


def _range_duration_by(dmin: int = 0,
                       dmax: Optional[int] = None) -> CompiledQuery:
    return range_duration(dmin, dmax).inverse


def _constant_family(predicate: IntervalPredicate) -> QueryFamily:
    return QueryFamily(
        name=predicate.name,
        parameters=(),
        factory=lambda predicate=predicate: predicate,
        description=f"the classic {predicate.name!r} relation",
    )


#: Every registered query family: the fifteen classic relations as
#: zero-parameter families plus the parameterized families.  Keyed by
#: family name; values resolve through :func:`compile_query`.
FAMILIES: dict[str, QueryFamily] = {
    name: _constant_family(predicate)
    for name, predicate in PREDICATES.items()
}
FAMILIES["range_duration"] = QueryFamily(
    name="range_duration",
    parameters=("dmin", "dmax"),
    factory=range_duration,
    description="intersects the window AND duration within [dmin, dmax]",
)
FAMILIES["range_duration_by"] = QueryFamily(
    name="range_duration_by",
    parameters=("dmin", "dmax"),
    factory=_range_duration_by,
    description="intersects a reference whose duration is within "
                "[dmin, dmax] (the range-duration inverse)",
)


def register_family(family: QueryFamily) -> QueryFamily:
    """Register a new query family; returns it for decorator-ish use."""
    if family.name in FAMILIES:
        raise ValueError(
            f"query family {family.name!r} is already registered")
    FAMILIES[family.name] = family
    return family


def get_family(family) -> QueryFamily:
    """Resolve a query family given by name or already as an object."""
    if isinstance(family, QueryFamily):
        return family
    try:
        return FAMILIES[family]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown query family {family!r}; registered families: "
            f"{sorted(FAMILIES)}") from None


def compile_query(predicate, params=None) -> IntervalPredicate:
    """The single resolution entry point for every predicate spelling.

    ``predicate`` may be an :class:`IntervalPredicate` (returned as
    is), a classic relation name, or a family name; ``params`` is the
    optional parameter bundle (any mapping or pair iterable) bound via
    the family's factory.  This is what the service ops use to rebuild
    a compiled query from its wire form (``family_name`` +
    ``param_dict``).
    """
    if isinstance(predicate, IntervalPredicate):
        if params:
            raise ValueError(
                "compile_query() got both a predicate object and a "
                "parameter bundle; pass the family name with params=")
        return predicate
    if params:
        return get_family(predicate).compile(**dict(params))
    if isinstance(predicate, str) and predicate in PREDICATES:
        return PREDICATES[predicate]
    return get_family(predicate).compile()


def get_predicate(predicate) -> IntervalPredicate:
    """Resolve a predicate given by name or already as an object."""
    if isinstance(predicate, IntervalPredicate):
        return predicate
    try:
        return PREDICATES[predicate]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown interval predicate {predicate!r}; expected one of "
            f"{sorted(PREDICATES)}, or a query family compiled from "
            f"{sorted(FAMILIES)}") from None


def resolve_join_predicate(predicate) -> Optional[IntervalPredicate]:
    """Validate a join predicate; ``None``/``intersects`` mean the default.

    A join pair ``(r, s)`` satisfies predicate ``p`` iff ``p.holds(r_l,
    r_u, s_l, s_u)`` -- the *outer* record is the subject, so
    ``predicate="before"`` joins outer intervals to the inner intervals
    they lie before.  Shared by every join entry point (the strategies
    of :mod:`repro.core.join`, ``join_pairs``/``join_count`` on the
    stores, the cost model's join estimators).
    """
    if predicate is None:
        return None
    try:
        pred = compile_query(predicate)
    except ValueError:
        raise ValueError(
            f"unknown join predicate {predicate!r}; expected one of "
            f"{sorted(JOIN_PREDICATES)}, a registered query family from "
            f"{sorted(FAMILIES)}, or a compiled predicate object"
        ) from None
    if pred.name == "stab":
        raise ValueError(
            "'stab' relates an interval to a point and cannot serve as a "
            "join predicate; use a store's stab()/query() instead"
        )
    if pred.name == "intersects":
        return None
    return pred


def shim_positional_predicate(legacy, predicate, method: str):
    """Resolve the deprecated positional ``predicate`` argument.

    The query/join surface is keyword-only for everything past the
    probe relation (``join_pairs(probes, predicate="before")``); older
    call sites passed the predicate positionally.  Entry points absorb
    stray positionals into a ``*legacy`` tuple and route them through
    this shim, which warns once per call site and returns the effective
    predicate, so the service layer can dispatch generically on
    ``predicate=`` while old code keeps working for one deprecation
    cycle.
    """
    if not legacy:
        return predicate
    if len(legacy) > 1:
        raise TypeError(
            f"{method}() takes one predicate, got {len(legacy)} extra "
            f"positional arguments")
    if predicate is not None:
        raise TypeError(
            f"{method}() got the predicate both positionally and as "
            f"predicate=")
    warnings.warn(
        f"passing the predicate to {method}() positionally is "
        f"deprecated; use {method}(..., predicate=...)",
        DeprecationWarning,
        stacklevel=3,
    )
    return legacy[0]
