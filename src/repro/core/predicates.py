"""First-class interval query predicates, compiled per backend.

The paper's Section 4.5 observes that beyond the intersection predicate
"there are 13 more fine-grained temporal relationships between intervals
... also queries based on these specialized predicates are efficiently
supported by the Relational Interval Tree".  This module makes that
family a first-class part of the store API: ``intersects``, ``stab``,
and Allen's thirteen relations are value objects that every
:class:`~repro.core.access.IntervalStore` backend compiles to its own
plan --

* the simulated engine transforms the scan plan through the algorithms
  of :mod:`repro.core.topology` (path scans for bound-equality
  relations, candidate-range refinement for the rest);
* the sqlite backend rewrites the WHERE clause of the literal Figure 9
  statement: the transient tables are filled for the predicate's
  *candidate range* and the defining endpoint predicate is appended to
  both branches (:data:`IntervalPredicate.sql_refine`);
* any other store falls back to refining its enumerated records with
  the pure predicate (:meth:`IntervalPredicate.filter`), the oracle the
  compiled plans are tested against.

Semantics: a predicate relates a *subject* interval ``[s, e]`` (a stored
record, or the outer record of a join pair) to a *reference* interval
``[l, u]`` (the query interval, or the inner record).  ``holds(s, e, l,
u)`` is the defining endpoint formula; for Allen relations on proper
intervals it agrees with :func:`repro.core.topology.relate`.

The join strategies of :mod:`repro.core.join` accept these predicates
too (``interval_join(..., predicate="before")``), in the spirit of
Piatov et al.'s sweeps for extended Allen relation predicates.  For the
*index* strategies, every predicate also knows its :attr:`~
IntervalPredicate.inverse` relation (before/after, meets/met_by,
overlaps/overlapped_by, during/contains, starts/started_by,
finishes/finished_by; intersects and equals are self-inverse): probing a
store per outer tuple asks the *stored-subject* question, so the probe's
candidate range is the inverse relation's.  On proper intervals the
inverse identity ``p.holds(a, b, c, d) == p.inverse.holds(c, d, a, b)``
is exact (Allen's algebra); degenerate (point) intervals may break the
symmetry at shared endpoints, which is why the compiled join plans scan
the inverse's *candidate range* but refine with the direct formula.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from .interval import validate_interval

#: The defining endpoint formula: holds(s, e, l, u).
PredicateTest = Callable[[int, int, int, int], bool]

#: Candidate-range transform: (l, u, floor, ceiling) -> (lo, hi) or None.
#: ``floor``/``ceiling`` are the store's smallest lower / largest upper
#: bound (only ``before``/``after`` consult them); ``None`` means the
#: result is provably empty without touching the store.
CandidateRange = Callable[
    [int, int, Optional[int], Optional[int]], Optional[tuple[int, int]]]


@dataclass(frozen=True)
class IntervalPredicate:
    """One interval predicate as a backend-independent value object.

    ``holds`` is the ground truth; ``candidates`` maps the query to the
    intersection range whose result set provably contains every match
    (so any backend's intersection machinery can produce candidates);
    ``sql_refine`` is the residual WHERE fragment the sqlite backend
    appends to the Figure 9 statement (``None`` means the candidates
    are exact and no refinement is needed); ``inverse_name`` names the
    relation with subject and reference swapped (``None`` for ``stab``,
    which relates an interval to a point).
    """

    name: str
    holds: PredicateTest
    candidates: CandidateRange
    sql_refine: Optional[str]
    inverse_name: Optional[str] = None

    @property
    def inverse(self) -> "IntervalPredicate":
        """The subject-swapped relation: ``a p b`` iff ``b p.inverse a``.

        Exact on proper intervals; a join plan probing a store per outer
        tuple scans the inverse's candidate range (the stored record is
        the subject there) and refines with the direct formula.
        """
        if self.inverse_name is None:
            raise ValueError(f"predicate {self.name!r} has no inverse")
        return PREDICATES[self.inverse_name]

    def matches(self, subject: tuple[int, int], reference: tuple[int, int]
                ) -> bool:
        """Does ``subject`` stand in this relation to ``reference``?"""
        s, e = subject
        l, u = reference
        return self.holds(s, e, l, u)

    def filter(self, records: Sequence[tuple[int, int, int]],
               lower: int, upper: int) -> list[int]:
        """Refine ``(lower, upper, id)`` records by the pure predicate.

        The brute-force evaluation every compiled plan must agree with;
        also the generic fallback for stores without a native compile.
        """
        validate_interval(lower, upper)
        holds = self.holds
        return [interval_id for s, e, interval_id in records
                if holds(s, e, lower, upper)]


def _whole_query(l, u, floor, ceiling):
    return (l, u)


def _stab_lower(l, u, floor, ceiling):
    return (l, l)


def _stab_upper(l, u, floor, ceiling):
    return (u, u)


def _strictly_before(l, u, floor, ceiling):
    if floor is None or floor > l - 1:
        return None
    return (floor, l - 1)


def _strictly_after(l, u, floor, ceiling):
    if ceiling is None or u + 1 > ceiling:
        return None
    return (u + 1, ceiling)


#: The fifteen predicates of the store API.  Candidate-range soundness:
#: every relation except before/after forces the subject to intersect
#: the listed range (bound-equality and containment relations pin a
#: shared coordinate; ``during`` implies intersection with the query
#: itself), and before/after intersect the data-space envelope clipped
#: at the query bound -- exactly the transforms
#: :mod:`repro.core.topology` uses on the simulated engine.
PREDICATES: dict[str, IntervalPredicate] = {
    predicate.name: predicate for predicate in (
        IntervalPredicate(
            "intersects",
            lambda s, e, l, u: s <= u and e >= l,
            _whole_query, None, "intersects"),
        IntervalPredicate(
            "stab",
            lambda s, e, l, u: s <= l and e >= l,
            _stab_lower, None, None),
        IntervalPredicate(
            "before",
            lambda s, e, l, u: e < l,
            _strictly_before, 'i."upper" < :lower', "after"),
        IntervalPredicate(
            "after",
            lambda s, e, l, u: s > u,
            _strictly_after, 'i."lower" > :upper', "before"),
        IntervalPredicate(
            "meets",
            lambda s, e, l, u: e == l and s < l,
            _stab_lower, 'i."upper" = :lower AND i."lower" < :lower',
            "met_by"),
        IntervalPredicate(
            "met_by",
            lambda s, e, l, u: s == u and e > u,
            _stab_upper, 'i."lower" = :upper AND i."upper" > :upper',
            "meets"),
        IntervalPredicate(
            "overlaps",
            lambda s, e, l, u: s < l < e < u,
            _stab_lower,
            'i."lower" < :lower AND i."upper" > :lower '
            'AND i."upper" < :upper',
            "overlapped_by"),
        IntervalPredicate(
            "overlapped_by",
            lambda s, e, l, u: l < s < u < e,
            _stab_upper,
            'i."lower" > :lower AND i."lower" < :upper '
            'AND i."upper" > :upper',
            "overlaps"),
        IntervalPredicate(
            "during",
            lambda s, e, l, u: l < s and e < u,
            _whole_query, 'i."lower" > :lower AND i."upper" < :upper',
            "contains"),
        IntervalPredicate(
            "contains",
            lambda s, e, l, u: s < l and u < e,
            _stab_lower, 'i."lower" < :lower AND i."upper" > :upper',
            "during"),
        IntervalPredicate(
            "starts",
            lambda s, e, l, u: s == l and e < u,
            _stab_lower, 'i."lower" = :lower AND i."upper" < :upper',
            "started_by"),
        IntervalPredicate(
            "started_by",
            lambda s, e, l, u: s == l and e > u,
            _stab_lower, 'i."lower" = :lower AND i."upper" > :upper',
            "starts"),
        IntervalPredicate(
            "finishes",
            lambda s, e, l, u: e == u and s > l,
            _stab_upper, 'i."upper" = :upper AND i."lower" > :lower',
            "finished_by"),
        IntervalPredicate(
            "finished_by",
            lambda s, e, l, u: e == u and s < l,
            _stab_upper, 'i."upper" = :upper AND i."lower" < :lower',
            "finishes"),
        IntervalPredicate(
            "equals",
            lambda s, e, l, u: s == l and e == u,
            _stab_lower, 'i."lower" = :lower AND i."upper" = :upper',
            "equals"),
    )
}

#: The predicates meaningful as join predicates (``stab`` relates an
#: interval to a point, not to another interval).
JOIN_PREDICATES = tuple(name for name in PREDICATES if name != "stab")


def get_predicate(predicate) -> IntervalPredicate:
    """Resolve a predicate given by name or already as an object."""
    if isinstance(predicate, IntervalPredicate):
        return predicate
    try:
        return PREDICATES[predicate]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown interval predicate {predicate!r}; expected one of "
            f"{sorted(PREDICATES)}") from None


def resolve_join_predicate(predicate) -> Optional[IntervalPredicate]:
    """Validate a join predicate; ``None``/``intersects`` mean the default.

    A join pair ``(r, s)`` satisfies predicate ``p`` iff ``p.holds(r_l,
    r_u, s_l, s_u)`` -- the *outer* record is the subject, so
    ``predicate="before"`` joins outer intervals to the inner intervals
    they lie before.  Shared by every join entry point (the strategies
    of :mod:`repro.core.join`, ``join_pairs``/``join_count`` on the
    stores, the cost model's join estimators).
    """
    if predicate is None:
        return None
    pred = get_predicate(predicate)
    if pred.name == "stab":
        raise ValueError(
            "'stab' relates an interval to a point and cannot serve as a "
            "join predicate; use a store's stab()/query() instead"
        )
    if pred.name == "intersects":
        return None
    return pred


def shim_positional_predicate(legacy, predicate, method: str):
    """Resolve the deprecated positional ``predicate`` argument.

    The query/join surface is keyword-only for everything past the
    probe relation (``join_pairs(probes, predicate="before")``); older
    call sites passed the predicate positionally.  Entry points absorb
    stray positionals into a ``*legacy`` tuple and route them through
    this shim, which warns once per call site and returns the effective
    predicate, so the service layer can dispatch generically on
    ``predicate=`` while old code keeps working for one deprecation
    cycle.
    """
    if not legacy:
        return predicate
    if len(legacy) > 1:
        raise TypeError(
            f"{method}() takes one predicate, got {len(legacy)} extra "
            f"positional arguments")
    if predicate is not None:
        raise TypeError(
            f"{method}() got the predicate both positionally and as "
            f"predicate=")
    warnings.warn(
        f"passing the predicate to {method}() positionally is "
        f"deprecated; use {method}(..., predicate=...)",
        DeprecationWarning,
        stacklevel=3,
    )
    return legacy[0]
