"""Temporal extension: the special values ``now`` and ``infinity``.

Paper Section 4.6: valid-time intervals may end at *infinity* (open-ended)
or at *now* (growing with the clock).  Managing them in separate structures
would cost extra (sub)queries per search; the RI-tree instead reserves two
artificial fork-node values:

* ``FORK_INF`` for intervals ending at infinity.  It is always injected
  into the transient ``rightNodes`` list, so the lower bounds of infinite
  intervals are tested against the query's upper bound -- exactly the
  intersection condition for ``[s, oo)``.
* ``FORK_NOW`` for now-relative intervals.  It is injected exactly when the
  query begins in the past (``lower <= now``), because ``[s, now]``
  intersects ``[l, u]`` iff ``s <= u`` (checked by the scan) and ``l <= now``
  (checked by the injection condition).

The paper chooses ``MAXINT`` / ``MAXINT - 1``; this implementation reserves
two values far above any reachable backbone node (bounds are capped at
±2^48, so shifted nodes stay below 2^49 < ``FORK_NOW``).  Crucially, *no
modification of the query statement is needed* -- the reserved nodes ride
along the ordinary rightNodes scan, which is the point of Section 4.6.
"""

from __future__ import annotations

from typing import Optional

from ..engine.database import Database
from .interval import validate_interval
from .ritree import RITree
from .verify import VerificationReport

#: Reserved fork node for intervals ending at infinity ("MAXINT").
FORK_INF = 2**50
#: Reserved fork node for now-relative intervals ("MAXINT - 1").
FORK_NOW = 2**50 - 1
#: Raw ``upper`` column value stored for infinite intervals.
UPPER_INF = 2**60
#: Raw ``upper`` column value stored for now-relative intervals.  The true
#: upper bound is the query-time clock; this sentinel never participates in
#: comparisons because the reserved-node scans only constrain ``lower``.
UPPER_NOW = 2**60 - 1


def resolve_clock_argument(now, timestamp):
    """Shim for the pre-v8 ``advance_to(timestamp=...)`` spelling.

    Every temporal backend spells the clock argument ``now=`` (matching
    the ``now=`` constructor parameter and the ``now`` property); the
    old keyword still works behind a :class:`DeprecationWarning`.
    """
    if timestamp is not None:
        if now is not None:
            raise TypeError(
                "advance_to() got the clock both as now= and as the "
                "deprecated timestamp="
            )
        import warnings

        warnings.warn(
            "advance_to(timestamp=...) is deprecated; use "
            "advance_to(now=...)",
            DeprecationWarning,
            stacklevel=3,
        )
        now = timestamp
    if now is None:
        raise TypeError("advance_to() is missing the new clock value")
    return now


class TemporalRITree(RITree):
    """RI-tree managing finite, infinite and now-relative intervals.

    Parameters
    ----------
    db, name:
        As for :class:`~repro.core.ritree.RITree`.
    now:
        Initial clock value.  The clock only moves forward
        (:meth:`advance_to`), matching transaction/valid-time semantics.

    Example
    -------
    >>> tree = TemporalRITree(now=100)
    >>> tree.insert(10, 20, interval_id=1)        # closed history record
    >>> tree.insert_until_now(50, interval_id=2)  # [50, now]
    >>> tree.insert_infinite(80, interval_id=3)   # [80, oo)
    >>> sorted(tree.intersection(90, 95))
    [2, 3]
    >>> tree.advance_to(200)
    >>> sorted(tree.intersection(150, 160))
    [2, 3]
    """

    method_name = "RI-tree(temporal)"

    def __init__(
        self, db: Optional[Database] = None, name: str = "Intervals", now: int = 0
    ) -> None:
        super().__init__(db, name)
        self._now = now
        self._infinite_count = 0
        self._now_count = 0
        self.add_right_node_hook(self._infinity_node)
        self.add_right_node_hook(self._now_node)

    # ------------------------------------------------------------------
    # durability (attach after recovery, metadata logging)
    # ------------------------------------------------------------------
    def _init_attached(self, db, name, meta):
        self._now = 0
        self._infinite_count = 0
        self._now_count = 0
        super()._init_attached(db, name, meta)
        self.add_right_node_hook(self._infinity_node)
        self.add_right_node_hook(self._now_node)

    def _restore_meta(self, meta: dict) -> None:
        super()._restore_meta(meta)
        self._now = meta.get("now", 0)
        self._infinite_count = meta.get("infinite_count", 0)
        self._now_count = meta.get("now_count", 0)

    def _durable_meta(self) -> dict:
        meta = super()._durable_meta()
        meta.update(
            kind="temporal",
            now=self._now,
            infinite_count=self._infinite_count,
            now_count=self._now_count,
        )
        return meta

    # ------------------------------------------------------------------
    # the clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current clock value used for now-relative semantics."""
        return self._now

    def advance_to(
        self, now: Optional[int] = None, *, timestamp: Optional[int] = None
    ) -> None:
        """Move the clock forward; time never runs backwards.

        The tick mutates no relation, but it *is* durable state: the
        effective upper bound of every now-relative interval depends on
        it, so the new clock is logged as a store-metadata record.
        """
        now = resolve_clock_argument(now, timestamp)
        if now < self._now:
            raise ValueError(f"clock moves forward only: {now} < now={self._now}")
        with self.db.atomic():
            self._now = now
            self._log_meta()

    # ------------------------------------------------------------------
    # updates for special intervals
    # ------------------------------------------------------------------
    def insert_infinite(self, lower: int, interval_id: int) -> None:
        """Insert the open-ended interval ``[lower, infinity)``."""
        self._ensure_offset(lower)
        with self.db.atomic():
            self._store_at_node(FORK_INF, lower, UPPER_INF, interval_id)
            self._note_bounds(lower, UPPER_INF)
            self._infinite_count += 1
            self._log_meta()

    def insert_until_now(self, lower: int, interval_id: int) -> None:
        """Insert the now-relative interval ``[lower, now]``.

        The interval's position in the tree never needs maintenance as the
        clock ticks -- that is the point of the reserved fork node.
        """
        if lower > self._now:
            raise ValueError(
                f"now-relative interval starts at {lower}, after now={self._now}"
            )
        self._ensure_offset(lower)
        with self.db.atomic():
            self._store_at_node(FORK_NOW, lower, UPPER_NOW, interval_id)
            self._note_bounds(lower, lower)
            self._now_count += 1
            self._log_meta()

    def delete_infinite(self, lower: int, interval_id: int) -> None:
        """Delete an infinite interval by its lower bound and id."""
        with self.db.atomic():
            self._delete_at_node(FORK_INF, lower, interval_id)
            self._infinite_count -= 1
            self._log_meta()

    def delete_until_now(self, lower: int, interval_id: int) -> None:
        """Delete a now-relative interval by its lower bound and id."""
        with self.db.atomic():
            self._delete_at_node(FORK_NOW, lower, interval_id)
            self._now_count -= 1
            self._log_meta()

    def close_now_interval(self, lower: int, interval_id: int, upper: int) -> None:
        """Terminate ``[lower, now]`` at a fixed ``upper`` (e.g. logical
        deletion in a valid-time table): the record is re-registered as an
        ordinary finite interval.  Delete and re-insert commit as one
        atomic batch -- a crash in between cannot lose the record."""
        validate_interval(lower, upper)
        with self.db.atomic():
            self.delete_until_now(lower, interval_id)
            self.insert(lower, upper, interval_id)

    def append_batch(self, intervals) -> None:
        """Streaming append with sentinel rows folded into the batch.

        As :meth:`RITree.append_batch` -- one ``db.atomic()`` group
        commit, one ``_log_meta()`` per batch -- with the sentinel
        uppers :data:`UPPER_INF` / :data:`UPPER_NOW` stored as reserved
        fork-node rows instead of going through the per-row temporal
        entry points (which would each log their own meta record).
        Validation runs before any row is staged, so a rejected record
        leaves the store untouched.
        """
        rows = []
        inf_delta = now_delta = 0
        for lower, upper, interval_id in intervals:
            if upper == UPPER_INF:
                self._ensure_offset(lower)
                rows.append((FORK_INF, lower, UPPER_INF, interval_id))
                inf_delta += 1
            elif upper == UPPER_NOW:
                if lower > self._now:
                    raise ValueError(
                        f"now-relative interval starts at {lower}, after "
                        f"now={self._now}"
                    )
                self._ensure_offset(lower)
                rows.append((FORK_NOW, lower, UPPER_NOW, interval_id))
                now_delta += 1
            else:
                node = self.backbone.register(lower, upper)
                rows.append((node, lower, upper, interval_id))
        if not rows:
            return
        with self.db.atomic():
            for node, lower, upper, interval_id in rows:
                self.table.insert((node, lower, upper, interval_id))
                if node == FORK_INF:
                    self._note_bounds(lower, UPPER_INF)
                elif node == FORK_NOW:
                    self._note_bounds(lower, lower)
                else:
                    self._note_bounds(lower, upper)
            self._infinite_count += inf_delta
            self._now_count += now_delta
            self._log_meta()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def infinite_count(self) -> int:
        """Number of stored ``[s, oo)`` intervals."""
        return self._infinite_count

    @property
    def now_relative_count(self) -> int:
        """Number of stored ``[s, now]`` intervals."""
        return self._now_count

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _verify_into(self, report: VerificationReport) -> None:
        """As in :class:`RITree`, plus the Section 4.6 reserved rows."""
        super()._verify_into(report)
        report.add_check("reserved-rows")
        stored_inf = stored_now = 0
        for _rowid, (node, _lower, _upper, _iid) in self.table.scan():
            if node == FORK_INF:
                stored_inf += 1
            elif node == FORK_NOW:
                stored_now += 1
        if stored_inf != self._infinite_count:
            report.add_issue(
                "reserved-count-mismatch",
                f"{stored_inf} rows at FORK_INF but infinite_count is "
                f"{self._infinite_count}",
            )
        if stored_now != self._now_count:
            report.add_issue(
                "reserved-count-mismatch",
                f"{stored_now} rows at FORK_NOW but now_relative_count is "
                f"{self._now_count}",
            )

    def _verify_row(self, report, rowid, node, lower, upper, interval_id):
        if node == FORK_INF:
            if upper != UPPER_INF:
                report.add_issue(
                    "reserved-row-upper",
                    f"row {rowid} at FORK_INF stores upper {upper}, "
                    f"expected the UPPER_INF sentinel",
                    {"rowid": rowid},
                )
            return
        if node == FORK_NOW:
            if upper != UPPER_NOW:
                report.add_issue(
                    "reserved-row-upper",
                    f"row {rowid} at FORK_NOW stores upper {upper}, "
                    f"expected the UPPER_NOW sentinel",
                    {"rowid": rowid},
                )
            if lower > self._now:
                report.add_issue(
                    "now-row-after-clock",
                    f"now-relative row {rowid} starts at {lower}, after "
                    f"now={self._now}",
                    {"rowid": rowid},
                )
            return
        if upper in (UPPER_INF, UPPER_NOW):
            report.add_issue(
                "sentinel-on-regular-node",
                f"row {rowid} at ordinary node {node} stores a reserved "
                f"sentinel upper bound",
                {"rowid": rowid},
            )
            return
        super()._verify_row(report, rowid, node, lower, upper, interval_id)

    # ------------------------------------------------------------------
    # record materialisation
    # ------------------------------------------------------------------
    def _record_batches(self, lower, upper):
        """As in :class:`RITree`, with sentinel uppers materialised.

        Now-relative records report their *effective* upper bound (the
        current clock); infinite records keep the ``UPPER_INF`` sentinel,
        which behaves as +infinity under every topological predicate.
        Covers every record-batch consumer at once: the topological
        queries (``intersection_records``) and the leaf-slice refinement
        of predicate joins (``join_pairs(..., predicate=...)``).
        """
        now = self._now
        for batch in super()._record_batches(lower, upper):
            yield [
                (s, now if e == UPPER_NOW else e, interval_id)
                for s, e, interval_id in batch
            ]

    def stored_records(self):
        """As in :class:`RITree`, with sentinel uppers materialised.

        Same convention as :meth:`intersection_records`, so index-free
        consumers of the enumerated relation (the planner's sweep
        dispatch) see the effective bounds the reserved-node scans
        enforce.
        """
        return [
            (s, self._now if e == UPPER_NOW else e, interval_id)
            for s, e, interval_id in super().stored_records()
        ]

    # ------------------------------------------------------------------
    # query-time hooks (Section 4.6)
    # ------------------------------------------------------------------
    def _infinity_node(self, lower: int, upper: int) -> Optional[int]:
        if self._infinite_count == 0:
            return None
        return FORK_INF

    def _now_node(self, lower: int, upper: int) -> Optional[int]:
        if self._now_count == 0 or lower > self._now:
            return None
        return FORK_NOW

    def _ensure_offset(self, lower: int) -> None:
        # Special intervals bypass Figure 6's registration, but queries
        # still need the offset fixed; anchor it like a first insertion.
        if self.backbone.offset is None:
            self.backbone.offset = lower
