"""The interval-store interface shared by every backend in this repo.

Two layers live here:

* :class:`IntervalStore` -- the backend-neutral protocol.  Everything a
  client (the benchmark harness, the join subsystem, the planner, the
  predicate layer) may ask of an interval collection is declared on this
  class: updates, the intersection query family, predicate queries,
  interval joins, planning hooks, and accounting.  It says nothing about
  *where* the intervals live; the simulated storage engine, the sqlite3
  backend of :mod:`repro.sql` and the main-memory
  :class:`~repro.core.hint.HintStore` all implement it, mirroring the
  paper's Section 5 claim that the RI-tree "may be easily implemented on
  top of any relational DBMS".  ``docs/writing-a-backend.md`` walks the
  contract method by method for backend authors; the shared conformance
  suite (``tests/core/test_store_conformance.py``) is its executable
  form.
* :class:`AccessMethod` -- the simulated-engine base.  Every access
  method over :mod:`repro.engine` -- the RI-tree itself and the
  competitors of Section 2 (Tile Index, IST, MAP21, Window-List) --
  extends this class, which owns the :class:`~repro.engine.database.
  Database` instance so the harness can swap methods freely and account
  their I/O on identical counters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Optional, Sequence

from ..engine.database import Database
from .interval import validate_interval
from .verify import VerificationReport

#: An interval record handed to interval stores: (lower, upper, id).
IntervalRecord = tuple[int, int, int]


class IntervalStore(ABC):
    """Backend-neutral store of closed integer intervals.

    Subclasses persist ``(lower, upper, id)`` records somewhere -- heap
    tables and B+-trees of the simulated engine, a sqlite3 relation, or
    anything else -- and answer intersection queries over them.  The
    default implementations express every richer operation (counting,
    batching, joins, predicate queries) in terms of the abstract core,
    so a minimal backend is immediately a complete one; backends with a
    cheaper native evaluation override the defaults without changing
    the contract.
    """

    #: Short name used in benchmark output rows.
    method_name: str = "abstract"

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    @abstractmethod
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """Register the closed interval ``[lower, upper]`` under ``interval_id``.

        Implementations must reject malformed input through
        :func:`~repro.core.interval.validate_interval` (``lower <=
        upper``, bounds within the engine's domain) *before* touching
        any structure, so a failed insert leaves the store unchanged.
        ``interval_id`` is opaque to the store and need not be unique;
        the same exact record may be stored more than once and queries
        then report it with its multiplicity.

        The sentinel uppers :data:`~repro.core.temporal.UPPER_INF` and
        :data:`~repro.core.temporal.UPPER_NOW` are reserved for temporal
        rows.  Backends with temporal support store such records through
        their dedicated ``insert_infinite`` / ``insert_until_now`` entry
        points; the main-memory :class:`~repro.core.hint.HintStore`
        additionally routes the sentinels from plain ``insert``, so
        sentinel-bearing records load through its uniform ``bulk_load``.
        Stores without temporal rows have no special case -- the
        sentinels are merely huge uppers, which the plain RI-tree's
        backbone rejects as out of domain.
        """

    @abstractmethod
    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Remove one previously inserted copy of the exact record.

        All three fields must match an existing record; when the record
        was inserted more than once, a single copy is removed.  Raises
        :class:`KeyError` (and leaves the store unchanged) when the
        exact record is absent -- deletion is never fuzzy.  Temporal
        rows are removed through the dedicated ``delete_infinite`` /
        ``delete_until_now`` entry points; the
        :class:`~repro.core.hint.HintStore` also routes the sentinel
        uppers from here, mirroring its :meth:`insert`.
        """

    def bulk_load(self, intervals: Sequence[IntervalRecord]) -> None:
        """Load many intervals at once.

        The default implementation is an insert loop; backends with a
        bottom-up build or a transactional batch path override it.
        """
        for lower, upper, interval_id in intervals:
            self.insert(lower, upper, interval_id)

    def extend(self, intervals: Iterable[IntervalRecord]) -> None:
        """Insert many intervals one by one (dynamic workload)."""
        for lower, upper, interval_id in intervals:
            self.insert(lower, upper, interval_id)

    def append_batch(self, intervals: Sequence[IntervalRecord]) -> None:
        """Ingest one streaming append batch (opt-in fast path).

        The contract is :meth:`extend` with batch-level atomicity left
        to the backend: after the call the store holds every record of
        the batch, with the sentinel uppers
        :data:`~repro.core.temporal.UPPER_INF` /
        :data:`~repro.core.temporal.UPPER_NOW` routed through the
        temporal entry points on backends that have them.  Backends with
        a cheaper batched write path -- one group commit per batch on
        the WAL engines, one deferred re-sort per touched partition on
        the main-memory store, one transaction on sqlite -- override
        this default insert loop without changing observable query
        results.  Streaming callers go through
        :class:`repro.ingest.ingestor.StreamIngestor`, which adds
        buffering, backpressure and periodic checkpoints on top.
        """
        from .temporal import UPPER_INF, UPPER_NOW

        for lower, upper, interval_id in intervals:
            if upper == UPPER_INF and hasattr(self, "insert_infinite"):
                self.insert_infinite(lower, interval_id)
            elif upper == UPPER_NOW and hasattr(self, "insert_until_now"):
                self.insert_until_now(lower, interval_id)
            else:
                self.insert(lower, upper, interval_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @abstractmethod
    def intersection(self, lower: int, upper: int) -> list[int]:
        """Ids of all stored intervals intersecting ``[lower, upper]``.

        A stored ``[s, e]`` matches iff ``s <= upper and lower <= e``
        (closed-interval overlap, so touching endpoints count).  The
        result contains one entry per matching stored *record* --
        records inserted twice appear twice -- in unspecified order;
        callers that need determinism sort.  On temporal backends the
        effective upper of a ``now``-relative record is the current
        clock and infinite records match every query window that reaches
        their lower bound.
        """

    def intersection_count(self, lower: int, upper: int) -> int:
        """Number of intervals intersecting ``[lower, upper]``.

        Same scans, same I/O as :meth:`intersection`; backends with a
        batched execution pipeline (or a set-oriented engine) override
        this to aggregate without materialising an id list.  The
        benchmark harness runs its query batches through this entry
        point.
        """
        return len(self.intersection(lower, upper))

    def intersection_many(
        self, queries: Sequence[tuple[int, int]]
    ) -> list[list[int]]:
        """Answer a batch of intersection queries in one call.

        A per-query loop over :meth:`intersection`; exists so batch
        drivers (the bench harness, bulk clients) have a single entry
        point that backends may specialise -- the sqlite backend answers
        the whole batch with one set-at-a-time SQL statement.
        """
        return [self.intersection(lower, upper) for lower, upper in queries]

    def stab(self, point: int) -> list[int]:
        """Stabbing query: intervals containing ``point``."""
        return self.intersection(point, point)

    def query(
        self, lower, upper: Optional[int] = None, *legacy,
        predicate="intersects",
    ) -> list[int]:
        """Ids of stored intervals standing in ``predicate`` to the query.

        ``predicate`` is a name or :class:`~repro.core.predicates.
        IntervalPredicate` -- ``"intersects"`` (the default),
        ``"stab"``, one of Allen's thirteen relations, or a compiled
        query family such as :func:`~repro.core.predicates.
        range_duration` -- evaluated with the stored interval as the
        subject: ``query(l, u, predicate="before")`` returns intervals
        that lie *before* ``[l, u]``; omitting ``upper`` makes it a
        point query.  ``intersects`` and ``stab`` run every backend's
        native intersection machinery directly; relational predicates
        and parameterized families go through :meth:`_query_relation`,
        the per-backend compilation hook.

        The pre-v8 predicate-first form ``query(predicate, lower[,
        upper])`` still works behind a :class:`DeprecationWarning` shim
        (detected by the predicate landing in the ``lower`` slot), so
        every caller -- including the service layer, which dispatches
        generically -- should spell the bounds first and the predicate
        as ``predicate=``.
        """
        from .predicates import IntervalPredicate, compile_query

        if isinstance(lower, (str, IntervalPredicate)):
            # Legacy query(predicate, lower[, upper]): shift arguments.
            if len(legacy) > 1:
                raise TypeError(
                    "query() takes at most a predicate and two bounds")
            if predicate != "intersects":
                raise TypeError(
                    "query() got the predicate both positionally and as "
                    "predicate=")
            import warnings

            warnings.warn(
                "query(predicate, lower, upper) is deprecated; use "
                "query(lower, upper, predicate=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            predicate, lower, upper = (
                lower, upper, legacy[0] if legacy else None)
            if lower is None:
                raise TypeError("query() is missing the query bounds")
        elif legacy:
            raise TypeError(
                f"query() takes two positional bounds, got "
                f"{2 + len(legacy)} positional arguments; pass the "
                f"predicate as predicate=")
        pred = compile_query(predicate)
        if upper is None:
            upper = lower
        if pred.name == "intersects":
            return self.intersection(lower, upper)
        if pred.name == "stab":
            return self.stab(lower)
        return self._query_relation(pred, lower, upper)

    def _query_relation(self, pred, lower: int, upper: int) -> list[int]:
        """Compile one Allen-relation predicate to this backend's plan.

        Subclasses override with their native evaluation (scan-plan
        transform on the simulated engine, WHERE-clause rewrite on
        sqlite); this default refines :meth:`stored_records` by the pure
        predicate, which is always correct and never fast.
        """
        records = self.stored_records()
        if records is None:
            raise NotImplementedError(
                f"{type(self).__name__} can neither compile predicate "
                f"{pred.name!r} nor enumerate its records")
        return pred.filter(records, lower, upper)

    # ------------------------------------------------------------------
    # planning (the Section 5 cost model, where a backend provides one)
    # ------------------------------------------------------------------
    def cost_model(self):
        """This store's optimizer cost model, or ``None``.

        Backends that keep optimizer statistics (the RI-tree's bound
        histograms of :mod:`repro.core.costmodel`, on either engine)
        override this so planners -- the ``auto`` join strategy, the
        harness's ``plan`` mode -- can price plans without executing
        them.  The base class has no statistics and returns ``None``,
        which planners treat as "fall back to record-level estimation".
        """
        return None

    def stored_records(self) -> Optional[list[IntervalRecord]]:
        """All stored intervals as ``(lower, upper, id)``, or ``None``.

        Enables plan switches that abandon this index entirely (the
        planner choosing a sweep over a pre-built inner index needs the
        raw inner relation back).  ``None`` -- the base default -- means
        the store cannot enumerate its intervals cheaply and callers
        must keep probing through it.
        """
        return None

    # ------------------------------------------------------------------
    # joins (probe side of the index-nested-loop interval join)
    # ------------------------------------------------------------------
    def join_pairs(
        self, probes: Sequence[IntervalRecord], *legacy, predicate=None
    ) -> list[tuple[int, int]]:
        """``(probe_id, stored_id)`` pairs standing in the join predicate.

        The index-nested-loop interval join: one probe per outer record
        against this store's (inner) relation, with the *probe* as the
        predicate subject (``predicate="before"`` pairs probes with the
        stored intervals they lie before; the default is the overlap
        join).  The default loops :meth:`intersection`; backends with a
        batched pipeline override it -- the RI-tree emits pairs straight
        from leaf slices, the sqlite backend evaluates the whole probe
        relation in one set-at-a-time SQL statement.  Pairs are
        duplicate-free because each probe's result is.

        Predicate probes ask the *stored-subject* question, so the loop
        runs :meth:`query` with the predicate's :attr:`~repro.core.
        predicates.IntervalPredicate.inverse`; stores that can enumerate
        their records refine with the direct formula instead, which also
        pins the boundary conventions of degenerate (point) intervals to
        the nested-loop oracle's.
        """
        from .predicates import (
            resolve_join_predicate,
            shim_positional_predicate,
        )

        predicate = shim_positional_predicate(legacy, predicate, "join_pairs")
        pred = resolve_join_predicate(predicate)
        pairs: list[tuple[int, int]] = []
        if pred is None:
            for lower, upper, probe_id in probes:
                pairs.extend(
                    (probe_id, interval_id)
                    for interval_id in self.intersection(lower, upper)
                )
            return pairs
        records = self.stored_records()
        if records is not None:
            holds = pred.holds
            for lower, upper, probe_id in probes:
                validate_interval(lower, upper)
                pairs.extend(
                    (probe_id, interval_id)
                    for s, e, interval_id in records
                    if holds(lower, upper, s, e)
                )
            return pairs
        inverse = pred.inverse
        for lower, upper, probe_id in probes:
            pairs.extend(
                (probe_id, interval_id)
                for interval_id in self.query(lower, upper,
                                              predicate=inverse)
            )
        return pairs

    def join_count(
        self, probes: Sequence[IntervalRecord], *legacy, predicate=None
    ) -> int:
        """Size of :meth:`join_pairs` without materialising the pair list.

        The default (intersection) join runs the same per-probe
        evaluation through :meth:`intersection_count`, so the I/O trace
        is identical to :meth:`join_pairs` while batched backends skip
        building id lists -- the join analogue of the harness's
        count-only query path.  Predicate joins count through the same
        evaluation as :meth:`join_pairs`.
        """
        from .predicates import (
            resolve_join_predicate,
            shim_positional_predicate,
        )

        predicate = shim_positional_predicate(legacy, predicate, "join_count")
        pred = resolve_join_predicate(predicate)
        if pred is not None:
            return len(self.join_pairs(probes, predicate=pred))
        return sum(
            self.intersection_count(lower, upper)
            for lower, upper, _probe_id in probes
        )

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(self) -> VerificationReport:
        """Check this store's structural invariants.

        Returns a :class:`~repro.core.verify.VerificationReport` listing
        every check that ran and every violation found -- backends extend
        :meth:`_verify_into` with their structural validators (B+-tree
        invariants and fork-node consistency on the simulated engine,
        ``PRAGMA integrity_check`` and index presence on sqlite).  The
        report is truthy when the store is intact.
        """
        report = VerificationReport(
            store=getattr(self, "name", type(self).__name__),
            backend=self.method_name,
        )
        self._verify_into(report)
        return report

    def _verify_into(self, report: VerificationReport) -> None:
        """Backend-neutral checks; subclasses extend and call ``super()``."""
        report.add_check("interval-count")
        if self.interval_count < 0:
            report.add_issue(
                "negative-count",
                f"interval_count is {self.interval_count}",
            )
        records = self.stored_records()
        if records is not None:
            report.add_check("record-count")
            if len(records) != self.interval_count:
                report.add_issue(
                    "record-count-mismatch",
                    f"stored_records() returned {len(records)} records "
                    f"but interval_count is {self.interval_count}",
                )
            report.add_check("record-bounds")
            for lower, upper, interval_id in records:
                if lower > upper:
                    report.add_issue(
                        "inverted-interval",
                        f"record ({lower}, {upper}, {interval_id}) has "
                        "lower > upper",
                        {"id": interval_id},
                    )

    # ------------------------------------------------------------------
    # accounting (Figure 12's storage metric and general bookkeeping)
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def interval_count(self) -> int:
        """Number of stored interval records, temporal rows included.

        Counts records (with multiplicity), not distinct ids, and must
        track :meth:`insert`/:meth:`delete` exactly -- the base
        :meth:`_verify_into` cross-checks it against
        :meth:`stored_records` on every ``verify()``.
        """

    @property
    @abstractmethod
    def index_entry_count(self) -> int:
        """Total index entries -- the y-axis of the paper's Figure 12.

        The physical storage metric: the RI-tree stores two entries per
        interval (lowerIndex + upperIndex), the T-index one per covering
        tile, the HINT store one per partition replica.  A backend's
        :attr:`redundancy` is this divided by :attr:`interval_count`.
        """

    @property
    def redundancy(self) -> float:
        """Index entries per stored interval (T-index's problem metric)."""
        if self.interval_count == 0:
            return 0.0
        return self.index_entry_count / self.interval_count


class AccessMethod(IntervalStore):
    """Abstract interval access method over the simulated storage engine.

    Subclasses own one or more tables/indexes inside ``self.db`` and
    implement intersection queries over closed integer intervals; all
    I/O flows through the engine's :class:`~repro.engine.stats.IoStats`
    counters, which is what makes the Section 6 measurements
    comparable across methods.
    """

    def __init__(self, db: Database | None = None) -> None:
        self.db = db if db is not None else Database()
