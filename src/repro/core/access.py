"""The access-method interface shared by the RI-tree and all competitors.

Every interval access method in this reproduction -- the RI-tree itself and
the competitors of Section 2 (Tile Index, IST, MAP21, Window-List) -- exposes
the same contract so that the benchmark harness (:mod:`repro.bench`) can
swap them freely, mirroring how the paper runs identical query workloads
against each technique.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Optional, Sequence

from ..engine.database import Database

#: An interval record handed to access methods: (lower, upper, id).
IntervalRecord = tuple[int, int, int]


class AccessMethod(ABC):
    """Abstract interval access method over the storage engine.

    Subclasses own one or more tables/indexes inside ``self.db`` and
    implement intersection queries over closed integer intervals.
    """

    #: Short name used in benchmark output rows.
    method_name: str = "abstract"

    def __init__(self, db: Database | None = None) -> None:
        self.db = db if db is not None else Database()

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    @abstractmethod
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """Register the interval ``[lower, upper]`` under ``interval_id``."""

    @abstractmethod
    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Remove a previously inserted interval.

        Raises :class:`KeyError` when the exact record is absent.
        """

    def bulk_load(self, intervals: Sequence[IntervalRecord]) -> None:
        """Load many intervals at once.

        The default implementation is an insert loop; methods with a
        bottom-up build (everything engine-backed here) override it.
        """
        for lower, upper, interval_id in intervals:
            self.insert(lower, upper, interval_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @abstractmethod
    def intersection(self, lower: int, upper: int) -> list[int]:
        """Ids of all stored intervals intersecting ``[lower, upper]``."""

    def intersection_count(self, lower: int, upper: int) -> int:
        """Number of intervals intersecting ``[lower, upper]``.

        Same scans, same I/O as :meth:`intersection`; methods with a
        batched execution pipeline override this to aggregate leaf-slice
        lengths instead of materialising an id list.  The benchmark
        harness runs its query batches through this entry point.
        """
        return len(self.intersection(lower, upper))

    def intersection_many(self, queries: Sequence[tuple[int, int]]
                          ) -> list[list[int]]:
        """Answer a batch of intersection queries in one call.

        A per-query loop over :meth:`intersection`; exists so batch
        drivers (the bench harness, bulk clients) have a single entry
        point that methods may later specialise.
        """
        return [self.intersection(lower, upper) for lower, upper in queries]

    def stab(self, point: int) -> list[int]:
        """Stabbing query: intervals containing ``point``."""
        return self.intersection(point, point)

    # ------------------------------------------------------------------
    # planning (the Section 5 cost model, where a method provides one)
    # ------------------------------------------------------------------
    def cost_model(self):
        """This method's optimizer cost model, or ``None``.

        Methods that keep optimizer statistics (the RI-tree's bound
        histograms of :mod:`repro.core.costmodel`) override this so
        planners -- the ``auto`` join strategy, the harness's ``plan``
        mode -- can price plans without executing them.  The base class
        has no statistics and returns ``None``, which planners treat as
        "fall back to record-level estimation".
        """
        return None

    def stored_records(self) -> Optional[list[IntervalRecord]]:
        """All stored intervals as ``(lower, upper, id)``, or ``None``.

        Enables plan switches that abandon this index entirely (the
        planner choosing a sweep over a pre-built inner index needs the
        raw inner relation back).  ``None`` -- the base default -- means
        the method cannot enumerate its intervals cheaply and callers
        must keep probing through it.
        """
        return None

    # ------------------------------------------------------------------
    # joins (probe side of the index-nested-loop interval join)
    # ------------------------------------------------------------------
    def join_pairs(self, probes: Sequence[IntervalRecord]
                   ) -> list[tuple[int, int]]:
        """``(probe_id, stored_id)`` pairs of overlapping intervals.

        The index-nested-loop interval join: one intersection probe per
        outer record against this method's stored (inner) relation.  The
        default loops :meth:`intersection`; methods with a batched
        pipeline override it to emit pairs straight from leaf slices.
        Pairs are duplicate-free because each probe's result is.
        """
        pairs: list[tuple[int, int]] = []
        for lower, upper, probe_id in probes:
            pairs.extend((probe_id, interval_id)
                         for interval_id in self.intersection(lower, upper))
        return pairs

    def join_count(self, probes: Sequence[IntervalRecord]) -> int:
        """Size of :meth:`join_pairs` without materialising the pair list.

        Runs the same per-probe scans through :meth:`intersection_count`,
        so the I/O trace is identical to :meth:`join_pairs` while batched
        methods skip building id lists -- the join analogue of the
        harness's count-only query path.
        """
        return sum(self.intersection_count(lower, upper)
                   for lower, upper, _probe_id in probes)

    # ------------------------------------------------------------------
    # accounting (Figure 12's storage metric and general bookkeeping)
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def interval_count(self) -> int:
        """Number of stored intervals."""

    @property
    @abstractmethod
    def index_entry_count(self) -> int:
        """Total index entries -- the y-axis of the paper's Figure 12."""

    @property
    def redundancy(self) -> float:
        """Index entries per stored interval (T-index's problem metric)."""
        if self.interval_count == 0:
            return 0.0
        return self.index_entry_count / self.interval_count

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def extend(self, intervals: Iterable[IntervalRecord]) -> None:
        """Insert many intervals one by one (dynamic workload)."""
        for lower, upper, interval_id in intervals:
            self.insert(lower, upper, interval_id)
