"""The virtual backbone of the Relational Interval Tree.

This module is the heart of the paper's Section 3: a binary search tree over
the integer domain that is *never materialised*.  All navigation happens with
integer arithmetic ("consuming no I/O operations", Section 3.3), and the only
persistent state is the O(1) parameter set of Section 3.4:

``offset``
    Shift fixed at the first insertion so the data space starts near 0.
``left_root`` / ``right_root``
    Roots of the negative and positive subtrees under the global root 0,
    each growing by doubling as the data space expands at either end.
``minstep``
    The smallest descent step at which any interval was registered; query
    walks never descend below it (the Lemma of Section 3.4).  ``None`` means
    "infinity" (nothing registered below the roots yet); ``0`` encodes the
    paper's conceptual value 0.5 (an interval was registered at leaf level).

The structure of the virtual tree: node values at *level i* are the odd
multiples of ``2**i``; the root of a subtree spanning ``(0, 2*R)`` is ``R``.
An interval ``(l, u)`` is registered at its *fork node*, the topmost node
``w`` with ``l <= w <= u`` (Figure 3), found by bisection (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .interval import validate_interval

#: Guard on interval bounds so that reserved fork values for ``now`` and
#: ``infinity`` (Section 4.6) can never collide with a real backbone node.
MAX_ABS_BOUND = 2**48


@dataclass
class BackboneParams:
    """A snapshot of the O(1) persistent parameter set (for tests/benches)."""

    offset: Optional[int]
    left_root: int
    right_root: int
    minstep: Optional[int]


class VirtualBackbone:
    """Virtual primary structure with dynamic data-space expansion.

    All coordinates handed to :meth:`register` and :meth:`fork_node` are raw
    (unshifted) interval bounds; the backbone applies ``offset`` internally
    and reports *shifted* node values -- the values stored in the ``node``
    column of the relational schema (Figure 6 stores the shifted node but the
    unshifted bounds).
    """

    #: Whether the data space adapts (offset + doubling roots, Section 3.4).
    #: The fixed-height "basic version" of Section 3.3 turns this off.
    adaptive = True

    def __init__(self, use_minstep: bool = True) -> None:
        self.offset: Optional[int] = None
        self.left_root = 0
        self.right_root = 0
        self.minstep: Optional[int] = None
        #: Query-walk pruning by registration granularity (Section 3.4
        #: Lemma).  Disable only for the A3 ablation benchmark.
        self.use_minstep = use_minstep

    # ------------------------------------------------------------------
    # registration (Figure 6)
    # ------------------------------------------------------------------
    def register(self, lower: int, upper: int) -> int:
        """Compute the fork node for an insertion, updating all parameters.

        Returns the shifted node value to store in the ``node`` column.
        This is a faithful transcription of the paper's Figure 6.
        """
        validate_interval(lower, upper)
        self._check_domain(lower, upper)
        if self.offset is None:
            if not self.adaptive:
                raise ValueError(
                    "non-adaptive backbone must be initialised with a "
                    "fixed offset and roots"
                )
            self.offset = lower
        l = lower - self.offset
        u = upper - self.offset
        if self.adaptive:
            # Expand the data space at either end (doubling keeps it O(1)).
            if u < 0 and l <= 2 * self.left_root:
                self.left_root = -(2 ** _floor_log2(-l))
            if 0 < l and u >= 2 * self.right_root:
                self.right_root = 2 ** _floor_log2(u)
        elif not (2 * self.left_root < l and u < 2 * self.right_root):
            raise ValueError(
                f"interval ({lower}, {upper}) outside the fixed data space "
                f"({2 * self.left_root}, {2 * self.right_root}) "
                "of a non-adaptive backbone"
            )
        node, step = self._descend(l, u)
        if node != 0 and (self.minstep is None or step < self.minstep):
            self.minstep = step
        return node

    def fork_node(self, lower: int, upper: int) -> int:
        """Compute the fork node without mutating any parameter.

        Used for deletions and for query-side reasoning; requires that the
        interval lies inside the currently covered data space (which holds
        for any interval previously registered, because roots only grow).
        """
        validate_interval(lower, upper)
        if self.offset is None:
            raise ValueError("fork_node on an empty backbone (no offset yet)")
        l = lower - self.offset
        u = upper - self.offset
        node, _step = self._descend(l, u)
        return node

    def _descend(self, l: int, u: int) -> tuple[int, int]:
        """Bisection descent of Figure 4/6; returns (fork, final step)."""
        if u < 0:
            node = self.left_root
        elif 0 < l:
            node = self.right_root
        else:
            return 0, 0
        step = abs(node) // 2
        while step >= 1:
            if u < node:
                node -= step
            elif node < l:
                node += step
            else:
                break
            step //= 2
        else:
            # Loop exhausted: registered at leaf level; the paper's
            # conceptual step 0.5 is stored as the integer 0.
            step = 0
        return node, step

    # ------------------------------------------------------------------
    # query-side walks (Sections 4.1-4.3)
    # ------------------------------------------------------------------
    def walk_toward(self, key_shifted: int) -> list[int]:
        """Nodes on the path from the global root toward ``key_shifted``.

        The walk starts at the global root 0, steps into the left or right
        subtree, and bisects toward the key, stopping at ``minstep``
        granularity -- "a query algorithm does not need to descend deeper
        than to level i_min" (Section 3.4).  Purely arithmetical: no I/O.
        """
        path = [0]
        key = key_shifted
        if key == 0:
            return path
        if key < 0:
            root = self.left_root
        else:
            root = self.right_root
        if root == 0:
            return path
        prune = self.minstep if self.use_minstep else 0
        node = root
        step = abs(node) // 2
        while True:
            path.append(node)
            if node == key:
                break
            if prune is None or step <= prune or step < 1:
                break
            if key < node:
                node -= step
            else:
                node += step
            step //= 2
        return path

    def shift(self, value: int) -> int:
        """Raw coordinate -> shifted backbone coordinate."""
        if self.offset is None:
            raise ValueError("shift on an empty backbone")
        return value - self.offset

    # ------------------------------------------------------------------
    # analysis (Section 3.5)
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True until the first registration fixes ``offset``."""
        return self.offset is None

    def params(self) -> BackboneParams:
        """Snapshot of the persistent parameters."""
        return BackboneParams(
            self.offset, self.left_root, self.right_root, self.minstep
        )

    def height(self) -> int:
        """Tree height ``log2(m) + 1`` per Section 3.5.

        ``m = max(-left_root, right_root) / minstep`` where the stored
        ``minstep`` value 0 stands for the conceptual 0.5 and ``None``
        (infinity) clamps ``m`` to 1.  The height depends only on the
        expansion and granularity of the data space -- never on the number
        of stored intervals.
        """
        extent = max(-self.left_root, self.right_root)
        if extent == 0:
            return 1
        if self.minstep is None:
            m = 1.0
        elif self.minstep == 0:
            m = extent / 0.5
        else:
            m = extent / self.minstep
        m = max(m, 1.0)
        return int(_floor_log2(int(m))) + 1

    @staticmethod
    def node_level(node_shifted: int) -> int:
        """Level of a (non-root) backbone node: odd multiples of 2^i sit at i."""
        if node_shifted == 0:
            raise ValueError("the global root 0 has no finite level")
        value = abs(node_shifted)
        level = 0
        while value % 2 == 0:
            value //= 2
            level += 1
        return level

    def _check_domain(self, lower: int, upper: int) -> None:
        anchor = self.offset if self.offset is not None else lower
        if abs(lower - anchor) > MAX_ABS_BOUND or abs(upper - anchor) > MAX_ABS_BOUND:
            raise ValueError(
                f"interval ({lower}, {upper}) exceeds the supported data "
                f"space of +/-2^48 around offset {anchor}"
            )


class FixedHeightBackbone(VirtualBackbone):
    """The "basic version" of Section 3.3: a static tree of height ``h``.

    "In the basic version, the root node is set to 2^(h-1)" and the data
    space is fixed to ``[1, 2^h - 1]``.  No offset shifting, no root
    doubling -- the structure the dynamic expansion of Section 3.4
    improves on.  Used by the A2 ablation benchmark.
    """

    adaptive = False

    def __init__(self, height: int, use_minstep: bool = True) -> None:
        if height < 1:
            raise ValueError(f"height must be positive, got {height}")
        super().__init__(use_minstep=use_minstep)
        self.offset = 0
        self.fixed_height = height
        self.right_root = 2 ** (height - 1)
        self.left_root = 0

    @property
    def is_empty(self) -> bool:
        """A fixed backbone always has a defined data space."""
        return False


def _floor_log2(value: int) -> int:
    """``floor(log2(value))`` for positive integers, exactly."""
    if value < 1:
        raise ValueError(f"log2 of non-positive value {value}")
    return value.bit_length() - 1
