"""String intervals on the RI-tree (paper Section 7).

The paper's conclusion names the management of *string intervals* as a
promising extension: ranges over an ordered string domain, e.g. name ranges
``["Anderson", "Curie"]`` in a directory, or key ranges in a distributed
catalogue.  The backbone needs integer coordinates, so strings must be
mapped order-preservingly onto integers.

This module uses a *prefix quantisation*: a string maps to the integer
value of its first ``prefix_bytes`` bytes (big-endian, zero-padded).  The
mapping is monotone -- ``a <= b`` implies ``code(a) <= code(b)`` -- so a
string interval maps to an integer interval that *covers* it, and an
integer-level intersection query returns a candidate superset.  Candidates
are refined against the exact stored strings, which the tree keeps in a
side dictionary; only intervals whose bounds share a full prefix with the
query bounds can appear as false positives, so the refinement overhead is
bounded by the prefix collision rate (measurable via
:attr:`StringIntervalTree.code_collision_rate`).

This is the role the paper's Skeleton-Index remark assigns to a partial
materialisation of the primary structure: fixing a data-distribution-aware
discretisation of an unbounded, non-numeric domain.
"""

from __future__ import annotations

from typing import Optional

from ..engine.database import Database
from .ritree import RITree

#: Bytes of the string participating in the integer code.  Five bytes keep
#: codes within the backbone's +/-2^48 data-space guard.
DEFAULT_PREFIX_BYTES = 5


def string_code(text: str, prefix_bytes: int = DEFAULT_PREFIX_BYTES) -> int:
    """Order-preserving integer code of a string's byte prefix."""
    raw = text.encode("utf-8")[:prefix_bytes]
    return int.from_bytes(raw.ljust(prefix_bytes, b"\x00"), "big")


class StringIntervalTree:
    """Intervals over an ordered string domain, indexed by an RI-tree.

    Example
    -------
    >>> tree = StringIntervalTree()
    >>> tree.insert("baker", "dodgson", interval_id=1)
    >>> tree.insert("adams", "curie", interval_id=2)
    >>> sorted(tree.intersection("cantor", "euler"))
    [1, 2]
    """

    def __init__(
        self,
        db: Optional[Database] = None,
        prefix_bytes: int = DEFAULT_PREFIX_BYTES,
        name: str = "StringIntervals",
    ) -> None:
        if not 1 <= prefix_bytes <= 5:
            raise ValueError(
                f"prefix_bytes {prefix_bytes} outside [1, 5] (backbone "
                "coordinates are capped at 2^48)"
            )
        self.prefix_bytes = prefix_bytes
        self._tree = RITree(db, name=name)
        self._bounds: dict[int, tuple[str, str]] = {}
        self._collisions = 0

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, lower: str, upper: str, interval_id: int) -> None:
        """Insert the closed string interval ``[lower, upper]``."""
        self._check_order(lower, upper)
        if interval_id in self._bounds:
            raise KeyError(f"duplicate id {interval_id}")
        code_lower = string_code(lower, self.prefix_bytes)
        code_upper = string_code(upper, self.prefix_bytes)
        if code_lower == code_upper and lower != upper:
            self._collisions += 1
        self._tree.insert(code_lower, code_upper, interval_id)
        self._bounds[interval_id] = (lower, upper)

    def delete(self, lower: str, upper: str, interval_id: int) -> None:
        """Delete a previously inserted string interval."""
        stored = self._bounds.get(interval_id)
        if stored != (lower, upper):
            raise KeyError((lower, upper, interval_id))
        self._tree.delete(
            string_code(lower, self.prefix_bytes),
            string_code(upper, self.prefix_bytes),
            interval_id,
        )
        del self._bounds[interval_id]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def intersection(self, lower: str, upper: str) -> list[int]:
        """Ids of stored string intervals intersecting ``[lower, upper]``.

        Quantised candidates are refined against the exact bounds, so the
        result is exact whatever the prefix collision rate.
        """
        self._check_order(lower, upper)
        code_lower = string_code(lower, self.prefix_bytes)
        code_upper = string_code(upper, self.prefix_bytes)
        results = []
        for interval_id in self._tree.intersection(code_lower, code_upper):
            stored_lower, stored_upper = self._bounds[interval_id]
            if stored_lower <= upper and stored_upper >= lower:
                results.append(interval_id)
        return results

    def stab(self, point: str) -> list[int]:
        """Ids of stored string intervals containing ``point``."""
        return self.intersection(point, point)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def interval_count(self) -> int:
        """Number of stored string intervals."""
        return self._tree.interval_count

    @property
    def code_collision_rate(self) -> float:
        """Fraction of intervals whose bounds collapsed to one code.

        A high rate signals that ``prefix_bytes`` is too coarse for the
        data (e.g. keys sharing long prefixes) and refinement work grows.
        """
        if not self._bounds:
            return 0.0
        return self._collisions / len(self._bounds)

    @property
    def backbone_height(self) -> int:
        """Height of the underlying integer backbone."""
        return self._tree.height

    def _check_order(self, lower: str, upper: str) -> None:
        if not isinstance(lower, str) or not isinstance(upper, str):
            raise TypeError("string intervals need str bounds")
        if lower > upper:
            raise ValueError(f"interval lower bound {lower!r} exceeds {upper!r}")
