"""The paper's primary contribution: the Relational Interval Tree.

Public surface:

* :class:`~repro.core.ritree.RITree` -- the access method (Sections 3-4);
* :class:`~repro.core.temporal.TemporalRITree` -- ``now``/``infinity``
  support (Section 4.6);
* :mod:`~repro.core.topology` -- Allen's 13 relation queries (Section 4.5);
* :mod:`~repro.core.predicates` -- ``intersects``/``stab``/Allen predicates
  as first-class objects plus parameterized query families
  (``range_duration``), compiled per backend through
  :meth:`~repro.core.access.IntervalStore.query`;
* :mod:`~repro.core.join` -- interval equi-overlap joins: index-nested-loop
  over the batched scan plan, a Piatov-style plane sweep, and the
  brute-force oracle, all behind one :class:`~repro.core.join.JoinStrategy`
  API;
* :class:`~repro.core.backbone.VirtualBackbone` and
  :func:`~repro.core.transient.collect_query_nodes` -- the virtual primary
  structure and transient query tables, exposed for inspection and tests;
* :mod:`~repro.core.stores` -- the unified construction entry point:
  :func:`~repro.core.stores.create_store` builds any registered backend
  by name;
* :class:`~repro.core.router.ShardedStore` -- the domain-sharding router
  presenting many backend shards as one store, with cut-crossing
  replication and first-occurrence deduplication;
* :class:`~repro.core.access.AccessMethod` -- the interface shared with the
  competitor methods in :mod:`repro.methods`.
"""

from .access import AccessMethod, IntervalRecord, IntervalStore
from .backbone import (
    MAX_ABS_BOUND,
    BackboneParams,
    FixedHeightBackbone,
    VirtualBackbone,
)
from .costmodel import (
    BoundSummary,
    JoinEstimate,
    JoinStrategyCost,
    QueryEstimate,
    RITreeCostModel,
    choose_join_strategy,
    expected_join_pairs,
)
from .hint import HintCostModel, HintStore
from .interval import Interval, validate_interval
from .predicates import (
    FAMILIES,
    JOIN_PREDICATES,
    PREDICATES,
    CompiledQuery,
    IntervalPredicate,
    QueryFamily,
    compile_query,
    get_family,
    get_predicate,
    range_duration,
    register_family,
)
from .join import (
    JOIN_STRATEGIES,
    AutoJoin,
    IndexNestedLoopJoin,
    JoinPair,
    JoinStrategy,
    NestedLoopJoin,
    SweepJoin,
    interval_join,
)
from .ritree import RITree
from .router import ShardedStore, derive_cuts
from .stores import available_backends, create_store, register_backend
from .strings import StringIntervalTree, string_code
from .temporal import (
    FORK_INF,
    FORK_NOW,
    UPPER_INF,
    UPPER_NOW,
    TemporalRITree,
)
from .transient import QueryNodes, collect_query_nodes

__all__ = [
    "AccessMethod",
    "AutoJoin",
    "BackboneParams",
    "BoundSummary",
    "JoinEstimate",
    "JoinStrategyCost",
    "choose_join_strategy",
    "expected_join_pairs",
    "FixedHeightBackbone",
    "FORK_INF",
    "FORK_NOW",
    "HintCostModel",
    "HintStore",
    "IndexNestedLoopJoin",
    "Interval",
    "IntervalPredicate",
    "IntervalRecord",
    "IntervalStore",
    "get_predicate",
    "get_family",
    "compile_query",
    "range_duration",
    "register_family",
    "CompiledQuery",
    "QueryFamily",
    "FAMILIES",
    "JOIN_PREDICATES",
    "JOIN_STRATEGIES",
    "PREDICATES",
    "JoinPair",
    "JoinStrategy",
    "MAX_ABS_BOUND",
    "NestedLoopJoin",
    "SweepJoin",
    "QueryEstimate",
    "QueryNodes",
    "RITree",
    "RITreeCostModel",
    "ShardedStore",
    "StringIntervalTree",
    "available_backends",
    "create_store",
    "derive_cuts",
    "register_backend",
    "TemporalRITree",
    "string_code",
    "UPPER_INF",
    "UPPER_NOW",
    "VirtualBackbone",
    "collect_query_nodes",
    "interval_join",
    "validate_interval",
]
