"""Unified store construction: every backend behind one named factory.

The repo grows interval-store backends faster than it grows call sites
that construct them, so construction is centralised here: a registry
mapping a backend *name* to a factory, with :func:`create_store` as the
single entry point every consumer -- the serving layer, the shared
conformance suite, the examples, the benchmark harness -- goes through.
Names are normalised (``sql_ritree`` and ``sql-ritree`` are the same
backend), so callers can spell them however their configuration format
prefers.

Registering a backend is step 8 of the checklist in
``docs/writing-a-backend.md``::

    from repro.core.stores import register_backend
    register_backend("mystore", MyStore, description="...")

after which ``create_store("mystore", **opts)`` constructs it anywhere,
including behind the sharding router (``create_store("sharded",
backend="mystore", ...)``) and the interval query service
(``repro.service``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .access import IntervalStore


@dataclass(frozen=True)
class BackendEntry:
    """One registered backend: canonical name, factory, description."""

    name: str
    factory: Callable[..., IntervalStore]
    description: str


_REGISTRY: dict[str, BackendEntry] = {}


def _canonical(name: str) -> str:
    """Normalise a backend name (case and ``_``/``-`` insensitive)."""
    if not isinstance(name, str) or not name.strip():
        raise ValueError(f"backend name must be a non-empty string, "
                         f"got {name!r}")
    return name.strip().lower().replace("_", "-")


def register_backend(
    name: str,
    factory: Callable[..., IntervalStore],
    *,
    description: str = "",
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name`` for :func:`create_store`.

    ``factory`` is any callable returning an :class:`~repro.core.access.
    IntervalStore` when invoked with the keyword options forwarded by
    :func:`create_store` -- usually the store class itself.  Registering
    an already-taken name raises unless ``replace=True`` (tests swapping
    in instrumented backends).
    """
    key = _canonical(name)
    if key in _REGISTRY and not replace:
        raise ValueError(f"backend {key!r} is already registered; pass "
                         f"replace=True to override it")
    _REGISTRY[key] = BackendEntry(key, factory, description)


def available_backends() -> list[str]:
    """Sorted canonical names of every registered backend."""
    return sorted(_REGISTRY)


def backend_description(name: str) -> str:
    """The one-line description a backend was registered with."""
    return _entry(name).description


def _entry(name: str) -> BackendEntry:
    key = _canonical(name)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of "
            f"{available_backends()}"
        ) from None


def create_store(name: str, **opts) -> IntervalStore:
    """Construct a backend by name -- the single construction entry point.

    ``opts`` are forwarded to the backend's factory verbatim, so each
    backend keeps its own constructor surface (``RITree(coalesce_scans=
    ...)``, ``HintStore(levels=...)``, ``ShardedStore.create(backend=...,
    shard_count=...)`` behind ``"sharded"``).

    >>> from repro.core.stores import create_store, available_backends
    >>> sorted(available_backends())[:2]
    ['hint', 'ritree']
    >>> store = create_store("hint")
    >>> store.insert(3, 9, interval_id=1)
    >>> store.intersection_count(5, 20)
    1
    """
    return _entry(name).factory(**opts)


# ----------------------------------------------------------------------
# built-in backends (factories import lazily to avoid module cycles)
# ----------------------------------------------------------------------
def _make_ritree(**opts) -> IntervalStore:
    from .ritree import RITree

    return RITree(**opts)


def _make_temporal_ritree(**opts) -> IntervalStore:
    from .temporal import TemporalRITree

    return TemporalRITree(**opts)


def _make_sql_ritree(**opts) -> IntervalStore:
    import sqlite3

    from ..sql import SQLRITree

    if "connection" not in opts:
        # The service runs stores on an executor thread, never the
        # constructing one, so the factory owns the thread-affinity
        # decision for the default in-memory connection.
        check = opts.pop("check_same_thread", True)
        opts["connection"] = sqlite3.connect(
            ":memory:", check_same_thread=check
        )
    return SQLRITree(**opts)


def _make_hint(**opts) -> IntervalStore:
    from .hint import HintStore

    return HintStore(**opts)


def _make_sharded(**opts) -> IntervalStore:
    from .router import ShardedStore

    return ShardedStore.create(**opts)


register_backend(
    "ritree", _make_ritree,
    description="RI-tree on the simulated disk engine (paper Sections 3-4)",
)
register_backend(
    "temporal-ritree", _make_temporal_ritree,
    description="RI-tree with now/infinity temporal rows (Section 4.6)",
)
register_backend(
    "sql-ritree", _make_sql_ritree,
    description="RI-tree on sqlite3: set-at-a-time Figure 9 SQL",
)
register_backend(
    "hint", _make_hint,
    description="HINT-style hierarchical main-memory store",
)
register_backend(
    "sharded", _make_sharded,
    description="domain-sharding router over any registered backend",
)
