"""The interval value type used across the library.

Intervals are closed ranges ``[lower, upper]`` over the integers, exactly as
in the paper: bounding points come from a discrete domain (the evaluation
uses ``[0, 2^20 - 1]``), and points are represented by degenerate intervals
``(p, p)`` (Section 3.3).
"""

from __future__ import annotations

from typing import NamedTuple


class Interval(NamedTuple):
    """A closed integer interval ``[lower, upper]``."""

    lower: int
    upper: int

    @property
    def length(self) -> int:
        """``upper - lower`` (0 for points), the paper's duration measure."""
        return self.upper - self.lower

    @property
    def is_point(self) -> bool:
        """Whether this is a degenerate interval ``(p, p)``."""
        return self.lower == self.upper

    def intersects(self, other: "Interval") -> bool:
        """Closed-interval intersection predicate (the paper's core query)."""
        return self.lower <= other.upper and other.lower <= self.upper

    def contains_point(self, point: int) -> bool:
        """Whether ``point`` lies inside the interval (stabbing predicate)."""
        return self.lower <= point <= self.upper

    def contains(self, other: "Interval") -> bool:
        """Whether ``other`` lies fully inside this interval (non-strict)."""
        return self.lower <= other.lower and other.upper <= self.upper

    def __str__(self) -> str:
        return f"[{self.lower}, {self.upper}]"


def validate_interval(lower: int, upper: int) -> None:
    """Reject malformed bounds early with a clear message."""
    if not isinstance(lower, int) or not isinstance(upper, int):
        raise TypeError(
            f"interval bounds must be integers, got ({lower!r}, {upper!r})"
        )
    if lower > upper:
        raise ValueError(f"interval lower bound {lower} exceeds upper bound {upper}")
