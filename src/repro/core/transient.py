"""Transient query tables: ``leftNodes`` and ``rightNodes``.

Section 4.2 of the paper: while descending the virtual backbone, the nodes
whose secondary lists must be scanned "are collected in transient lists
leftNodes and rightNodes ... causing no I/O effort".  Section 4.3 then folds
the ``BETWEEN`` branch of the preliminary query (Figure 8) into ``leftNodes``
by widening its schema from ``(node)`` to ``(min, max)`` -- justified by the
two-part lemma proved there.  This module reproduces exactly that
construction.

``left`` entries are ``(min, max)`` node ranges scanned against the
*upperIndex* with the residual predicate ``upper >= :lower``; ``right``
entries are single nodes scanned against the *lowerIndex* with
``lower <= :upper``.  The three original branches address disjoint node sets,
so the result needs no duplicate elimination (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .backbone import VirtualBackbone
from .interval import validate_interval


@dataclass
class QueryNodes:
    """The two transient collections for one intersection query.

    Node values are in *shifted* backbone coordinates, matching the ``node``
    column of the relational schema.
    """

    left: list[tuple[int, int]] = field(default_factory=list)
    right: list[int] = field(default_factory=list)

    @property
    def total_entries(self) -> int:
        """Number of index range scans the query will perform (O(h))."""
        return len(self.left) + len(self.right)


def collect_query_nodes(
    backbone: VirtualBackbone, lower: int, upper: int
) -> QueryNodes:
    """Descend the virtual backbone for query ``[lower, upper]``.

    Two bisection walks -- one toward each query bound -- cover the three
    descents of the original algorithm (Section 4.1): the shared prefix down
    to the query's fork node is visited by both walks, and each node is
    classified at most once because no node is simultaneously left of
    ``lower`` and right of ``upper``.

    * nodes ``w < lower`` become singleton ``(w, w)`` ranges in ``left``
      (their U(w) lists are scanned for ``upper >= lower``),
    * nodes ``w > upper`` go to ``right`` (L(w) scanned for
      ``lower <= upper``),
    * nodes covered by the query are handled wholesale by the final
      ``(lower, upper)`` range appended to ``left`` -- the Section 4.3
      transformation, whose lemma guarantees the residual predicate
      ``upper >= :lower`` filters nothing there.

    Purely arithmetical; performs no I/O.
    """
    validate_interval(lower, upper)
    query_nodes = QueryNodes()
    if backbone.is_empty:
        return query_nodes
    l = backbone.shift(lower)
    u = backbone.shift(upper)
    for node in backbone.walk_toward(l):
        if node < l:
            query_nodes.left.append((node, node))
    for node in backbone.walk_toward(u):
        if node > u:
            query_nodes.right.append(node)
    query_nodes.left.append((l, u))
    return query_nodes
