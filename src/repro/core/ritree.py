"""The Relational Interval Tree over the storage engine.

This is the paper's primary contribution assembled from its parts: the
relational schema of Figure 2, the insertion procedure of Figure 6, and the
two-branch intersection query of Figure 9 executed with the access plan of
Figure 10 (nested loop over the transient node collections, one index range
scan per node entry, no duplicate elimination).

Storage layout (Figure 2, with ``id`` included in the indexes as in
Section 4.3's execution plan)::

    CREATE TABLE Intervals (node int, lower int, upper int, id int);
    CREATE INDEX lowerIndex ON Intervals (node, lower, id);
    CREATE INDEX upperIndex ON Intervals (node, upper, id);

Complexities (Sections 3.3 and 4.4): O(n/b) space, O(log_b n) insert and
delete, O(h * log_b n + r/b) intersection query where ``h`` is the virtual
backbone height -- independent of ``n``.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from ..engine.database import Database
from .access import AccessMethod, IntervalRecord
from .backbone import VirtualBackbone
from .interval import validate_interval
from .transient import QueryNodes, collect_query_nodes


class RITree(AccessMethod):
    """Relational Interval Tree: dynamic interval index on two B+-trees.

    Parameters
    ----------
    db:
        Storage engine instance to create the relation in; a private one
        (2 KB blocks, 200-block cache -- the paper's setup) when omitted.
    name:
        Relation name, so several trees can share one database.

    Example
    -------
    >>> tree = RITree()
    >>> tree.insert(3, 9, interval_id=1)
    >>> tree.insert(5, 15, interval_id=2)
    >>> sorted(tree.intersection(8, 12))
    [1, 2]
    """

    method_name = "RI-tree"

    def __init__(self, db: Optional[Database] = None,
                 name: str = "Intervals",
                 backbone: Optional[VirtualBackbone] = None) -> None:
        super().__init__(db)
        self.backbone = backbone if backbone is not None else VirtualBackbone()
        self.table = self.db.create_table(name, ["node", "lower", "upper", "id"])
        self.table.create_index("lowerIndex", ["node", "lower", "id"])
        self.table.create_index("upperIndex", ["node", "upper", "id"])
        # Extension hook (Section 4.6): extra fork nodes whose entries are
        # injected into the rightNodes scan list at query time.
        self._extra_right_nodes: list[Callable[[int, int], Optional[int]]] = []
        # Conservative data-space envelope (never shrunk by deletions);
        # used by the before/after topological queries.
        self._min_lower: Optional[int] = None
        self._max_upper: Optional[int] = None

    # ------------------------------------------------------------------
    # updates (Section 3.3 / Figure 6)
    # ------------------------------------------------------------------
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """Insert ``[lower, upper]`` with ``interval_id`` (O(log_b n) I/Os).

        The fork node is computed arithmetically (no I/O); the relational
        insert maintains both composite indexes.
        """
        node = self.backbone.register(lower, upper)
        self.table.insert((node, lower, upper, interval_id))
        self._note_bounds(lower, upper)

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Delete the exact record ``(lower, upper, interval_id)``.

        The fork node is recomputed -- it is a structural property of the
        interval, stable under the monotonic root expansion -- and the row
        is located by an exact scan of the lowerIndex.
        """
        validate_interval(lower, upper)
        if self.backbone.is_empty:
            raise KeyError((lower, upper, interval_id))
        node = self.backbone.fork_node(lower, upper)
        key = (node, lower, interval_id)
        for entry in self.table.index_scan("lowerIndex", key, key):
            rowid = entry[3]
            # The lowerIndex key omits the upper bound; confirm it on the
            # base row so deleting (l, u, id) cannot remove (l, u', id).
            if self.table.fetch(rowid)[2] == upper:
                self.table.delete(rowid)
                return
        raise KeyError((lower, upper, interval_id))

    def bulk_load(self, intervals: Sequence[IntervalRecord]) -> None:
        """Bottom-up load: register all fork nodes, then build the indexes."""
        rows = []
        for lower, upper, interval_id in intervals:
            node = self.backbone.register(lower, upper)
            rows.append((node, lower, upper, interval_id))
            self._note_bounds(lower, upper)
        self.table.bulk_load(rows)

    # ------------------------------------------------------------------
    # queries (Section 4 / Figures 9 and 10)
    # ------------------------------------------------------------------
    def intersection(self, lower: int, upper: int) -> list[int]:
        """Ids of all intervals intersecting ``[lower, upper]``.

        Executes the final two-branch query of Figure 9:

        * for each ``(min, max)`` in the transient ``leftNodes``: an index
          range scan of the upperIndex restricted to ``upper >= lower``;
        * for each node in ``rightNodes``: an index range scan of the
          lowerIndex restricted to ``lower <= upper``.

        The result is duplicate-free by construction (Section 4.2).
        """
        validate_interval(lower, upper)
        return list(self._run_query(lower, upper))

    def query_nodes(self, lower: int, upper: int) -> QueryNodes:
        """The transient node collections for a query (exposed for tests)."""
        validate_interval(lower, upper)
        return collect_query_nodes(self.backbone, lower, upper)

    def _run_query(self, lower: int, upper: int) -> Iterator[int]:
        if self.backbone.is_empty:
            if not self._extra_right_nodes:
                return
            query_nodes = QueryNodes()
        else:
            query_nodes = collect_query_nodes(self.backbone, lower, upper)
        for node in self._collect_extra_right_nodes(lower, upper):
            query_nodes.right.append(node)
        # Branch 1: leftNodes JOIN upperIndex (node range, upper >= :lower).
        for node_min, node_max in query_nodes.left:
            if node_min == node_max:
                scan = self.table.index_scan(
                    "upperIndex", (node_min, lower), (node_max,))
            else:
                # Covered node range: the Section 4.3 lemma makes the
                # residual predicate implicit, so the scan is pure.
                scan = self.table.index_scan(
                    "upperIndex", (node_min,), (node_max,))
            for entry in scan:
                yield entry[2]
        # Branch 2: rightNodes JOIN lowerIndex (node equality, lower <= :upper).
        for node in query_nodes.right:
            for entry in self.table.index_scan(
                    "lowerIndex", (node,), (node, upper)):
                yield entry[2]

    def intersection_records(self, lower: int,
                             upper: int) -> Iterator[tuple[int, int, int]]:
        """Like :meth:`intersection`, but yields ``(lower, upper, id)``.

        Each index entry carries only one interval bound, so the other one
        is fetched from the base table by rowid -- the classical "table
        access by index rowid" step.  Used by the topological queries of
        Section 4.5, which refine on both bounds.
        """
        validate_interval(lower, upper)
        if self.backbone.is_empty:
            return
        query_nodes = collect_query_nodes(self.backbone, lower, upper)
        for node in self._collect_extra_right_nodes(lower, upper):
            query_nodes.right.append(node)
        for node_min, node_max in query_nodes.left:
            if node_min == node_max:
                scan = self.table.index_scan(
                    "upperIndex", (node_min, lower), (node_max,))
            else:
                scan = self.table.index_scan(
                    "upperIndex", (node_min,), (node_max,))
            for entry in scan:
                row = self.table.fetch(entry[3])
                yield row[1], row[2], row[3]
        for node in query_nodes.right:
            for entry in self.table.index_scan(
                    "lowerIndex", (node,), (node, upper)):
                row = self.table.fetch(entry[3])
                yield row[1], row[2], row[3]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def min_lower(self) -> Optional[int]:
        """Smallest lower bound ever inserted (conservative under deletes)."""
        return self._min_lower

    @property
    def max_upper(self) -> Optional[int]:
        """Largest upper bound ever inserted (conservative under deletes)."""
        return self._max_upper

    def _note_bounds(self, lower: int, upper: int) -> None:
        if self._min_lower is None or lower < self._min_lower:
            self._min_lower = lower
        if self._max_upper is None or upper > self._max_upper:
            self._max_upper = upper

    @property
    def interval_count(self) -> int:
        """Number of stored intervals."""
        return self.table.row_count

    @property
    def index_entry_count(self) -> int:
        """Two index entries per interval (Figure 12: ``2n``)."""
        return sum(len(index.tree) for index in self.table.indexes.values())

    @property
    def height(self) -> int:
        """Current virtual backbone height (Section 3.5)."""
        return self.backbone.height()

    # ------------------------------------------------------------------
    # extension hook (used by repro.core.temporal)
    # ------------------------------------------------------------------
    def add_right_node_hook(
            self, hook: Callable[[int, int], Optional[int]]) -> None:
        """Register a query-time hook returning an extra rightNodes entry.

        The hook receives the raw query bounds and returns a *shifted* node
        value to scan, or ``None``.  Section 4.6 uses this for the reserved
        ``infinity`` and ``now`` fork nodes.
        """
        self._extra_right_nodes.append(hook)

    def _collect_extra_right_nodes(self, lower: int,
                                   upper: int) -> Iterator[int]:
        for hook in self._extra_right_nodes:
            node = hook(lower, upper)
            if node is not None:
                yield node

    def _store_at_node(self, node: int, lower: int, upper: int,
                       interval_id: int) -> None:
        """Store a row at an explicit (reserved) fork node -- Section 4.6."""
        self.table.insert((node, lower, upper, interval_id))

    def _delete_at_node(self, node: int, lower: int,
                        interval_id: int) -> None:
        """Delete a row stored at an explicit fork node."""
        key = (node, lower, interval_id)
        for entry in self.table.index_scan("lowerIndex", key, key):
            self.table.delete(entry[3])
            return
        raise KeyError((node, lower, interval_id))
