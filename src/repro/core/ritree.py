"""The Relational Interval Tree over the storage engine.

This is the paper's primary contribution assembled from its parts: the
relational schema of Figure 2, the insertion procedure of Figure 6, and the
two-branch intersection query of Figure 9 executed with the access plan of
Figure 10 (nested loop over the transient node collections, one index range
scan per node entry, no duplicate elimination).

Storage layout (Figure 2, with ``id`` included in the indexes as in
Section 4.3's execution plan)::

    CREATE TABLE Intervals (node int, lower int, upper int, id int);
    CREATE INDEX lowerIndex ON Intervals (node, lower, id);
    CREATE INDEX upperIndex ON Intervals (node, upper, id);

Complexities (Sections 3.3 and 4.4): O(n/b) space, O(log_b n) insert and
delete, O(h * log_b n + r/b) intersection query where ``h`` is the virtual
backbone height -- independent of ``n``.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from ..engine.bptree import coalesce_ranges
from ..engine.database import Database
from ..engine.errors import SchemaError
from ..engine.serial import pad_high, pad_low
from .access import AccessMethod, IntervalRecord
from .backbone import MAX_ABS_BOUND, VirtualBackbone
from .interval import validate_interval
from .predicates import (
    resolve_join_predicate,
    shim_positional_predicate,
)
from .transient import QueryNodes, collect_query_nodes
from .verify import VerificationReport, verify_engine_tree

#: A compiled scan range: (lo, hi) bounds padded to full index arity.
ScanRange = tuple[tuple[int, ...], tuple[int, ...]]


class RITree(AccessMethod):
    """Relational Interval Tree: dynamic interval index on two B+-trees.

    Queries compile the transient node collections into a *scan plan* (a
    list of index ranges per branch) and execute it through the engine's
    batched scan pipeline: each index leaf arrives as one entry slice, so
    per-result Python work is O(r/b) instead of O(r) while the sequence of
    page requests -- and therefore the logical/physical I/O accounting the
    Section 6 experiments rest on -- is exactly that of the paper's
    range-scan-per-node plan of Figure 10.

    Parameters
    ----------
    db:
        Storage engine instance to create the relation in; a private one
        (2 KB blocks, 200-block cache -- the paper's setup) when omitted.
    name:
        Relation name, so several trees can share one database.
    coalesce_scans:
        When true, scan ranges that touch in index key space are merged
        before execution, saving one B+-tree descent per merged range
        (and collapsing duplicate ranges injected by extension hooks).
        Off by default because fewer descents means fewer logical reads
        than the Figure 10 plan the paper measures -- enable it for
        throughput, disable it to reproduce the paper's I/O counts.

    Example
    -------
    >>> tree = RITree()
    >>> tree.insert(3, 9, interval_id=1)
    >>> tree.insert(5, 15, interval_id=2)
    >>> sorted(tree.intersection(8, 12))
    [1, 2]
    >>> tree.intersection_count(8, 12)
    2
    """

    method_name = "RI-tree"

    def __init__(
        self,
        db: Optional[Database] = None,
        name: str = "Intervals",
        backbone: Optional[VirtualBackbone] = None,
        coalesce_scans: bool = False,
    ) -> None:
        super().__init__(db)
        self.backbone = backbone if backbone is not None else VirtualBackbone()
        self.coalesce_scans = coalesce_scans
        self.name = name
        # The DDL is one atomic WAL batch: a crash between the table and
        # its indexes can never leave a half-created relation on recovery.
        with self.db.atomic():
            self.table = self.db.create_table(
                name, ["node", "lower", "upper", "id"]
            )
            self.table.create_index("lowerIndex", ["node", "lower", "id"])
            self.table.create_index("upperIndex", ["node", "upper", "id"])
        self._bind_runtime_state()

    def _bind_runtime_state(self) -> None:
        """Volatile (non-schema) state shared by ``__init__`` and attach."""
        # Direct B+-tree handles for the query executor: the scan plan is
        # executed against the trees, bypassing the per-scan catalog lookup.
        self._lower_tree = self.table.index("lowerIndex").tree
        self._upper_tree = self.table.index("upperIndex").tree
        # Extension hook (Section 4.6): extra fork nodes whose entries are
        # injected into the rightNodes scan list at query time.
        self._extra_right_nodes: list[Callable[[int, int], Optional[int]]] = []
        # Conservative data-space envelope (never shrunk by deletions);
        # used by the before/after topological queries.
        self._min_lower: Optional[int] = None
        self._max_upper: Optional[int] = None
        # Lazily built optimizer statistics (see cost_model()).
        self._cost_model = None

    # ------------------------------------------------------------------
    # durability (attach after recovery, metadata logging)
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, db: Database, name: str = "Intervals") -> "RITree":
        """Bind a store object to an existing relation (post-recovery).

        :meth:`~repro.engine.database.Database.recover` rebuilds tables
        and indexes from the WAL, but the store-level state -- backbone
        parameters, data-space envelope, the temporal clock -- lives in
        the ``meta`` records the mutators log.  ``attach`` restores that
        state from :meth:`~repro.engine.database.Database.store_meta` and
        returns a fully operational store over the recovered relation.
        """
        if not db.has_table(name):
            raise SchemaError(f"cannot attach {cls.__name__}: no table {name}")
        store = cls.__new__(cls)
        store._init_attached(db, name, db.store_meta(name))
        return store

    def _init_attached(
        self, db: Database, name: str, meta: Optional[dict]
    ) -> None:
        AccessMethod.__init__(self, db)
        self.backbone = VirtualBackbone()
        self.coalesce_scans = False
        self.name = name
        self.table = db.table(name)
        self._bind_runtime_state()
        if meta:
            self._restore_meta(meta)

    def _restore_meta(self, meta: dict) -> None:
        self.backbone.offset = meta.get("offset")
        self.backbone.left_root = meta.get("left_root", 0)
        self.backbone.right_root = meta.get("right_root", 0)
        self.backbone.minstep = meta.get("minstep")
        self._min_lower = meta.get("min_lower")
        self._max_upper = meta.get("max_upper")
        self.coalesce_scans = bool(meta.get("coalesce_scans", False))

    def _durable_meta(self) -> dict:
        """The store state a WAL ``meta`` record must carry to reattach."""
        return {
            "kind": "ritree",
            "offset": self.backbone.offset,
            "left_root": self.backbone.left_root,
            "right_root": self.backbone.right_root,
            "minstep": self.backbone.minstep,
            "min_lower": self._min_lower,
            "max_upper": self._max_upper,
            "coalesce_scans": self.coalesce_scans,
        }

    def _log_meta(self) -> None:
        self.db.log_meta(self.name, self._durable_meta())

    # ------------------------------------------------------------------
    # updates (Section 3.3 / Figure 6)
    # ------------------------------------------------------------------
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """Insert ``[lower, upper]`` with ``interval_id`` (O(log_b n) I/Os).

        The fork node is computed arithmetically (no I/O); the relational
        insert maintains both composite indexes.
        """
        node = self.backbone.register(lower, upper)
        with self.db.atomic():
            self.table.insert((node, lower, upper, interval_id))
            self._note_bounds(lower, upper)
            self._log_meta()

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Delete the exact record ``(lower, upper, interval_id)``.

        The fork node is recomputed -- it is a structural property of the
        interval, stable under the monotonic root expansion -- and the row
        is located by an exact scan of the lowerIndex.
        """
        validate_interval(lower, upper)
        if self.backbone.is_empty:
            raise KeyError((lower, upper, interval_id))
        node = self.backbone.fork_node(lower, upper)
        key = (node, lower, interval_id)
        for entry in self.table.index_scan("lowerIndex", key, key):
            rowid = entry[3]
            # The lowerIndex key omits the upper bound; confirm it on the
            # base row so deleting (l, u, id) cannot remove (l, u', id).
            if self.table.fetch(rowid)[2] == upper:
                with self.db.atomic():
                    self.table.delete(rowid)
                    self._log_meta()
                return
        raise KeyError((lower, upper, interval_id))

    def bulk_load(self, intervals: Sequence[IntervalRecord]) -> None:
        """Bottom-up load: register all fork nodes, then build the indexes."""
        rows = []
        for lower, upper, interval_id in intervals:
            node = self.backbone.register(lower, upper)
            rows.append((node, lower, upper, interval_id))
            self._note_bounds(lower, upper)
        with self.db.atomic():
            self.table.bulk_load(rows)
            self._log_meta()

    def extend(self, intervals) -> None:
        """Insert many intervals as *one* atomic batch (one group commit).

        A crash anywhere inside the batch rolls the whole extension back:
        recovery restores the pre-batch store, never a partial one.
        """
        with self.db.atomic():
            for lower, upper, interval_id in intervals:
                self.insert(lower, upper, interval_id)

    def append_batch(self, intervals) -> None:
        """Streaming append: one group commit, one meta record per batch.

        The write-optimised ingest path.  Fork nodes are registered up
        front -- under the increasing-ending-time regime each arrival
        lands on the backbone's rightmost descent, and a failed
        registration leaves table and WAL untouched (root growth and
        minstep refinement are conservative) -- then every row rides in
        a single ``db.atomic()`` batch closed by *one* ``_log_meta()``.
        Compared to :meth:`extend` this defers the metadata persistence
        across the batch: one WAL force and one ``meta`` record per
        batch instead of one ``meta`` record per inserted row.
        """
        rows = []
        for lower, upper, interval_id in intervals:
            node = self.backbone.register(lower, upper)
            rows.append((node, lower, upper, interval_id))
        if not rows:
            return
        with self.db.atomic():
            for node, lower, upper, interval_id in rows:
                self.table.insert((node, lower, upper, interval_id))
                self._note_bounds(lower, upper)
            self._log_meta()

    # ------------------------------------------------------------------
    # queries (Section 4 / Figures 9 and 10)
    # ------------------------------------------------------------------
    def intersection(self, lower: int, upper: int) -> list[int]:
        """Ids of all intervals intersecting ``[lower, upper]``.

        Executes the final two-branch query of Figure 9:

        * for each ``(min, max)`` in the transient ``leftNodes``: an index
          range scan of the upperIndex restricted to ``upper >= lower``;
        * for each node in ``rightNodes``: an index range scan of the
          lowerIndex restricted to ``lower <= upper``.

        The result is duplicate-free by construction (Section 4.2).
        """
        validate_interval(lower, upper)
        results: list[int] = []
        for batch in self._query_batches(lower, upper):
            results.extend([entry[2] for entry in batch])
        return results

    def intersection_count(self, lower: int, upper: int) -> int:
        """Result count of :meth:`intersection` without building id lists.

        Every scan of the Figure 9 plan is pure (no residual predicate
        survives the Section 4.3 transformation), so the count is the sum
        of the scanned leaf-slice lengths: O(1) Python work per leaf, zero
        per result id.  Identical scans, identical I/O trace.
        """
        validate_interval(lower, upper)
        plan = self._plan(lower, upper)
        if plan is None:
            return 0
        upper_ranges, lower_ranges = plan
        count_upper = self._upper_tree.count_range_padded
        total = 0
        for lo, hi in upper_ranges:
            total += count_upper(lo, hi)
        count_lower = self._lower_tree.count_range_padded
        for lo, hi in lower_ranges:
            total += count_lower(lo, hi)
        return total

    def query_nodes(self, lower: int, upper: int) -> QueryNodes:
        """The transient node collections for a query (exposed for tests)."""
        validate_interval(lower, upper)
        return collect_query_nodes(self.backbone, lower, upper)

    # -- plan construction ---------------------------------------------
    def _collect_nodes(self, lower: int, upper: int) -> Optional[QueryNodes]:
        """Transient collections plus hook-injected right nodes."""
        if self.backbone.is_empty:
            if not self._extra_right_nodes:
                return None
            query_nodes = QueryNodes()
        else:
            query_nodes = collect_query_nodes(self.backbone, lower, upper)
        query_nodes.right.extend(
            self._collect_extra_right_nodes(lower, upper))
        return query_nodes

    def _plan(
        self, lower: int, upper: int
    ) -> Optional[tuple[list[ScanRange], list[ScanRange]]]:
        """Compile the transient collections into per-index scan ranges.

        Returns ``(upperIndex ranges, lowerIndex ranges)`` -- branches 1
        and 2 of the Figure 9 query -- with bounds padded to full index
        arity once, at plan time; or ``None`` for a no-op query.  With
        ``coalesce_scans`` enabled, ranges of one index that touch in key
        space are merged into single scans.
        """
        query_nodes = self._collect_nodes(lower, upper)
        if query_nodes is None:
            return None
        arity = self._upper_tree.arity
        upper_ranges: list[ScanRange] = []
        for node_min, node_max in query_nodes.left:
            if node_min == node_max:
                upper_ranges.append((pad_low((node_min, lower), arity),
                                     pad_high((node_max,), arity)))
            else:
                # Covered node range: the Section 4.3 lemma makes the
                # residual predicate implicit, so the scan is pure.
                upper_ranges.append((pad_low((node_min,), arity),
                                     pad_high((node_max,), arity)))
        lower_ranges: list[ScanRange] = [
            (pad_low((node,), arity), pad_high((node, upper), arity))
            for node in query_nodes.right]
        if self.coalesce_scans:
            upper_ranges = coalesce_ranges(upper_ranges, arity)
            lower_ranges = coalesce_ranges(lower_ranges, arity)
        return upper_ranges, lower_ranges

    def _query_batches(
        self, lower: int, upper: int
    ) -> Iterator[list[tuple[int, ...]]]:
        """Execute the scan plan, yielding index-entry batches (leaf slices).

        Both indexes store ``(node, bound, id, rowid)`` entries, so every
        batch exposes the interval id at position 2 and the heap rowid at
        position 3 regardless of the branch it came from.
        """
        plan = self._plan(lower, upper)
        if plan is None:
            return
        upper_ranges, lower_ranges = plan
        scan_upper = self._upper_tree.scan_batches_padded
        for lo, hi in upper_ranges:
            yield from scan_upper(lo, hi)
        scan_lower = self._lower_tree.scan_batches_padded
        for lo, hi in lower_ranges:
            yield from scan_lower(lo, hi)

    # -- reference execution (pre-batching) ----------------------------
    def intersection_per_entry(self, lower: int, upper: int) -> list[int]:
        """The pre-batching reference execution of :meth:`intersection`.

        One index-scan generator per transient node, one generator hop and
        one comparison per returned entry -- the execution the batched
        pipeline replaced.  Retained (and exercised by tests and by
        ``benchmarks/bench_scan_throughput.py``) to keep the pipeline's
        claims falsifiable: identical results, identical logical and
        physical I/O, strictly less Python-level work per id.
        """
        validate_interval(lower, upper)
        return list(self._run_query_per_entry(lower, upper))

    def _run_query_per_entry(self, lower: int, upper: int) -> Iterator[int]:
        query_nodes = self._collect_nodes(lower, upper)
        if query_nodes is None:
            return
        # Branch 1: leftNodes JOIN upperIndex (node range, upper >= :lower).
        for node_min, node_max in query_nodes.left:
            if node_min == node_max:
                scan = self.table.index_scan_unbatched(
                    "upperIndex", (node_min, lower), (node_max,))
            else:
                scan = self.table.index_scan_unbatched(
                    "upperIndex", (node_min,), (node_max,))
            for entry in scan:
                yield entry[2]
        # Branch 2: rightNodes JOIN lowerIndex (node equality, lower <= :upper).
        for node in query_nodes.right:
            for entry in self.table.index_scan_unbatched(
                    "lowerIndex", (node,), (node, upper)):
                yield entry[2]

    def join_pairs(
        self, probes: Sequence[IntervalRecord], *legacy, predicate=None
    ) -> list[tuple[int, int]]:
        """Batched index-nested-loop join probe (overrides the base loop).

        Each intersection probe compiles to the same Figure 10 scan plan
        as a Figure 13 query -- identical page requests, identical I/O
        accounting -- but pairs are emitted per leaf slice in one pass
        instead of going through an intermediate id list per probe.
        ``join_count`` (the count-only analogue) dispatches to the
        batched :meth:`intersection_count`.

        A join ``predicate`` compiles per probe to the scan plan of the
        *inverse* relation's candidate range (probing asks the
        stored-subject question) and refines whole leaf slices of
        fetched records with the predicate's direct formula -- the
        frames-per-pair economics of the batched pipeline, extended to
        every Allen relation.
        """
        predicate = shim_positional_predicate(legacy, predicate, "join_pairs")
        pred = resolve_join_predicate(predicate)
        pairs: list[tuple[int, int]] = []
        extend = pairs.extend
        if pred is None:
            for lower, upper, probe_id in probes:
                validate_interval(lower, upper)
                for batch in self._query_batches(lower, upper):
                    extend((probe_id, entry[2]) for entry in batch)
            return pairs
        inverse = pred.inverse
        holds = pred.holds
        for lower, upper, probe_id in probes:
            validate_interval(lower, upper)
            for batch in self._candidate_batches(inverse, lower, upper):
                extend((probe_id, interval_id)
                       for s, e, interval_id in batch
                       if holds(lower, upper, s, e))
        return pairs

    def join_count(
        self, probes: Sequence[IntervalRecord], *legacy, predicate=None
    ) -> int:
        """Size of :meth:`join_pairs`; predicate counts refine per slice."""
        predicate = shim_positional_predicate(legacy, predicate, "join_count")
        pred = resolve_join_predicate(predicate)
        if pred is None:
            return super().join_count(probes)
        inverse = pred.inverse
        holds = pred.holds
        total = 0
        for lower, upper, _probe_id in probes:
            validate_interval(lower, upper)
            for batch in self._candidate_batches(inverse, lower, upper):
                total += sum(1 for s, e, _ in batch
                             if holds(lower, upper, s, e))
        return total

    def _candidate_extent(self) -> tuple[Optional[int], Optional[int]]:
        """``(floor, ceiling)`` for before/after candidate ranges.

        The ceiling is clamped to the legal data space around the offset
        so a sentinel upper bound (Section 4.6's ``UPPER_INF``) cannot
        push the BETWEEN fold of a candidate scan plan across the
        reserved fork-node values.
        """
        floor, ceiling = self._min_lower, self._max_upper
        if ceiling is not None and self.backbone.offset is not None:
            ceiling = min(ceiling, self.backbone.offset + MAX_ABS_BOUND)
        return floor, ceiling

    def _candidate_batches(
        self, inverse, lower: int, upper: int
    ) -> Iterator[list[tuple[int, int, int]]]:
        """Record batches over the inverse relation's candidate range.

        The candidate range provably contains every stored interval
        standing in the inverse relation to ``[lower, upper]`` -- and
        therefore every stored interval the *probe* stands in the direct
        relation to; the caller refines each slice with the direct
        formula.
        """
        floor = ceiling = None
        if (inverse.name in ("before", "after")
                or getattr(inverse, "needs_extent", False)):
            floor, ceiling = self._candidate_extent()
        candidate = inverse.candidates(lower, upper, floor, ceiling)
        if candidate is None:
            return
        yield from self._record_batches(candidate[0], candidate[1])

    def _record_batches(
        self, lower: int, upper: int
    ) -> Iterator[list[tuple[int, int, int]]]:
        """Leaf-slice batches materialised to ``(lower, upper, id)``.

        Each index entry carries only one interval bound, so the other
        one is fetched from the base table by rowid -- the classical
        "table access by index rowid" step, batched per leaf slice
        through :meth:`~repro.engine.table.Table.fetch_many` (rowids
        within one slice are page-clustered, so same-page runs share one
        page request).  :class:`~repro.core.temporal.TemporalRITree`
        overrides this to materialise effective now-relative bounds.
        """
        fetch_many = self.table.fetch_many
        for batch in self._query_batches(lower, upper):
            rows = fetch_many([entry[3] for entry in batch])
            yield [(row[1], row[2], row[3]) for row in rows]

    def intersection_records(
        self, lower: int, upper: int
    ) -> Iterator[tuple[int, int, int]]:
        """Like :meth:`intersection`, but yields ``(lower, upper, id)``.

        One :meth:`_record_batches` pass flattened to records; used by
        the topological queries of Section 4.5, which refine on both
        bounds.
        """
        validate_interval(lower, upper)
        if self.backbone.is_empty:
            return
        for batch in self._record_batches(lower, upper):
            yield from batch

    # ------------------------------------------------------------------
    # planning (Section 5)
    # ------------------------------------------------------------------
    def cost_model(self, refresh: bool = False):
        """The tree's optimizer cost model, built lazily and cached.

        Histograms are read from the already-loaded composite indexes
        (``source="indexes"`` -- the bound columns are right there in
        lowerIndex/upperIndex, no base-table scan needed).  The cached
        model goes stale under updates; pass ``refresh=True`` to re-run
        the ANALYZE pass, the engine equivalent of refreshed optimizer
        statistics.
        """
        from .costmodel import RITreeCostModel
        if self._cost_model is None:
            self._cost_model = RITreeCostModel(self, source="indexes")
        elif refresh:
            self._cost_model.refresh()
        return self._cost_model

    def stored_records(self) -> list[IntervalRecord]:
        """The stored relation as ``(lower, upper, id)`` records.

        One heap scan, consumed in whole page slices
        (:meth:`~repro.engine.table.Table.scan_batches`); lets a planner
        hand the inner relation to an index-free strategy (the sweep)
        after pricing this index out without paying a per-row generator
        hop for the handoff.
        """
        return [(row[1], row[2], row[3])
                for batch in self.table.scan_batches()
                for _rowid, row in batch]

    def _query_relation(self, pred, lower: int, upper: int) -> list[int]:
        """Predicates and query families compiled to engine scan plans.

        The fifteen classic relations dispatch to the scan-plan
        transforms of :mod:`repro.core.topology` (O(h) path scans for
        the bound-equality relations, candidate-range refinement for
        the rest).  Any other compiled query -- a parameterized family
        such as ``range_duration`` -- runs its candidate intersection
        range through the batched Figure 10 scan plan
        (:meth:`_record_batches`, which on the temporal subclass
        materializes effective bounds first) and refines each fetched
        leaf slice with the family's ``holds`` formula.
        """
        from . import topology
        if pred.name in topology.RELATION_QUERIES:
            return topology.query_relation(self, pred.name, lower, upper)
        floor = ceiling = None
        if getattr(pred, "needs_extent", False):
            floor, ceiling = self._candidate_extent()
        candidate = pred.candidates(lower, upper, floor, ceiling)
        if candidate is None:
            return []
        holds = pred.holds
        return [interval_id
                for batch in self._record_batches(candidate[0], candidate[1])
                for s, e, interval_id in batch
                if holds(s, e, lower, upper)]

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _verify_into(self, report: VerificationReport) -> None:
        """Structural validators for the engine-backed RI-tree.

        Checks, in order: both composite B+-trees' structural invariants
        (key order, fill factors, leaf chain), index/heap entry counts,
        per-row index membership and Figure 6 fork-node consistency, and
        the sanity of the Section 3.4 backbone parameters.
        """
        super()._verify_into(report)
        verify_engine_tree(report, self._lower_tree, "lowerIndex")
        verify_engine_tree(report, self._upper_tree, "upperIndex")
        rows = list(self.table.scan())
        report.add_check("index-entry-count")
        for label, tree in (
            ("lowerIndex", self._lower_tree),
            ("upperIndex", self._upper_tree),
        ):
            if len(tree) != len(rows):
                report.add_issue(
                    "index-entry-count",
                    f"{label} holds {len(tree)} entries for "
                    f"{len(rows)} heap rows",
                    {"index": label},
                )
        report.add_check("index-heap-consistency")
        report.add_check("fork-node")
        for rowid, (node, lower, upper, interval_id) in rows:
            if not self._lower_tree.contains((node, lower, interval_id, rowid)):
                report.add_issue(
                    "missing-index-entry",
                    f"heap row {rowid} has no lowerIndex entry",
                    {"index": "lowerIndex", "rowid": rowid},
                )
            if not self._upper_tree.contains((node, upper, interval_id, rowid)):
                report.add_issue(
                    "missing-index-entry",
                    f"heap row {rowid} has no upperIndex entry",
                    {"index": "upperIndex", "rowid": rowid},
                )
            self._verify_row(report, rowid, node, lower, upper, interval_id)
        report.add_check("backbone-params")
        backbone = self.backbone
        if backbone.left_root > 0 or backbone.right_root < 0:
            report.add_issue(
                "backbone-roots",
                f"roots ({backbone.left_root}, {backbone.right_root}) are "
                "not on their sides of the global root",
            )
        for root in (backbone.left_root, backbone.right_root):
            if root and abs(root) & (abs(root) - 1):
                report.add_issue(
                    "backbone-roots",
                    f"root {root} is not a power of two",
                )
        if rows and backbone.offset is None:
            report.add_issue(
                "missing-offset",
                f"{len(rows)} stored rows but the backbone has no offset",
            )

    def _verify_row(
        self,
        report: VerificationReport,
        rowid: int,
        node: int,
        lower: int,
        upper: int,
        interval_id: int,
    ) -> None:
        """Per-row validator; the temporal subclass allows reserved rows."""
        if self.backbone.is_empty:
            return  # missing-offset already reported
        try:
            expected = self.backbone.fork_node(lower, upper)
        except ValueError as exc:
            report.add_issue(
                "fork-node-unreachable",
                f"heap row {rowid}: {exc}",
                {"rowid": rowid},
            )
            return
        if node != expected:
            report.add_issue(
                "fork-node-mismatch",
                f"heap row {rowid} stored at node {node}, Figure 6 "
                f"computes {expected} for ({lower}, {upper})",
                {"rowid": rowid, "node": node, "expected": expected},
            )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def min_lower(self) -> Optional[int]:
        """Smallest lower bound ever inserted (conservative under deletes)."""
        return self._min_lower

    @property
    def max_upper(self) -> Optional[int]:
        """Largest upper bound ever inserted (conservative under deletes)."""
        return self._max_upper

    def _note_bounds(self, lower: int, upper: int) -> None:
        if self._min_lower is None or lower < self._min_lower:
            self._min_lower = lower
        if self._max_upper is None or upper > self._max_upper:
            self._max_upper = upper

    @property
    def interval_count(self) -> int:
        """Number of stored intervals."""
        return self.table.row_count

    @property
    def index_entry_count(self) -> int:
        """Two index entries per interval (Figure 12: ``2n``)."""
        return sum(len(index.tree) for index in self.table.indexes.values())

    @property
    def height(self) -> int:
        """Current virtual backbone height (Section 3.5)."""
        return self.backbone.height()

    # ------------------------------------------------------------------
    # extension hook (used by repro.core.temporal)
    # ------------------------------------------------------------------
    def add_right_node_hook(
        self, hook: Callable[[int, int], Optional[int]]
    ) -> None:
        """Register a query-time hook returning an extra rightNodes entry.

        The hook receives the raw query bounds and returns a *shifted* node
        value to scan, or ``None``.  Section 4.6 uses this for the reserved
        ``infinity`` and ``now`` fork nodes.
        """
        self._extra_right_nodes.append(hook)

    def _collect_extra_right_nodes(
        self, lower: int, upper: int
    ) -> Iterator[int]:
        for hook in self._extra_right_nodes:
            node = hook(lower, upper)
            if node is not None:
                yield node

    def _store_at_node(
        self, node: int, lower: int, upper: int, interval_id: int
    ) -> None:
        """Store a row at an explicit (reserved) fork node -- Section 4.6."""
        self.table.insert((node, lower, upper, interval_id))

    def _delete_at_node(
        self, node: int, lower: int, interval_id: int
    ) -> None:
        """Delete a row stored at an explicit fork node."""
        key = (node, lower, interval_id)
        for entry in self.table.index_scan("lowerIndex", key, key):
            self.table.delete(entry[3])
            return
        raise KeyError((node, lower, interval_id))
