"""Allen's thirteen interval relations on the RI-tree (paper Section 4.5).

"In addition to the intersection query predicate, there are 13 more
fine-grained temporal relationships between intervals [BOe 98]. Obviously,
also queries based on these specialized predicates are efficiently supported
by the Relational Interval Tree."  The paper sketches the opportunity; this
module supplies the algorithms.

Semantics: Allen's algebra over *proper* closed integer intervals
(``lower < upper``).  Each relation below states its defining endpoint
predicate for a stored interval ``I = [s, e]`` against the query
``Q = [l, u]``.  The thirteen predicates are mutually exclusive and jointly
exhaustive for proper intervals; degenerate (point) intervals are still
handled correctly by each predicate individually but may satisfy the
boundary conventions of several relations at once, as usual for Allen's
algebra on points.

Access strategies
-----------------
* Bound-equality relations (``meets``, ``met_by``, ``starts``,
  ``started_by``, ``finishes``, ``finished_by``, ``equals``) exploit the
  fork-node property: an interval touching coordinate ``x`` with one of its
  bounds is registered on the backbone path toward ``x``, so O(h) exact
  index scans suffice -- this is the "additional potential for optimization"
  the paper attributes to its two-index design, and precisely what
  single-bound methods like the IB+-tree or a D-ordering cannot do for the
  opposite bound.
* Containment-style relations refine a stabbing or intersection candidate
  set, whose size bounds the extra work.
* ``before``/``after`` have result sizes up to O(n); they refine an
  intersection query against the known data-space expansion.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .interval import validate_interval
from .ritree import RITree

#: The thirteen relation names in Allen's canonical order.
ALLEN_RELATIONS = (
    "before",
    "meets",
    "overlaps",
    "finished_by",
    "contains",
    "starts",
    "equals",
    "started_by",
    "during",
    "finishes",
    "overlapped_by",
    "met_by",
    "after",
)


def relate(s: int, e: int, l: int, u: int) -> str:
    """Classify stored ``[s, e]`` against query ``[l, u]`` (pure predicate).

    Returns the unique Allen relation for proper intervals.  This is the
    ground-truth classifier used by the index-backed queries below and by
    the test suite's partition property.
    """
    if e < l:
        return "before"
    if s > u:
        return "after"
    if e == l and s < l:
        return "meets"
    if s == u and e > u:
        return "met_by"
    if s == l and e == u:
        return "equals"
    if s == l:
        return "starts" if e < u else "started_by"
    if e == u:
        return "finishes" if s > l else "finished_by"
    if s < l:
        return "contains" if e > u else "overlaps"
    return "during" if e < u else "overlapped_by"


def _fetch_records_on_path_lower(
    tree: RITree, coordinate: int
) -> Iterator[tuple[int, int, int]]:
    """Records whose *lower* bound equals ``coordinate``.

    Any interval with ``lower == coordinate`` has its fork node on the
    backbone path toward ``coordinate``, so O(h) exact scans of the
    lowerIndex find all of them.
    """
    if tree.backbone.is_empty:
        return
    shifted = tree.backbone.shift(coordinate)
    for node in tree.backbone.walk_toward(shifted):
        for entry in tree.table.index_scan(
            "lowerIndex", (node, coordinate), (node, coordinate)
        ):
            row = tree.table.fetch(entry[3])
            yield row[1], row[2], row[3]


def _fetch_records_on_path_upper(
    tree: RITree, coordinate: int
) -> Iterator[tuple[int, int, int]]:
    """Records whose *upper* bound equals ``coordinate`` (O(h) exact scans)."""
    if tree.backbone.is_empty:
        return
    shifted = tree.backbone.shift(coordinate)
    for node in tree.backbone.walk_toward(shifted):
        for entry in tree.table.index_scan(
            "upperIndex", (node, coordinate), (node, coordinate)
        ):
            row = tree.table.fetch(entry[3])
            yield row[1], row[2], row[3]


def _refined(
    records: Iterator[tuple[int, int, int]], predicate: Callable[[int, int], bool]
) -> list[int]:
    return [interval_id for s, e, interval_id in records if predicate(s, e)]


# ----------------------------------------------------------------------
# the thirteen queries
# ----------------------------------------------------------------------
def before(tree: RITree, l: int, u: int) -> list[int]:
    """``e < l``: intervals ending strictly before the query starts."""
    validate_interval(l, u)
    floor, _ceiling = tree._candidate_extent()
    if floor is None or floor > l - 1:
        return []
    return _refined(tree.intersection_records(floor, l - 1), lambda s, e: e < l)


def after(tree: RITree, l: int, u: int) -> list[int]:
    """``s > u``: intervals starting strictly after the query ends.

    The candidate ceiling comes from the tree's *clamped* extent: a
    Section 4.6 sentinel upper (``UPPER_INF``) must not stretch the scan
    plan's BETWEEN fold across the reserved fork-node values, or
    reserved rows would be returned twice (once by the node-range scan,
    once by the reserved rightNodes entry).
    """
    validate_interval(l, u)
    _floor, ceiling = tree._candidate_extent()
    if ceiling is None or u + 1 > ceiling:
        return []
    return _refined(tree.intersection_records(u + 1, ceiling), lambda s, e: s > u)


def meets(tree: RITree, l: int, u: int) -> list[int]:
    """``e == l and s < l``: intervals ending exactly where the query starts."""
    validate_interval(l, u)
    return _refined(_fetch_records_on_path_upper(tree, l), lambda s, e: s < l)


def met_by(tree: RITree, l: int, u: int) -> list[int]:
    """``s == u and e > u``: intervals starting exactly where the query ends."""
    validate_interval(l, u)
    return _refined(_fetch_records_on_path_lower(tree, u), lambda s, e: e > u)


def overlaps(tree: RITree, l: int, u: int) -> list[int]:
    """``s < l < e < u``: proper left-overlap with the query."""
    validate_interval(l, u)
    return _refined(tree.intersection_records(l, l), lambda s, e: s < l < e < u)


def overlapped_by(tree: RITree, l: int, u: int) -> list[int]:
    """``l < s < u < e``: proper right-overlap with the query."""
    validate_interval(l, u)
    return _refined(tree.intersection_records(u, u), lambda s, e: l < s < u < e)


def during(tree: RITree, l: int, u: int) -> list[int]:
    """``l < s and e < u``: intervals strictly inside the query."""
    validate_interval(l, u)
    return _refined(tree.intersection_records(l, u), lambda s, e: l < s and e < u)


def contains(tree: RITree, l: int, u: int) -> list[int]:
    """``s < l and u < e``: intervals strictly containing the query."""
    validate_interval(l, u)
    return _refined(tree.intersection_records(l, l), lambda s, e: s < l and u < e)


def starts(tree: RITree, l: int, u: int) -> list[int]:
    """``s == l and e < u``: intervals sharing the start, ending earlier."""
    validate_interval(l, u)
    return _refined(_fetch_records_on_path_lower(tree, l), lambda s, e: e < u)


def started_by(tree: RITree, l: int, u: int) -> list[int]:
    """``s == l and e > u``: intervals sharing the start, ending later."""
    validate_interval(l, u)
    return _refined(_fetch_records_on_path_lower(tree, l), lambda s, e: e > u)


def finishes(tree: RITree, l: int, u: int) -> list[int]:
    """``e == u and s > l``: intervals sharing the end, starting later."""
    validate_interval(l, u)
    return _refined(_fetch_records_on_path_upper(tree, u), lambda s, e: s > l)


def finished_by(tree: RITree, l: int, u: int) -> list[int]:
    """``e == u and s < l``: intervals sharing the end, starting earlier."""
    validate_interval(l, u)
    return _refined(_fetch_records_on_path_upper(tree, u), lambda s, e: s < l)


def equals(tree: RITree, l: int, u: int) -> list[int]:
    """``s == l and e == u``: exact-match query."""
    validate_interval(l, u)
    return _refined(_fetch_records_on_path_lower(tree, l), lambda s, e: e == u)


#: Dispatch table: relation name -> query function.
RELATION_QUERIES: dict[str, Callable[[RITree, int, int], list[int]]] = {
    "before": before,
    "meets": meets,
    "overlaps": overlaps,
    "finished_by": finished_by,
    "contains": contains,
    "starts": starts,
    "equals": equals,
    "started_by": started_by,
    "during": during,
    "finishes": finishes,
    "overlapped_by": overlapped_by,
    "met_by": met_by,
    "after": after,
}


def query_relation(tree: RITree, relation: str, l: int, u: int) -> list[int]:
    """Run the named Allen-relation query against the tree."""
    try:
        query = RELATION_QUERIES[relation]
    except KeyError:
        raise ValueError(
            f"unknown relation {relation!r}; expected one of {ALLEN_RELATIONS}"
        ) from None
    return query(tree, l, u)
