"""Streaming ingest driver: buffered batches, group commit, checkpoints.

:class:`StreamIngestor` sits between an arrival stream (usually a
:class:`~repro.ingest.workload.StreamWorkload`) and any
:class:`~repro.core.access.IntervalStore`.  It owns three policies the
stores themselves deliberately do not:

* **Bounded buffering with backpressure.**  Submitted records collect
  in memory and flush as ONE ``append_batch`` call -- one group commit,
  one WAL force on the engine backends -- when the buffer reaches
  ``flush_records``.  The buffer is *bounded*: a submit that lands on a
  full buffer flushes synchronously before accepting the batch, and the
  stall is counted (``stats.stalls``) so benchmarks can see when the
  producer outran the store.

* **Commit-boundary ordering.**  Clock advances apply before a batch's
  records (now-relative rows start at or before the new clock) and
  closures force the buffered appends down first (a closure may target
  a row that is still sitting in the buffer).

* **Periodic checkpoints.**  Every ``checkpoint_batches`` flushed
  batches, the owning database's WAL is checkpointed *between* group
  commits -- inside one, :meth:`repro.engine.database.Database.
  checkpoint` raises -- which bounds recovery replay length during an
  unbounded ingest run.

The driver never reorders records across a flush boundary, so after
any ``flush()`` the store state equals a bulk load of the committed
prefix -- the equivalence the streaming benchmark's parity gate checks
at every checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.access import IntervalRecord, IntervalStore
from .workload import StreamBatch


@dataclass
class IngestStats:
    """Counters the ingest benchmark reports per run."""

    records: int = 0
    batches: int = 0
    flushes: int = 0
    closes: int = 0
    checkpoints: int = 0
    stalls: int = 0
    buffered_peak: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class StreamIngestor:
    """Drive an :class:`IntervalStore` from an append stream.

    Parameters
    ----------
    store:
        Any interval store; backends without a native ``append_batch``
        inherit the insert-loop default, so the driver is
        backend-neutral.
    flush_records:
        Group-commit granularity: the buffer flushes once it holds at
        least this many records.
    buffer_records:
        Hard buffer bound (backpressure threshold); defaults to
        ``4 * flush_records``.
    checkpoint_batches:
        Checkpoint the WAL after every N flushed batches (0 disables).
    database:
        The engine database owning the store's WAL; defaults to
        ``store.db`` when present.  Only consulted for checkpoints.
    """

    store: IntervalStore
    flush_records: int = 1024
    buffer_records: Optional[int] = None
    checkpoint_batches: int = 0
    database: Optional[object] = None
    stats: IngestStats = field(default_factory=IngestStats)

    def __post_init__(self) -> None:
        if self.flush_records < 1:
            raise ValueError("flush_records must be >= 1")
        if self.buffer_records is None:
            self.buffer_records = 4 * self.flush_records
        if self.buffer_records < self.flush_records:
            raise ValueError(
                f"buffer_records {self.buffer_records} below flush_records "
                f"{self.flush_records}")
        if self.database is None:
            self.database = getattr(self.store, "db", None)
        self._buffer: list[IntervalRecord] = []
        self._since_checkpoint = 0

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------
    @property
    def buffered(self) -> int:
        """Records currently waiting in the buffer."""
        return len(self._buffer)

    def submit(self, batch: StreamBatch) -> None:
        """Accept one arrival batch, flushing as policy dictates."""
        if len(self._buffer) + batch.record_count > self.buffer_records:
            # Backpressure: the producer blocks on a synchronous flush
            # before the batch is accepted.
            self.stats.stalls += 1
            self.flush()
        if batch.timestamp > getattr(self.store, "now", batch.timestamp):
            self.store.advance_to(batch.timestamp)
        self._buffer.extend(batch.records)
        self.stats.records += batch.record_count
        self.stats.batches += 1
        if len(self._buffer) > self.stats.buffered_peak:
            self.stats.buffered_peak = len(self._buffer)
        if batch.closes:
            # Closures may target still-buffered rows: commit those first.
            self.flush()
            for lower, interval_id, upper in batch.closes:
                self.store.close_now_interval(lower, interval_id, upper)
                self.stats.closes += 1
        elif len(self._buffer) >= self.flush_records:
            self.flush()

    def flush(self) -> None:
        """Group-commit the buffer: one ``append_batch`` call."""
        if not self._buffer:
            return
        records, self._buffer = self._buffer, []
        self.store.append_batch(records)
        self.stats.flushes += 1
        self._maybe_checkpoint()

    def _maybe_checkpoint(self) -> None:
        if not self.checkpoint_batches or self.database is None:
            return
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_batches:
            checkpoint = getattr(self.database, "checkpoint", None)
            if checkpoint is not None:
                checkpoint()
                self.stats.checkpoints += 1
            self._since_checkpoint = 0

    def drain(self) -> IngestStats:
        """Flush whatever remains and return the run's counters."""
        self.flush()
        return self.stats
