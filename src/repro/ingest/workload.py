"""Seeded streaming workloads for the ingest subsystem.

The paper evaluates the RI-tree on statically bulk-loaded relations;
this module models the *other* end of the lifecycle: records arriving
continuously, in timestamped batches, while the store keeps serving
queries.  Two arrival disciplines are supported:

``increasing-end``
    Ending times never decrease across the stream -- the append
    pattern of logging/history workloads, where each record closes at
    (or near) the current clock.  Under this discipline every batch
    lands at the right edge of the data space, which is exactly the
    case the backends' ``append_batch`` fast paths are shaped for:
    the rightmost fork descent stays hot and domain refits never
    strand earlier partitions.

``general``
    Bounds drawn uniformly over the domain: the adversarial baseline
    for the same fast paths (appends may land anywhere).

Open intervals ride along in either mode: a configurable fraction of
rows commits as now-relative ``[lower, now]`` sentinel records
(Section 4.6) that a *later* batch closes at a fixed upper bound via
``close_now_interval`` -- the session/transaction-time lifecycle the
paper's ``now`` discussion describes.

Every batch is reproducible from the seed alone, and the module ships
a searchsorted :class:`IngestOracle` that answers intersection counts
over the committed prefix in O(log n), so benchmark gates can check
query parity at every checkpoint without a quadratic reference scan.
"""

from __future__ import annotations

import random
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..core.access import IntervalRecord
from ..core.temporal import UPPER_INF, UPPER_NOW

#: Supported arrival disciplines.
MODES = ("increasing-end", "general")


@dataclass(frozen=True)
class StreamBatch:
    """One timestamped unit of arrival.

    Attributes
    ----------
    seq:
        Zero-based batch sequence number.
    timestamp:
        Clock value the stream has reached when the batch arrives; the
        consumer advances the store clock to it *before* applying the
        records (now-relative rows in the batch start at or before it).
    records:
        Append records, ``(lower, upper, id)`` with sentinel uppers for
        open rows.
    closes:
        ``(lower, interval_id, upper)`` closures of now-relative rows
        committed by *earlier* batches; applied after the appends.
    """

    seq: int
    timestamp: int
    records: tuple[IntervalRecord, ...]
    closes: tuple[tuple[int, int, int], ...] = ()

    @property
    def record_count(self) -> int:
        return len(self.records)


class StreamWorkload:
    """Deterministic stream of append batches.

    Parameters
    ----------
    seed:
        Seeds the private RNG; equal parameters produce equal streams.
    batches:
        Number of batches the iterator yields.
    batch_size:
        Records per batch (the arrival-rate knob: records per clock
        tick is ``batch_size / ticks_per_batch``).
    mode:
        Arrival discipline, one of :data:`MODES`.
    domain:
        Upper edge of the bound domain (paper evaluation: ``2**20``).
    mean_length:
        Mean interval duration; actual durations are uniform in
        ``[1, 2 * mean_length]``.
    open_fraction:
        Fraction of rows committed as now-relative open intervals.
    close_lag:
        Mean number of batches an open row stays open before a later
        batch closes it at the then-current clock.
    ticks_per_batch:
        Clock advance per batch.
    start_clock:
        Clock value before the first batch.
    """

    def __init__(
        self,
        seed: int,
        batches: int,
        batch_size: int,
        mode: str = "increasing-end",
        domain: int = 1 << 20,
        mean_length: int = 1000,
        open_fraction: float = 0.0,
        close_lag: int = 4,
        ticks_per_batch: int = 100,
        start_clock: int = 0,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if batches < 0 or batch_size < 1:
            raise ValueError("need batches >= 0 and batch_size >= 1")
        if not 0.0 <= open_fraction <= 1.0:
            raise ValueError(f"open_fraction must be in [0, 1], "
                             f"got {open_fraction}")
        self.seed = seed
        self.batches = batches
        self.batch_size = batch_size
        self.mode = mode
        self.domain = domain
        self.mean_length = max(1, mean_length)
        self.open_fraction = open_fraction
        self.close_lag = max(1, close_lag)
        self.ticks_per_batch = max(1, ticks_per_batch)
        self.start_clock = start_clock

    @property
    def total_records(self) -> int:
        """Append records across the whole stream (closures excluded)."""
        return self.batches * self.batch_size

    def __iter__(self) -> Iterator[StreamBatch]:
        rng = random.Random(self.seed)
        clock = self.start_clock
        next_id = 0
        end_floor = clock
        # Open rows waiting for their closing batch: seq -> [(lower, id)].
        pending: dict[int, list[tuple[int, int]]] = {}
        for seq in range(self.batches):
            clock += self.ticks_per_batch
            records: list[IntervalRecord] = []
            for _ in range(self.batch_size):
                if self.open_fraction and rng.random() < self.open_fraction:
                    lower = max(0, clock - rng.randrange(
                        1, 2 * self.mean_length + 1))
                    records.append((lower, UPPER_NOW, next_id))
                    due = seq + 1 + rng.randrange(1, 2 * self.close_lag)
                    pending.setdefault(due, []).append((lower, next_id))
                else:
                    length = rng.randrange(1, 2 * self.mean_length + 1)
                    if self.mode == "increasing-end":
                        upper = end_floor + rng.randrange(
                            0, self.ticks_per_batch + 1)
                        end_floor = upper
                        lower = max(0, upper - length)
                    else:
                        lower = rng.randrange(0, self.domain)
                        upper = lower + length
                    records.append((lower, upper, next_id))
                next_id += 1
            closes = tuple(
                (lower, interval_id, max(lower, clock))
                for lower, interval_id in pending.pop(seq, ())
            )
            if self.mode == "increasing-end":
                end_floor = max(end_floor, clock)
            yield StreamBatch(seq, clock, tuple(records), closes)


@dataclass
class IngestOracle:
    """Searchsorted reference for the committed prefix of a stream.

    Mirrors HINT's decomposition one level up: finite bounds live in
    two independently sorted arrays, sentinel rows in lower-sorted side
    lists -- so an intersection count is four ``bisect`` probes, never
    a scan.  For the closed query window ``[ql, qu]``::

        finite hits = |lower <= qu| - |upper < ql|

    (the subtraction nests: ``upper < ql`` implies ``lower <= qu``),
    infinite rows hit iff ``lower <= qu``, and now-relative rows hit
    iff ``lower <= qu`` and the clock has reached ``ql``.
    """

    now: int = 0
    lowers: list[int] = field(default_factory=list)
    uppers: list[int] = field(default_factory=list)
    inf_lowers: list[int] = field(default_factory=list)
    now_rows: dict[tuple[int, int], int] = field(default_factory=dict)
    count: int = 0

    def observe(self, batch: StreamBatch) -> None:
        """Fold one committed batch (clock, appends, closures) in."""
        if batch.timestamp > self.now:
            self.now = batch.timestamp
        for lower, upper, interval_id in batch.records:
            self.add(lower, upper, interval_id)
        for lower, interval_id, upper in batch.closes:
            self.close(lower, interval_id, upper)

    def add(self, lower: int, upper: int, interval_id: int) -> None:
        if upper == UPPER_INF:
            insort(self.inf_lowers, lower)
        elif upper == UPPER_NOW:
            key = (lower, interval_id)
            self.now_rows[key] = self.now_rows.get(key, 0) + 1
        else:
            insort(self.lowers, lower)
            insort(self.uppers, upper)
        self.count += 1

    def close(self, lower: int, interval_id: int, upper: int) -> None:
        """Re-file a now-relative row under its fixed upper bound."""
        key = (lower, interval_id)
        remaining = self.now_rows.get(key, 0)
        if remaining <= 0:
            raise KeyError(key)
        if remaining == 1:
            del self.now_rows[key]
        else:
            self.now_rows[key] = remaining - 1
        insort(self.lowers, lower)
        insort(self.uppers, upper)

    def expected_count(self, ql: int, qu: int) -> int:
        """Intersection count over the committed prefix."""
        total = bisect_right(self.lowers, qu) - bisect_left(self.uppers, ql)
        total += bisect_right(self.inf_lowers, qu)
        if self.now >= ql:
            total += sum(
                n for (lower, _id), n in self.now_rows.items() if lower <= qu
            )
        return total


def replay_records(
    workload: StreamWorkload, upto: Optional[int] = None
) -> tuple[list[IntervalRecord], int]:
    """Materialise the stream's net record set after ``upto`` batches.

    The bulk-load image an ingested store must be equivalent to:
    appended records with every applied closure folded in (closed rows
    appear with their fixed upper, still-open rows keep the sentinel).
    Returns ``(records, clock)``.
    """
    by_id: dict[int, IntervalRecord] = {}
    clock = workload.start_clock
    for batch in workload:
        if upto is not None and batch.seq >= upto:
            break
        clock = max(clock, batch.timestamp)
        for record in batch.records:
            by_id[record[2]] = record
        for lower, interval_id, upper in batch.closes:
            by_id[interval_id] = (lower, upper, interval_id)
    return [by_id[i] for i in sorted(by_id)], clock
