"""Streaming ingest: seeded arrival streams and the group-commit driver.

See :mod:`repro.ingest.workload` for the arrival model and the
searchsorted parity oracle, :mod:`repro.ingest.ingestor` for the
buffered driver, and ``docs/ingest.md`` for the append contract the
stores implement underneath.
"""

from .ingestor import IngestStats, StreamIngestor
from .workload import (
    MODES,
    IngestOracle,
    StreamBatch,
    StreamWorkload,
    replay_records,
)

__all__ = [
    "MODES",
    "IngestOracle",
    "IngestStats",
    "StreamBatch",
    "StreamIngestor",
    "StreamWorkload",
    "replay_records",
]
