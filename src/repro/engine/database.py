"""The database facade: catalog, buffer cache and I/O accounting.

One :class:`Database` owns a simulated disk, a buffer pool sized like the
paper's experimental setup (200 blocks of 2 KB, Section 6.1) and a catalog of
tables.  Every structure created through it shares the same I/O counters, so
``db.measure()`` observes exactly the physical block traffic a query causes
-- the metric reported in the paper's Figures 13 and 14.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from .buffer import DEFAULT_CACHE_BLOCKS, BufferPool
from .errors import SchemaError
from .stats import IoSnapshot, IoStats
from .stats import measure as _measure
from .storage import DEFAULT_BLOCK_SIZE, DiskManager
from .table import Table


class Database:
    """An in-process relational storage engine instance.

    Parameters
    ----------
    block_size:
        Disk block size in bytes (paper default: 2048).
    cache_blocks:
        Buffer cache capacity in blocks (paper default: 200).
    """

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE,
                 cache_blocks: int = DEFAULT_CACHE_BLOCKS) -> None:
        self.stats = IoStats()
        self.disk = DiskManager(block_size=block_size, stats=self.stats)
        self.pool = BufferPool(self.disk, capacity=cache_blocks,
                               stats=self.stats)
        self._tables: dict[str, Table] = {}

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        """Create a table of 64-bit integer columns."""
        if name in self._tables:
            raise SchemaError(f"table {name} already exists")
        table = Table(self.pool, name, columns)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no such table: {name}") from None

    def tables(self) -> Iterator[Table]:
        """Iterate over all tables."""
        return iter(self._tables.values())

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    @contextmanager
    def measure(self) -> Iterator[IoSnapshot]:
        """Context manager yielding the I/O delta of the ``with`` body."""
        with _measure(self.stats) as delta:
            yield delta

    def clear_cache(self) -> None:
        """Flush and empty the buffer cache (for cold-cache measurements)."""
        self.pool.clear()

    def flush(self) -> None:
        """Write back all dirty pages."""
        self.pool.flush_all()

    @property
    def blocks_in_use(self) -> int:
        """Allocated disk blocks -- the paper's storage metric."""
        return self.disk.blocks_in_use
