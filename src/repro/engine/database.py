"""The database facade: catalog, buffer cache, WAL and I/O accounting.

One :class:`Database` owns a simulated disk, a buffer pool sized like the
paper's experimental setup (200 blocks of 2 KB, Section 6.1) and a catalog of
tables.  Every structure created through it shares the same I/O counters, so
``db.measure()`` observes exactly the physical block traffic a query causes
-- the metric reported in the paper's Figures 13 and 14.

Durability is opt-in: constructed with ``wal=True`` the database logs every
DDL/DML statement and store-metadata update to a
:class:`~repro.engine.wal.WriteAheadLog`.  Mutations grouped under
:meth:`Database.atomic` commit as one batch (one WAL force); a
:class:`~repro.engine.errors.SimulatedCrash` at *any* point leaves a durable
log whose committed prefix :meth:`Database.recover` replays into a fresh,
consistent database -- uncommitted batches are rolled back by never being
replayed.  :meth:`Database.checkpoint` bounds replay work by collapsing the
log into one snapshot record.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Union

from .buffer import DEFAULT_CACHE_BLOCKS, BufferPool
from .errors import RecoveryError, SchemaError, WalError
from .faults import FaultInjector
from .retry import RetryPolicy
from .stats import IoSnapshot, IoStats
from .stats import measure as _measure
from .storage import DEFAULT_BLOCK_SIZE, DiskManager
from .table import Table
from .wal import WriteAheadLog


class Database:
    """An in-process relational storage engine instance.

    Parameters
    ----------
    block_size:
        Disk block size in bytes (paper default: 2048).
    cache_blocks:
        Buffer cache capacity in blocks (paper default: 200).
    wal:
        ``True`` to create a fresh write-ahead log, an existing
        :class:`WriteAheadLog` to adopt one, ``False``/``None`` (default)
        for the paper's original non-durable engine.
    injector:
        Optional :class:`~repro.engine.faults.FaultInjector` observing
        every physical read/write, flush and WAL force.
    retry:
        Optional :class:`~repro.engine.retry.RetryPolicy` retrying
        injected transient faults at the disk interface.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        wal: Union[bool, WriteAheadLog, None] = None,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.stats = IoStats()
        self.injector = injector
        self.retry = retry
        self.disk = DiskManager(
            block_size=block_size,
            stats=self.stats,
            injector=injector,
            retry=retry,
        )
        self.pool = BufferPool(
            self.disk,
            capacity=cache_blocks,
            stats=self.stats,
            injector=injector,
        )
        if wal is True:
            self.wal: Optional[WriteAheadLog] = WriteAheadLog(
                block_size=block_size, stats=self.stats, injector=injector
            )
        elif isinstance(wal, WriteAheadLog):
            self.wal = wal
            wal.rebind(self.stats, injector)
        else:
            self.wal = None
        self._tables: dict[str, Table] = {}
        self._wal_meta: dict[str, dict] = {}
        self._batch_depth = 0
        self._batch_seq = 0
        self._suppress_wal = False
        #: Set when an atomic batch failed mid-flight: the in-memory state
        #: may have applied part of the batch the WAL rolled back, so the
        #: only trustworthy continuation is :meth:`recover`.
        self.wal_desynced = False
        #: Number of logical records replayed if this instance was built
        #: by :meth:`recover` (0 otherwise).
        self.replayed_ops = 0

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        """Create a table of 64-bit integer columns."""
        if name in self._tables:
            raise SchemaError(f"table {name} already exists")
        self._log({"t": "create_table", "name": name, "columns": list(columns)})
        table = Table(self.pool, name, columns, log=self._log)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no such table: {name}") from None

    def has_table(self, name: str) -> bool:
        """Whether a table named ``name`` exists."""
        return name in self._tables

    def tables(self) -> Iterator[Table]:
        """Iterate over all tables."""
        return iter(self._tables.values())

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    @contextmanager
    def measure(self) -> Iterator[IoSnapshot]:
        """Context manager yielding the I/O delta of the ``with`` body."""
        with _measure(self.stats) as delta:
            yield delta

    def clear_cache(self) -> None:
        """Flush and empty the buffer cache (for cold-cache measurements)."""
        self.pool.clear()

    def flush(self) -> None:
        """Write back all dirty pages."""
        self.pool.flush_all()

    @property
    def blocks_in_use(self) -> int:
        """Allocated disk blocks -- the paper's storage metric."""
        return self.disk.blocks_in_use

    # ------------------------------------------------------------------
    # write-ahead logging
    # ------------------------------------------------------------------
    @contextmanager
    def atomic(self) -> Iterator[None]:
        """Group the body's mutations into one atomic WAL batch.

        One ``begin`` record, the body's logical records, one ``commit``
        record, one force (group commit).  Nested uses flatten into the
        outermost batch.  On *any* exception the un-forced tail is
        discarded -- the batch never happened as far as recovery is
        concerned -- and, if the batch had already logged mutations,
        :attr:`wal_desynced` is set because the in-memory state may hold
        part of the rolled-back batch (a batch that failed before its
        first record, e.g. a key lookup miss, mutated nothing and leaves
        the store usable).  Without a WAL this is a no-op wrapper.
        """
        if self.wal is None:
            yield
            return
        if self._batch_depth:
            self._batch_depth += 1
            try:
                yield
            finally:
                self._batch_depth -= 1
            return
        self._batch_seq += 1
        batch_id = self._batch_seq
        self._batch_depth = 1
        self.wal.append({"t": "begin", "b": batch_id})
        try:
            yield
        except BaseException:
            if self.wal.drop_tail() > 1:  # more than the bare begin record
                self.wal_desynced = True
            raise
        else:
            self.wal.append({"t": "commit", "b": batch_id})
            self.wal.force()
        finally:
            self._batch_depth = 0

    def log_meta(self, store: str, data: dict) -> None:
        """Record a store's metadata (backbone parameters, clock, bounds).

        The metadata rides in the WAL with the batch that produced it and
        is available again after recovery via :meth:`store_meta`.
        """
        self._wal_meta[store] = data
        self._log({"t": "meta", "store": store, "data": data})

    def store_meta(self, store: str) -> Optional[dict]:
        """The most recent metadata logged for ``store`` (or ``None``)."""
        return self._wal_meta.get(store)

    def checkpoint(self) -> None:
        """Collapse the WAL into one snapshot record of the current state.

        Flushes dirty pages first (so the simulated disk matches too),
        then atomically replaces the log contents.  Bounds recovery
        replay to the work since the last checkpoint.
        """
        if self.wal is None:
            raise WalError("checkpoint requires a write-ahead log")
        if self._batch_depth:
            raise WalError("checkpoint inside an atomic batch")
        self.pool.flush_all()
        tables = []
        for table in self._tables.values():
            tables.append(
                {
                    "name": table.name,
                    "columns": list(table.columns),
                    "indexes": [
                        {"name": index.name, "key": list(index.columns)}
                        for index in table.indexes.values()
                    ],
                    "rows": [list(row) for _, row in table.scan()],
                }
            )
        self.wal.checkpoint(
            {"t": "ckpt", "tables": tables, "meta": dict(self._wal_meta)}
        )

    def recover(self) -> "Database":
        """Rebuild a consistent database from the durable WAL prefix.

        Models process death and restart: the un-forced tail is lost, a
        fresh :class:`Database` is built by applying the last checkpoint
        snapshot and replaying every committed batch in log order, and
        the survivor log (compacted to a new checkpoint) moves over to
        the new instance.  The crashed instance must not be used again.
        """
        if self.wal is None:
            raise WalError("recover requires a write-ahead log")
        wal = self.wal
        wal.drop_tail()
        recovered = Database(
            block_size=self.disk.block_size, cache_blocks=self.pool.capacity
        )
        wal.rebind(recovered.stats, injector=None)
        committed = _committed_records(wal.records())
        recovered._replay(committed)
        recovered.replayed_ops = len(committed)
        recovered.wal = wal
        recovered.checkpoint()
        return recovered

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _log(self, record: dict) -> None:
        wal = self.wal
        if wal is None or self._suppress_wal:
            return
        if self._batch_depth:
            wal.append(record)
            return
        self._batch_seq += 1
        batch_id = self._batch_seq
        wal.append({"t": "begin", "b": batch_id})
        wal.append(record)
        wal.append({"t": "commit", "b": batch_id})
        wal.force()

    def _replay(self, records: list[dict]) -> None:
        """Apply committed logical records to this (fresh) database."""
        # Deletes are logged by row *content*; track content -> rowids as
        # inserts replay so each delete resolves to one concrete row.
        content: dict[tuple[str, tuple], list[int]] = {}
        self._suppress_wal = True
        try:
            for record in records:
                kind = record["t"]
                if kind == "ckpt":
                    self._replay_checkpoint(record, content)
                elif kind == "create_table":
                    self.create_table(record["name"], record["columns"])
                elif kind == "create_index":
                    self.table(record["table"]).create_index(
                        record["index"], record["key"]
                    )
                elif kind == "insert":
                    row = tuple(record["row"])
                    rowid = self.table(record["table"]).insert(row)
                    content.setdefault((record["table"], row), []).append(rowid)
                elif kind == "bulk":
                    self._replay_bulk(record, content)
                elif kind == "delete":
                    row = tuple(record["row"])
                    rowids = content.get((record["table"], row))
                    if not rowids:
                        raise RecoveryError(
                            f"replay deletes missing row {row} "
                            f"from table {record['table']}"
                        )
                    self.table(record["table"]).delete(rowids.pop())
                elif kind == "meta":
                    self._wal_meta[record["store"]] = record["data"]
                else:  # pragma: no cover - _committed_records filters these
                    raise RecoveryError(f"unexpected record kind {kind!r}")
        finally:
            self._suppress_wal = False

    def _replay_checkpoint(
        self, record: dict, content: dict[tuple[str, tuple], list[int]]
    ) -> None:
        if self._tables:
            raise RecoveryError("checkpoint record after table records")
        for spec in record["tables"]:
            table = self.create_table(spec["name"], spec["columns"])
            for index in spec["indexes"]:
                table.create_index(index["name"], index["key"])
            rows = [tuple(row) for row in spec["rows"]]
            if rows:
                rowids = table.bulk_load(rows)
                for row, rowid in zip(rows, rowids):
                    content.setdefault((spec["name"], row), []).append(rowid)
        self._wal_meta.update(record.get("meta", {}))

    def _replay_bulk(
        self, record: dict, content: dict[tuple[str, tuple], list[int]]
    ) -> None:
        table = self.table(record["table"])
        rows = [tuple(row) for row in record["rows"]]
        if table.row_count == 0:
            rowids = table.bulk_load(rows, fill=record.get("fill", 0.9))
        else:  # pragma: no cover - bulk is only logged on empty tables
            rowids = [table.insert(row) for row in rows]
        for row, rowid in zip(rows, rowids):
            content.setdefault((record["table"], row), []).append(rowid)


def _committed_records(records: list[dict]) -> list[dict]:
    """Filter a raw record stream down to the committed, applicable ops.

    The last ``ckpt`` record resets the stream (everything before it is
    already folded into the snapshot).  A ``begin`` opens a pending batch;
    its records apply only when the matching ``commit`` arrives.  A
    trailing batch with no commit -- the crash case -- is rolled back by
    omission.
    """
    applied: list[dict] = []
    pending: Optional[list[dict]] = None
    pending_id: Optional[int] = None
    for record in records:
        kind = record["t"]
        if kind == "ckpt":
            if pending is not None:
                raise RecoveryError("checkpoint inside an open batch")
            applied = [record]
        elif kind == "begin":
            if pending is not None:
                raise RecoveryError("nested begin records in the WAL")
            pending = []
            pending_id = record["b"]
        elif kind == "commit":
            if pending is None or record["b"] != pending_id:
                raise RecoveryError("commit without a matching begin")
            applied.extend(pending)
            pending = None
            pending_id = None
        elif pending is not None:
            pending.append(record)
        else:
            raise RecoveryError(f"record kind {kind!r} outside any batch")
    return applied
