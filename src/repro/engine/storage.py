"""Simulated disk: fixed-size blocks with physical-I/O accounting.

The paper's experiments run on "an U-SCSI hard drive" with "a block size of
2 KB" (Section 6.1).  :class:`DiskManager` models that device as an in-memory
array of byte blocks.  Every :meth:`DiskManager.read` and
:meth:`DiskManager.write` increments the shared
:class:`~repro.engine.stats.IoStats` counters, which is the substrate-level
definition of a *physical disk block access* used throughout the benchmarks.

Blocks are identified by dense non-negative integers.  Freed blocks are
recycled so that space accounting (:attr:`DiskManager.blocks_in_use`) matches
the O(n/b) space claims of the paper.

Fault injection
---------------
A :class:`~repro.engine.faults.FaultInjector` can be attached to make the
device misbehave deterministically: typed transient or permanent errors on
the Nth read/write, torn writes (only a prefix of the page persists -- the
block is tracked out-of-band and reads back as a
:class:`~repro.engine.errors.TornPageError`, modeling a checksum mismatch),
and :class:`~repro.engine.errors.SimulatedCrash` at any write point.  A
:class:`~repro.engine.retry.RetryPolicy` layered on top retries *transient*
faults only; crashes and permanent faults always propagate.  Both seams are
``None`` by default and add zero work to the fast path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .errors import BlockError, TornPageError
from .stats import IoStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from .faults import FaultInjector
    from .retry import RetryPolicy

#: Default block size, matching the paper's experimental setup (Section 6.1).
DEFAULT_BLOCK_SIZE = 2048


class DiskManager:
    """An in-memory block device with I/O counters.

    Parameters
    ----------
    block_size:
        Size of every block in bytes.  Pages serialised by the engine must
        fit in this size.
    stats:
        Shared counter object; a fresh one is created when omitted.
    injector:
        Optional :class:`~repro.engine.faults.FaultInjector` consulted on
        every physical read and write.
    retry:
        Optional :class:`~repro.engine.retry.RetryPolicy` applied to
        injected *transient* faults.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        stats: Optional[IoStats] = None,
        injector: Optional["FaultInjector"] = None,
        retry: Optional["RetryPolicy"] = None,
    ) -> None:
        if block_size < 64:
            raise BlockError(f"block size {block_size} is too small")
        self.block_size = block_size
        self.stats = stats if stats is not None else IoStats()
        self.injector = injector
        self.retry = retry
        self._blocks: list[Optional[bytes]] = []
        self._free: list[int] = []
        self._free_set: set[int] = set()
        self._torn: set[int] = set()

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Reserve a block and return its id.

        The block's contents are undefined until the first write; reading an
        allocated-but-unwritten block is an error, which catches
        use-before-initialise bugs in the upper layers.
        """
        self.stats.blocks_allocated += 1
        if self._free:
            block_id = self._free.pop()
            self._free_set.discard(block_id)
            self._blocks[block_id] = None
            return block_id
        self._blocks.append(None)
        return len(self._blocks) - 1

    def free(self, block_id: int) -> None:
        """Return a block to the free pool."""
        self._check_id(block_id)
        if block_id in self._free_set:
            raise BlockError(f"double free of block {block_id}")
        self._blocks[block_id] = None
        self._free.append(block_id)
        self._free_set.add(block_id)
        self._torn.discard(block_id)
        self.stats.blocks_allocated -= 1

    # ------------------------------------------------------------------
    # physical I/O
    # ------------------------------------------------------------------
    def read(self, block_id: int) -> bytes:
        """Fetch a block from disk (counted as one physical read)."""
        self._check_id(block_id)
        if self.injector is not None:
            self._consult_read(block_id)
        data = self._blocks[block_id]
        if data is None:
            raise BlockError(f"block {block_id} read before first write")
        self.stats.physical_reads += 1
        if block_id in self._torn:
            raise TornPageError(
                f"block {block_id} fails its checksum: last write was torn"
            )
        return data

    def write(self, block_id: int, data: bytes) -> None:
        """Store a block to disk (counted as one physical write)."""
        self._check_id(block_id)
        if len(data) > self.block_size:
            raise BlockError(
                f"page of {len(data)} bytes exceeds block size {self.block_size}"
            )
        torn = False
        if self.injector is not None:
            torn = self._consult_write(block_id)
        self.stats.physical_writes += 1
        if torn:
            self._blocks[block_id] = bytes(data[: max(1, len(data) // 2)])
            self._torn.add(block_id)
        else:
            self._blocks[block_id] = bytes(data)
            self._torn.discard(block_id)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def blocks_in_use(self) -> int:
        """Number of currently allocated blocks (the paper's space metric)."""
        return len(self._blocks) - len(self._free)

    @property
    def torn_blocks(self) -> frozenset[int]:
        """Blocks whose last write was torn (unreadable until rewritten)."""
        return frozenset(self._torn)

    def _check_id(self, block_id: int) -> None:
        if not 0 <= block_id < len(self._blocks):
            raise BlockError(f"invalid block id {block_id}")
        if block_id in self._free_set:
            raise BlockError(f"access to freed block {block_id}")

    # ------------------------------------------------------------------
    # fault-injection internals
    # ------------------------------------------------------------------
    def _consult_read(self, block_id: int) -> None:
        if self.retry is None:
            self.injector.on_read(block_id)
        else:
            self.retry.call(lambda: self.injector.on_read(block_id))

    def _consult_write(self, block_id: int) -> bool:
        if self.retry is None:
            return self.injector.on_write(block_id)
        return self.retry.call(lambda: self.injector.on_write(block_id))
