"""LRU buffer pool over the simulated disk.

The paper's setup fixes "the database block cache ... to the default value of
200 database blocks" (Section 6.1).  :class:`BufferPool` reproduces that
component: a fixed number of frames, least-recently-used replacement, dirty
tracking and write-back on eviction.

The pool caches *deserialised page objects* (anything implementing
:class:`PageLike`), so a buffer hit costs neither I/O nor decoding -- exactly
like a real block cache holding parsed pages.  A miss reads the block from the
:class:`~repro.engine.storage.DiskManager` (one physical read) and decodes it
via the loader supplied by the owning structure.

Pages that an operation currently holds a Python reference to must be *pinned*
so that eviction cannot detach them from the cache (a detached page would be
re-read from stale disk bytes and updates would be lost).  The B+-tree and
heap code pin the root-to-leaf path of the operation in flight and unpin in
``finally`` blocks.

When a :class:`~repro.engine.faults.FaultInjector` is attached, every dirty
write-back (explicit flush or eviction) is announced as a *flush point*
before the disk write it triggers, so crash experiments can target the
buffer manager's background I/O as well as direct writes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Protocol

from .errors import BufferError_
from .stats import IoStats
from .storage import DiskManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from .faults import FaultInjector

#: Default cache capacity in blocks, matching the paper (Section 6.1).
DEFAULT_CACHE_BLOCKS = 200


class PageLike(Protocol):
    """The minimal interface a cached page object must provide."""

    def to_bytes(self) -> bytes:
        """Serialise the page into at most one disk block."""
        ...


class _Frame:
    """One buffer slot: the page object plus bookkeeping."""

    __slots__ = ("page", "dirty", "pins")

    def __init__(self, page: PageLike) -> None:
        self.page = page
        self.dirty = False
        self.pins = 0


class BufferPool:
    """Fixed-capacity LRU cache of deserialised pages.

    Parameters
    ----------
    disk:
        Backing block device.
    capacity:
        Number of frames.  Must be large enough to pin one operation's page
        path; the engine enforces a floor of 8 frames.
    stats:
        Counter object shared with ``disk``; defaults to ``disk.stats``.
    injector:
        Optional fault injector announced to on every dirty write-back.
    """

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = DEFAULT_CACHE_BLOCKS,
        stats: IoStats | None = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        if capacity < 8:
            raise BufferError_(f"buffer capacity {capacity} below minimum of 8")
        self.disk = disk
        self.capacity = capacity
        self.stats = stats if stats is not None else disk.stats
        self.injector = injector
        self._frames: OrderedDict[int, _Frame] = OrderedDict()

    # ------------------------------------------------------------------
    # page access
    # ------------------------------------------------------------------
    def get(self, block_id: int, loader: Callable[[bytes], PageLike]) -> PageLike:
        """Return the page stored in ``block_id``.

        ``loader`` decodes raw block bytes on a miss.  Every call counts as
        one logical read; only misses touch the disk.
        """
        self.stats.logical_reads += 1
        frame = self._frames.get(block_id)
        if frame is not None:
            self._frames.move_to_end(block_id)
            return frame.page
        data = self.disk.read(block_id)
        page = loader(data)
        self._admit(block_id, _Frame(page))
        return page

    def make_reader(
        self, loader: Callable[[bytes], PageLike]
    ) -> Callable[[int], PageLike]:
        """Bind ``loader`` once and return a fast-path page reader.

        Structures that issue many page requests (B+-tree scans, heap
        fetches) would otherwise re-create a bound-method loader and pay
        several attribute lookups on *every* :meth:`get` call.  The
        returned callable closes over the pool internals and the loader,
        so a cache hit costs one dict probe and one LRU touch.

        The accounting contract is identical to :meth:`get`: every call is
        one logical read, only misses touch the disk, and admissions go
        through the same eviction path.  The closure captures the frame
        table *object* (never rebound -- :meth:`clear` empties it in
        place), so readers stay valid across cache clears.
        """
        frames = self._frames
        frames_get = frames.get
        move_to_end = frames.move_to_end
        stats = self.stats
        disk_read = self.disk.read
        admit = self._admit

        def read(block_id: int) -> PageLike:
            stats.logical_reads += 1
            frame = frames_get(block_id)
            if frame is not None:
                move_to_end(block_id)
                return frame.page
            page = loader(disk_read(block_id))
            admit(block_id, _Frame(page))
            return page

        return read

    def scan_refs(
        self, loader: Callable[[bytes], PageLike]
    ) -> tuple["OrderedDict[int, _Frame]", IoStats, Callable[[int], PageLike]]:
        """References for loops that inline the cache-hit fast path.

        The innermost scan loops (B+-tree leaf walks) probe the cache once
        per page; routing every probe through a Python callable costs one
        frame activation per page even on a hit.  ``scan_refs`` hands such
        loops ``(frames, stats, miss)`` so a hit is pure C-level dict work
        while the miss path stays centralised here.

        Contract for the caller, per probe -- identical accounting to
        :meth:`get`:

        1. ``stats.logical_reads += 1``;
        2. ``frame = frames.get(block_id)``; on a hit call
           ``frames.move_to_end(block_id)`` and use ``frame.page``;
        3. on a miss call ``miss(block_id)``, which performs the physical
           read, decodes via ``loader`` and admits the page (evicting
           through the normal path).

        The frame table and stats objects are stable for the pool's
        lifetime (:meth:`clear` empties the table in place).
        """

        def miss(block_id: int) -> PageLike:
            page = loader(self.disk.read(block_id))
            self._admit(block_id, _Frame(page))
            return page

        return self._frames, self.stats, miss

    def put_new(self, block_id: int, page: PageLike) -> None:
        """Register a freshly created page (dirty, not yet on disk)."""
        if block_id in self._frames:
            raise BufferError_(f"block {block_id} already buffered")
        frame = _Frame(page)
        frame.dirty = True
        self._admit(block_id, frame)

    def mark_dirty(self, block_id: int) -> None:
        """Record that the cached page for ``block_id`` was modified."""
        frame = self._frames.get(block_id)
        if frame is None:
            raise BufferError_(
                f"mark_dirty on non-resident block {block_id}; pin pages "
                "before mutating them"
            )
        frame.dirty = True
        self._frames.move_to_end(block_id)

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------
    def pin(self, block_id: int) -> None:
        """Exempt a resident page from eviction until unpinned."""
        frame = self._frames.get(block_id)
        if frame is None:
            raise BufferError_(f"pin on non-resident block {block_id}")
        frame.pins += 1

    def unpin(self, block_id: int) -> None:
        """Release one pin on ``block_id``."""
        frame = self._frames.get(block_id)
        if frame is None:
            raise BufferError_(f"unpin on non-resident block {block_id}")
        if frame.pins <= 0:
            raise BufferError_(f"unpin without pin on block {block_id}")
        frame.pins -= 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drop(self, block_id: int) -> None:
        """Discard a page without write-back (caller is freeing the block)."""
        frame = self._frames.get(block_id)
        if frame is None:
            return
        if frame.pins > 0:
            raise BufferError_(f"drop of pinned block {block_id}")
        del self._frames[block_id]

    def flush_block(self, block_id: int) -> None:
        """Write one dirty page back to disk, keeping it cached."""
        frame = self._frames.get(block_id)
        if frame is not None and frame.dirty:
            if self.injector is not None:
                self.injector.on_flush(block_id)
            self.disk.write(block_id, frame.page.to_bytes())
            frame.dirty = False

    def flush_all(self) -> None:
        """Write back every dirty page (e.g. before inspecting the disk)."""
        for block_id in list(self._frames):
            self.flush_block(block_id)

    def clear(self) -> None:
        """Flush everything and empty the cache (cold-cache benchmarking)."""
        self.flush_all()
        for block_id, frame in self._frames.items():
            if frame.pins > 0:
                raise BufferError_(f"clear with pinned block {block_id}")
        self._frames.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _admit(self, block_id: int, frame: _Frame) -> None:
        self._frames[block_id] = frame
        self._frames.move_to_end(block_id)
        while len(self._frames) > self.capacity:
            # Never evict the page being admitted: the caller holds a live
            # reference and may mutate it next.
            self._evict_one(exclude=block_id)

    def _evict_one(self, exclude: int) -> None:
        for victim_id, victim in self._frames.items():
            if victim.pins == 0 and victim_id != exclude:
                break
        else:
            raise BufferError_(
                "all buffered pages are pinned; cannot evict "
                f"(capacity={self.capacity})"
            )
        if victim.dirty:
            if self.injector is not None:
                self.injector.on_flush(victim_id)
            self.disk.write(victim_id, victim.page.to_bytes())
        del self._frames[victim_id]

    @property
    def resident(self) -> int:
        """Number of pages currently cached."""
        return len(self._frames)

    def is_resident(self, block_id: int) -> bool:
        """Whether ``block_id`` is currently cached (test helper)."""
        return block_id in self._frames
