"""Exception hierarchy for the storage engine.

Every error raised by :mod:`repro.engine` derives from :class:`EngineError`
so that callers can catch storage-layer failures without masking unrelated
bugs.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all storage-engine errors."""


class BlockError(EngineError):
    """Raised for invalid block identifiers or corrupted block contents."""


class BufferError_(EngineError):
    """Raised when the buffer pool cannot satisfy a request.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`BufferError`.
    """


class SerializationError(EngineError):
    """Raised when a record or page cannot be encoded or decoded."""


class SchemaError(EngineError):
    """Raised for catalog misuse: duplicate names, unknown tables, bad arity."""


class KeyNotFoundError(EngineError):
    """Raised when deleting an entry that is not present in an index."""
