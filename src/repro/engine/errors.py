"""Exception hierarchy for the storage engine.

Every error raised by :mod:`repro.engine` derives from :class:`EngineError`
so that callers can catch storage-layer failures without masking unrelated
bugs.

The fault-injection and recovery subsystem adds a *typed taxonomy* on top of
the base hierarchy: callers distinguish **transient** faults (worth retrying,
:class:`TransientError`) from **permanent** ones (:class:`PermanentIOError`,
:class:`TornPageError`), and a :class:`SimulatedCrash` models the process
dying mid-operation: it stays inside the :class:`EngineError` tree so test
harnesses can catch it precisely, but retry loops must never swallow it --
the only valid continuation is crash recovery.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all storage-engine errors."""


class BlockError(EngineError):
    """Raised for invalid block identifiers or corrupted block contents."""


class BufferError_(EngineError):
    """Raised when the buffer pool cannot satisfy a request.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`BufferError`.
    """


class SerializationError(EngineError):
    """Raised when a record or page cannot be encoded or decoded."""


class SchemaError(EngineError):
    """Raised for catalog misuse: duplicate names, unknown tables, bad arity."""


class KeyNotFoundError(EngineError):
    """Raised when deleting an entry that is not present in an index."""


# ----------------------------------------------------------------------
# fault taxonomy (fault injection, WAL, recovery)
# ----------------------------------------------------------------------
class TransientError(EngineError):
    """A fault that may succeed on retry (e.g. a flaky device request).

    Retry policies (:mod:`repro.engine.retry`) treat exactly this subtree
    as retryable; everything else propagates immediately.
    """


class TransientIOError(TransientError, BlockError):
    """An injected transient failure of a single block read or write."""


class PermanentIOError(BlockError):
    """An injected hard failure of a block: retrying cannot help."""


class TornPageError(BlockError):
    """A block whose last write was torn (partially persisted).

    Reading a torn block models a checksum mismatch on a real device; the
    contents are unusable and the page must be recovered from the WAL.
    """


class SimulatedCrash(EngineError):
    """The process 'dies' at an injected write or flush point.

    Raised by the :class:`~repro.engine.faults.FaultInjector` to abandon
    the in-memory state mid-mutation.  Retry loops MUST re-raise it; the
    only valid response is :meth:`~repro.engine.database.Database.recover`.
    """


class WalError(EngineError):
    """Raised for malformed write-ahead-log records or misuse of the WAL."""


class RecoveryError(EngineError):
    """Raised when WAL replay cannot reconstruct a consistent database."""


class RetryExhaustedError(EngineError):
    """A transient fault persisted through every allowed retry attempt.

    The original transient error is attached as ``__cause__``.
    """
