"""Heap files: unordered base-table storage with stable row ids.

A heap page stores fixed-width integer rows in slots; a slot is either live
or dead (deleted).  Row ids encode ``(page, slot)`` as a single integer so
they can be appended to index entries, which is how the engine's secondary
indexes stay unambiguous even for duplicate key values.

The free-slot directory is kept in memory and is rebuilt trivially because
the simulated disk does not outlive the process; this matches how the engine
is used by the benchmarks (build, query, discard).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from .buffer import BufferPool
from .errors import BlockError, SchemaError, SerializationError
from .serial import PAGE_HEADER_SIZE, IntTupleCodec, pack_header, unpack_header

#: Page type tag for heap pages.
PAGE_HEAP = 3


class HeapPage:
    """Slots of fixed-width rows; ``None`` marks a dead slot."""

    __slots__ = ("slots",)

    def __init__(
        self, slots: Optional[list[Optional[tuple[int, ...]]]] = None
    ) -> None:
        self.slots: list[Optional[tuple[int, ...]]] = slots if slots is not None else []

    def to_bytes_with(self, codec: IntTupleCodec) -> bytes:
        # Each slot is serialised as (live_flag, columns...).
        flat: list[tuple[int, ...]] = []
        dead = (0,) * codec.arity
        for slot in self.slots:
            if slot is None:
                flat.append(dead)
            else:
                flat.append((1,) + slot)
        header = pack_header(PAGE_HEAP, len(self.slots), 0)
        return header + codec.pack_many(flat)

    @classmethod
    def from_bytes_with(cls, codec: IntTupleCodec, data: bytes) -> "HeapPage":
        page_type, count, _aux = unpack_header(data)
        if page_type != PAGE_HEAP:
            raise SerializationError(f"expected heap page, found type {page_type}")
        raw = codec.unpack_many(data[PAGE_HEADER_SIZE:], count)
        slots: list[Optional[tuple[int, ...]]] = []
        for record in raw:
            if record[0] == 1:
                slots.append(record[1:])
            else:
                slots.append(None)
        return cls(slots)


class _BoundHeap:
    """Pairs a heap page with its codec for buffer-pool serialisation."""

    __slots__ = ("page", "codec")

    def __init__(self, page: HeapPage, codec: IntTupleCodec) -> None:
        self.page = page
        self.codec = codec

    def to_bytes(self) -> bytes:
        return self.page.to_bytes_with(self.codec)


class HeapFile:
    """An append-friendly collection of rows with delete-in-place.

    Parameters
    ----------
    pool:
        Buffer pool the file lives on.
    arity:
        Number of integer columns per row.
    name:
        Diagnostic name.
    """

    def __init__(self, pool: BufferPool, arity: int, name: str = "heap") -> None:
        if arity < 1:
            raise SchemaError("heap rows need at least one column")
        self.pool = pool
        self.name = name
        self.arity = arity
        # One extra column per slot holds the live flag.
        self.codec = IntTupleCodec(arity + 1)
        block_size = pool.disk.block_size
        self.slots_per_page = (block_size - PAGE_HEADER_SIZE) // self.codec.entry_size
        if self.slots_per_page < 1:
            raise SchemaError(
                f"block size {block_size} too small for heap arity {arity}"
            )
        # Pre-bound fast-path reader: one loader closure per heap file.
        self._read = pool.make_reader(self._load)
        self._page_ids: list[int] = []
        self._pages_with_space: set[int] = set()
        self.row_count = 0

    # ------------------------------------------------------------------
    # row id arithmetic
    # ------------------------------------------------------------------
    def _make_rowid(self, page_index: int, slot: int) -> int:
        return page_index * self.slots_per_page + slot

    def _split_rowid(self, rowid: int) -> tuple[int, int]:
        page_index, slot = divmod(rowid, self.slots_per_page)
        if not 0 <= page_index < len(self._page_ids):
            raise BlockError(f"{self.name}: invalid rowid {rowid}")
        return page_index, slot

    # ------------------------------------------------------------------
    # page access
    # ------------------------------------------------------------------
    def _load(self, data: bytes) -> _BoundHeap:
        return _BoundHeap(HeapPage.from_bytes_with(self.codec, data), self.codec)

    def _get_page(self, page_index: int) -> HeapPage:
        return self._read(self._page_ids[page_index]).page

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def insert(self, row: tuple[int, ...]) -> int:
        """Store a row; return its row id."""
        self._check_arity(row)
        if self._pages_with_space:
            page_index = min(self._pages_with_space)
            page = self._get_page(page_index)
            block_id = self._page_ids[page_index]
            for slot, existing in enumerate(page.slots):
                if existing is None:
                    page.slots[slot] = tuple(row)
                    self.pool.mark_dirty(block_id)
                    self._note_fill(page_index, page)
                    self.row_count += 1
                    return self._make_rowid(page_index, slot)
            if len(page.slots) < self.slots_per_page:
                page.slots.append(tuple(row))
                self.pool.mark_dirty(block_id)
                self._note_fill(page_index, page)
                self.row_count += 1
                return self._make_rowid(page_index, len(page.slots) - 1)
            # Directory was stale; fall through to allocate a fresh page.
            self._pages_with_space.discard(page_index)
        block_id = self.pool.disk.allocate()
        page = HeapPage([tuple(row)])
        self.pool.put_new(block_id, _BoundHeap(page, self.codec))
        self._page_ids.append(block_id)
        page_index = len(self._page_ids) - 1
        self._note_fill(page_index, page)
        self.row_count += 1
        return self._make_rowid(page_index, 0)

    def fetch(self, rowid: int) -> tuple[int, ...]:
        """Return the live row stored under ``rowid``."""
        page_index, slot = self._split_rowid(rowid)
        page = self._get_page(page_index)
        if slot >= len(page.slots) or page.slots[slot] is None:
            raise BlockError(f"{self.name}: rowid {rowid} is not live")
        return page.slots[slot]

    def fetch_many(self, rowids: Sequence[int]) -> list[tuple[int, ...]]:
        """Fetch several rows, grouping same-page runs into one page access.

        Rows come back in ``rowids`` order.  Consecutive row ids that live
        on the same heap page share a single page request, so a rowid list
        in index order (the common "table access by index rowid" pattern)
        costs one logical read per distinct page run instead of one per
        row.  The request *order* of pages matches the per-row fetch loop,
        so buffer replacement behaves identically.
        """
        rows: list[tuple[int, ...]] = []
        slots_per_page = self.slots_per_page
        current_index: Optional[int] = None
        slots: list = []
        for rowid in rowids:
            page_index, slot = divmod(rowid, slots_per_page)
            if page_index != current_index:
                if not 0 <= page_index < len(self._page_ids):
                    raise BlockError(f"{self.name}: invalid rowid {rowid}")
                slots = self._get_page(page_index).slots
                current_index = page_index
            row = slots[slot] if slot < len(slots) else None
            if row is None:
                raise BlockError(f"{self.name}: rowid {rowid} is not live")
            rows.append(row)
        return rows

    def delete(self, rowid: int) -> tuple[int, ...]:
        """Kill the slot under ``rowid``; return the old row."""
        page_index, slot = self._split_rowid(rowid)
        page = self._get_page(page_index)
        if slot >= len(page.slots) or page.slots[slot] is None:
            raise BlockError(f"{self.name}: rowid {rowid} is not live")
        row = page.slots[slot]
        page.slots[slot] = None
        self.pool.mark_dirty(self._page_ids[page_index])
        self._pages_with_space.add(page_index)
        self.row_count -= 1
        return row

    def scan(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Yield ``(rowid, row)`` for every live row in storage order."""
        for page_index in range(len(self._page_ids)):
            page = self._get_page(page_index)
            # Snapshot so consumer pauses survive eviction.
            slots = list(page.slots)
            for slot, row in enumerate(slots):
                if row is not None:
                    yield self._make_rowid(page_index, slot), row

    def scan_batches(self) -> Iterator[list[tuple[int, tuple[int, ...]]]]:
        """Batched full scan: one ``[(rowid, row), ...]`` list per page.

        Same rows, same page requests and same order as :meth:`scan`,
        but consumers get whole page slices instead of a per-row
        generator hop -- the heap-side mirror of the B+-tree's
        ``scan_batches`` leaf slices.
        """
        for page_index in range(len(self._page_ids)):
            page = self._get_page(page_index)
            base = page_index * self.slots_per_page
            batch = [
                (base + slot, row)
                for slot, row in enumerate(page.slots)
                if row is not None
            ]
            if batch:
                yield batch

    def bulk_append(self, rows: list[tuple[int, ...]]) -> list[int]:
        """Append many rows with direct page writes; return their row ids."""
        rowids: list[int] = []
        disk = self.pool.disk
        position = 0
        while position < len(rows):
            chunk = rows[position : position + self.slots_per_page]
            for row in chunk:
                self._check_arity(row)
            block_id = disk.allocate()
            page = HeapPage([tuple(row) for row in chunk])
            disk.write(block_id, page.to_bytes_with(self.codec))
            self._page_ids.append(block_id)
            page_index = len(self._page_ids) - 1
            rowids.extend(
                self._make_rowid(page_index, slot) for slot in range(len(chunk))
            )
            if len(chunk) < self.slots_per_page:
                self._pages_with_space.add(page_index)
            position += len(chunk)
        self.row_count += len(rows)
        return rowids

    @property
    def page_count(self) -> int:
        """Number of pages the heap occupies."""
        return len(self._page_ids)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _note_fill(self, page_index: int, page: HeapPage) -> None:
        full = len(page.slots) >= self.slots_per_page and all(
            slot is not None for slot in page.slots
        )
        if full:
            self._pages_with_space.discard(page_index)
        else:
            self._pages_with_space.add(page_index)

    def _check_arity(self, row: tuple[int, ...]) -> None:
        if len(row) != self.arity:
            raise SchemaError(f"{self.name}: row arity {len(row)} != {self.arity}")
