"""Fixed-width record and page serialisation.

All engine schemas in this reproduction are tuples of signed 64-bit integers
(interval bounds, backbone node values, tile numbers, identifiers, row ids).
Restricting the engine to one primitive type keeps page geometry exact and
cheap: an entry of arity *k* occupies exactly ``8 * k`` bytes, so the number
of entries per 2 KB block -- the quantity that drives every I/O figure in the
paper -- is a simple function of the schema.

:class:`IntTupleCodec` encodes a homogeneous sequence of such tuples with one
:func:`struct.pack` call, which keeps (de)serialisation off the critical path
of benchmark response times.
"""

from __future__ import annotations

import struct
from itertools import chain
from typing import Iterable, Sequence

from .errors import SerializationError

#: Smallest/largest values storable in an engine column.  Also used as
#: open-bound sentinels when padding range-scan prefixes.
INT_MIN = -(2**63)
INT_MAX = 2**63 - 1


class IntTupleCodec:
    """Codec for lists of fixed-arity signed 64-bit integer tuples.

    ``pack_many``/``unpack_many`` sit on the page (de)serialisation hot
    path -- every buffer-pool miss decodes a whole page through them -- so
    both avoid per-entry Python work: packing streams the entries through
    one cached :class:`struct.Struct` per batch size, and unpacking slices
    the raw block with a zero-copy ``memoryview`` and ``iter_unpack``.
    """

    __slots__ = ("arity", "entry_size", "_single", "_batch_structs")

    def __init__(self, arity: int) -> None:
        if arity < 1:
            raise SerializationError(f"arity must be positive, got {arity}")
        self.arity = arity
        self.entry_size = 8 * arity
        self._single = struct.Struct(f"<{arity}q")
        # Cache of batch Structs keyed by entry count.  Page geometry caps
        # the number of distinct counts at the page capacity, so the cache
        # stays small for the codec's lifetime.
        self._batch_structs: dict[int, struct.Struct] = {}

    def _batch_struct(self, count: int) -> struct.Struct:
        cached = self._batch_structs.get(count)
        if cached is None:
            cached = struct.Struct(f"<{count * self.arity}q")
            self._batch_structs[count] = cached
        return cached

    def pack_many(self, entries: Sequence[tuple[int, ...]]) -> bytes:
        """Encode ``entries`` back to back."""
        count = len(entries)
        if count == 0:
            return b""
        try:
            return self._batch_struct(count).pack(*chain.from_iterable(entries))
        except struct.error as exc:
            raise SerializationError(str(exc)) from exc

    def unpack_many(self, data: bytes, count: int) -> list[tuple[int, ...]]:
        """Decode ``count`` consecutive entries from ``data``."""
        if count == 0:
            return []
        needed = count * self.entry_size
        if len(data) < needed:
            raise SerializationError(
                f"need {needed} bytes for {count} entries, have {len(data)}"
            )
        return list(self._single.iter_unpack(memoryview(data)[:needed]))

    def pack_one(self, entry: tuple[int, ...]) -> bytes:
        """Encode a single entry."""
        try:
            return self._single.pack(*entry)
        except struct.error as exc:
            raise SerializationError(str(exc)) from exc

    def unpack_one(self, data: bytes, offset: int = 0) -> tuple[int, ...]:
        """Decode a single entry starting at ``offset``."""
        try:
            return self._single.unpack_from(data, offset)
        except struct.error as exc:
            raise SerializationError(str(exc)) from exc


#: Page header: page type tag (1 byte), entry count (4 bytes),
#: auxiliary block pointer (8 bytes, e.g. the next-leaf link), padding.
PAGE_HEADER = struct.Struct("<bxxxiq")
PAGE_HEADER_SIZE = PAGE_HEADER.size


def pack_header(page_type: int, count: int, aux: int) -> bytes:
    """Encode the common page header."""
    return PAGE_HEADER.pack(page_type, count, aux)


def unpack_header(data: bytes) -> tuple[int, int, int]:
    """Decode the common page header into ``(page_type, count, aux)``."""
    if len(data) < PAGE_HEADER_SIZE:
        raise SerializationError("page shorter than its header")
    return PAGE_HEADER.unpack_from(data, 0)


def pad_low(prefix: Sequence[int], arity: int) -> tuple[int, ...]:
    """Extend ``prefix`` to ``arity`` with minimal values (range-scan lower bound)."""
    return tuple(prefix) + (INT_MIN,) * (arity - len(prefix))


def pad_high(prefix: Sequence[int], arity: int) -> tuple[int, ...]:
    """Extend ``prefix`` to ``arity`` with maximal values (range-scan upper bound)."""
    return tuple(prefix) + (INT_MAX,) * (arity - len(prefix))


def flatten(entries: Iterable[tuple[int, ...]]) -> list[int]:
    """Concatenate tuples into one flat integer list (test helper)."""
    out: list[int] = []
    for entry in entries:
        out.extend(entry)
    return out
