"""I/O statistics for the storage engine.

The paper's experimental evaluation (Section 6) reports *physical disk block
accesses* and *response time* measured on an Oracle8i server with a 200-block
buffer cache of 2 KB blocks.  This module provides the counters that make the
same quantities observable on our substrate:

* **physical reads** -- blocks fetched from the (simulated) disk because they
  were not resident in the buffer pool;
* **physical writes** -- dirty blocks flushed to disk on eviction or flush;
* **logical reads** -- every page request served, hit or miss;
* **wal reads / wal writes** -- blocks of write-ahead log traffic (forces on
  the write side, recovery scans on the read side), kept separate from the
  data-block counters so WAL overhead is directly observable.

:class:`IoStats` is a plain mutable counter object shared by the disk manager
and buffer pool of one :class:`~repro.engine.database.Database`.
:func:`measure` snapshots the counters around a block of code and yields the
delta, which is how every benchmark in :mod:`repro.bench` observes its I/O.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class IoSnapshot:
    """An immutable point-in-time copy of the I/O counters."""

    physical_reads: int = 0
    physical_writes: int = 0
    logical_reads: int = 0
    blocks_allocated: int = 0
    wal_reads: int = 0
    wal_writes: int = 0

    @property
    def physical_total(self) -> int:
        """Total physical block accesses (reads + writes), data blocks only."""
        return self.physical_reads + self.physical_writes

    @property
    def wal_total(self) -> int:
        """Total WAL block accesses (reads + writes)."""
        return self.wal_reads + self.wal_writes

    def __sub__(self, other: "IoSnapshot") -> "IoSnapshot":
        return IoSnapshot(
            physical_reads=self.physical_reads - other.physical_reads,
            physical_writes=self.physical_writes - other.physical_writes,
            logical_reads=self.logical_reads - other.logical_reads,
            blocks_allocated=self.blocks_allocated - other.blocks_allocated,
            wal_reads=self.wal_reads - other.wal_reads,
            wal_writes=self.wal_writes - other.wal_writes,
        )


class IoStats:
    """Mutable I/O counters incremented by the storage layers.

    One instance is shared between a :class:`~repro.engine.storage.DiskManager`
    and its :class:`~repro.engine.buffer.BufferPool` so that a single object
    describes all traffic of a database.
    """

    __slots__ = (
        "physical_reads",
        "physical_writes",
        "logical_reads",
        "blocks_allocated",
        "wal_reads",
        "wal_writes",
    )

    def __init__(self) -> None:
        self.physical_reads = 0
        self.physical_writes = 0
        self.logical_reads = 0
        self.blocks_allocated = 0
        self.wal_reads = 0
        self.wal_writes = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.physical_reads = 0
        self.physical_writes = 0
        self.logical_reads = 0
        self.blocks_allocated = 0
        self.wal_reads = 0
        self.wal_writes = 0

    def snapshot(self) -> IoSnapshot:
        """Return an immutable copy of the current counter values."""
        return IoSnapshot(
            physical_reads=self.physical_reads,
            physical_writes=self.physical_writes,
            logical_reads=self.logical_reads,
            blocks_allocated=self.blocks_allocated,
            wal_reads=self.wal_reads,
            wal_writes=self.wal_writes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IoStats(physical_reads={self.physical_reads}, "
            f"physical_writes={self.physical_writes}, "
            f"logical_reads={self.logical_reads}, "
            f"blocks_allocated={self.blocks_allocated}, "
            f"wal_reads={self.wal_reads}, "
            f"wal_writes={self.wal_writes})"
        )


@contextmanager
def measure(stats: IoStats) -> Iterator[IoSnapshot]:
    """Yield a delta snapshot of ``stats`` covering the ``with`` body.

    The yielded object is filled in *after* the body completes::

        with measure(db.stats) as delta:
            run_query()
        print(delta.physical_reads)
    """
    before = stats.snapshot()
    delta = IoSnapshot()
    try:
        yield delta
    finally:
        after = stats.snapshot()
        diff = after - before
        delta.physical_reads = diff.physical_reads
        delta.physical_writes = diff.physical_writes
        delta.logical_reads = diff.logical_reads
        delta.blocks_allocated = diff.blocks_allocated
        delta.wal_reads = diff.wal_reads
        delta.wal_writes = diff.wal_writes
