"""Bounded retry with exponential backoff for transient faults.

One policy object serves both backends: the simulated engine retries
:class:`~repro.engine.errors.TransientError` raised by the fault-injection
seam, and the sqlite backend reuses the same loop for ``busy`` / ``locked``
``sqlite3.OperationalError`` by passing a ``classify`` predicate.

Backoff is *simulated by default*: the policy records the delay it would
have slept (``simulated_backoff``) without actually sleeping, keeping the
test suite and benchmarks deterministic and fast.  Pass ``sleep=time.sleep``
to wait for real.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

from .errors import RetryExhaustedError, SimulatedCrash, TransientError

T = TypeVar("T")


def default_classify(exc: BaseException) -> bool:
    """The engine-path transient test: the typed taxonomy, nothing else."""
    return isinstance(exc, TransientError)


class RetryPolicy:
    """Retry a callable a bounded number of times with exponential backoff.

    Parameters
    ----------
    attempts:
        Total attempts (first try included).  ``attempts=1`` disables
        retrying.
    base_delay / multiplier / max_delay:
        Exponential backoff schedule: attempt ``k`` waits
        ``min(base_delay * multiplier**(k-1), max_delay)`` before retrying.
    sleep:
        Delay callable.  ``None`` (the default) only *accounts* the delay
        in :attr:`simulated_backoff` -- deterministic tests, no wall time.

    A :class:`~repro.engine.errors.SimulatedCrash` is never retried, no
    matter what ``classify`` says: a dead process cannot try again.
    """

    def __init__(
        self,
        attempts: int = 4,
        base_delay: float = 0.001,
        multiplier: float = 2.0,
        max_delay: float = 0.1,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be at least 1")
        self.attempts = attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.sleep = sleep
        self.total_retries = 0
        self.simulated_backoff = 0.0

    def delay_for(self, attempt: int) -> float:
        """The backoff delay after failed attempt number ``attempt``."""
        return min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)

    def call(
        self,
        fn: Callable[[], T],
        classify: Callable[[BaseException], bool] = default_classify,
        on_retry: Optional[Callable[[BaseException], None]] = None,
    ) -> T:
        """Invoke ``fn`` until it succeeds or attempts are exhausted.

        ``classify(exc)`` decides whether an exception is transient;
        non-transient exceptions propagate untouched.  ``on_retry(exc)``
        runs before each re-attempt (the sqlite path rolls back there).
        Exhaustion raises :class:`RetryExhaustedError` from the last
        transient error.
        """
        for attempt in range(1, self.attempts + 1):
            try:
                return fn()
            except SimulatedCrash:
                raise
            except BaseException as exc:
                if not classify(exc):
                    raise
                if attempt == self.attempts:
                    raise RetryExhaustedError(
                        f"transient fault persisted through "
                        f"{self.attempts} attempts: {exc}"
                    ) from exc
                self.total_retries += 1
                self._backoff(self.delay_for(attempt))
                if on_retry is not None:
                    on_retry(exc)
        raise AssertionError("unreachable")  # pragma: no cover

    def _backoff(self, delay: float) -> None:
        if self.sleep is not None:
            self.sleep(delay)
        else:
            self.simulated_backoff += delay
