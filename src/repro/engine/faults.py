"""Deterministic, seeded fault injection for the storage engine.

The simulated disk of :mod:`repro.engine.storage` normally succeeds on every
request.  :class:`FaultInjector` is the seam that makes it *misbehave on
purpose*: an injector scheduled into a
:class:`~repro.engine.database.Database` observes every physical read, every
physical write, every dirty-page flush and every WAL force, and can

* fail the Nth read or write with a typed transient or permanent error,
* tear the Nth write (the block persists only a prefix of the page),
* raise a :class:`~repro.engine.errors.SimulatedCrash` at the Nth *write
  point* -- a global counter spanning disk writes, dirty flushes and WAL
  forces, so "crash at every possible point during this workload" is an
  enumerable experiment: run once with a passive injector to count the
  points, then iterate ``crash_at_write_point(n)`` for ``n in 1..count``.

Everything is deterministic.  Faults are either scheduled explicitly by
ordinal or drawn from a seeded :class:`random.Random`, so a failing
experiment replays exactly.
"""

from __future__ import annotations

import random
from typing import Optional

from .errors import (
    PermanentIOError,
    SimulatedCrash,
    TransientIOError,
)

#: Fault kinds accepted by the scheduling calls.
READ_KINDS = ("transient", "permanent")
WRITE_KINDS = ("transient", "permanent", "torn", "crash")


def _make_error(kind: str, op: str, block_id: Optional[int]) -> Exception:
    where = f"block {block_id}" if block_id is not None else "wal"
    if kind == "transient":
        return TransientIOError(f"injected transient {op} fault on {where}")
    if kind == "permanent":
        return PermanentIOError(f"injected permanent {op} fault on {where}")
    raise ValueError(f"unknown fault kind {kind!r}")


class FaultInjector:
    """A deterministic fault plan over the engine's I/O points.

    Parameters
    ----------
    seed:
        Seed for the random-fault mode (:meth:`random_faults`).  Scheduled
        (ordinal) faults do not consume randomness at all.

    Counters (all 1-based at the first event):

    * ``reads`` / ``writes`` -- physical disk reads / writes observed;
    * ``flushes`` -- dirty-page write-backs observed (each is followed by
      the disk write it triggers);
    * ``wal_forces`` -- WAL force (group-commit) events observed;
    * ``write_points`` -- the global crash axis: every write, flush and
      WAL force increments it;
    * ``faults_injected`` -- total faults actually raised or applied.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.reads = 0
        self.writes = 0
        self.flushes = 0
        self.wal_forces = 0
        self.write_points = 0
        self.faults_injected = 0
        self._read_faults: dict[int, str] = {}
        self._write_faults: dict[int, str] = {}
        self._crash_points: set[int] = set()
        self._read_rate = 0.0
        self._write_rate = 0.0
        self._random_kind = "transient"

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def fail_read(self, nth: int, kind: str = "transient") -> "FaultInjector":
        """Fail the ``nth`` physical read (1-based) with ``kind``."""
        if kind not in READ_KINDS:
            raise ValueError(f"read fault kind must be one of {READ_KINDS}")
        self._read_faults[nth] = kind
        return self

    def fail_write(self, nth: int, kind: str = "transient") -> "FaultInjector":
        """Fail the ``nth`` physical write (1-based) with ``kind``.

        ``kind="torn"`` lets the write through but persists only half the
        page; ``kind="crash"`` raises :class:`SimulatedCrash` instead.
        """
        if kind not in WRITE_KINDS:
            raise ValueError(f"write fault kind must be one of {WRITE_KINDS}")
        self._write_faults[nth] = kind
        return self

    def tear_write(self, nth: int) -> "FaultInjector":
        """Tear the ``nth`` physical write (shorthand for ``kind='torn'``)."""
        return self.fail_write(nth, kind="torn")

    def crash_at_write_point(self, nth: int) -> "FaultInjector":
        """Raise :class:`SimulatedCrash` at global write point ``nth``.

        Write points span disk writes, dirty flushes and WAL forces, in
        the order the engine performs them.
        """
        self._crash_points.add(nth)
        return self

    def random_faults(
        self,
        read_rate: float = 0.0,
        write_rate: float = 0.0,
        kind: str = "transient",
    ) -> "FaultInjector":
        """Draw faults from the seeded RNG at the given per-event rates."""
        if kind not in ("transient", "permanent"):
            raise ValueError("random faults must be transient or permanent")
        self._read_rate = read_rate
        self._write_rate = write_rate
        self._random_kind = kind
        return self

    # ------------------------------------------------------------------
    # hooks (called by DiskManager / BufferPool / WriteAheadLog)
    # ------------------------------------------------------------------
    def on_read(self, block_id: int) -> None:
        """Observe one physical read; raise if a fault is due."""
        self.reads += 1
        kind = self._read_faults.pop(self.reads, None)
        if kind is None and self._read_rate and self.rng.random() < self._read_rate:
            kind = self._random_kind
        if kind is not None:
            self.faults_injected += 1
            raise _make_error(kind, "read", block_id)

    def on_write(self, block_id: int) -> bool:
        """Observe one physical write; return ``True`` if it must be torn."""
        self.writes += 1
        self._bump_write_point(block_id, "write")
        kind = self._write_faults.pop(self.writes, None)
        if kind is None and self._write_rate and self.rng.random() < self._write_rate:
            kind = self._random_kind
        if kind is None:
            return False
        self.faults_injected += 1
        if kind == "torn":
            return True
        if kind == "crash":
            raise SimulatedCrash(
                f"injected crash on write #{self.writes} (block {block_id})"
            )
        raise _make_error(kind, "write", block_id)

    def on_flush(self, block_id: int) -> None:
        """Observe one dirty-page flush point (before its disk write)."""
        self.flushes += 1
        self._bump_write_point(block_id, "flush")

    def on_wal_force(self) -> None:
        """Observe one WAL force (the group-commit durability point)."""
        self.wal_forces += 1
        self._bump_write_point(None, "wal-force")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _bump_write_point(self, block_id: Optional[int], what: str) -> None:
        self.write_points += 1
        if self.write_points in self._crash_points:
            self._crash_points.discard(self.write_points)
            self.faults_injected += 1
            where = f"block {block_id}" if block_id is not None else "wal"
            raise SimulatedCrash(
                f"injected crash at write point #{self.write_points} "
                f"({what} on {where})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(reads={self.reads}, writes={self.writes}, "
            f"flushes={self.flushes}, wal_forces={self.wal_forces}, "
            f"write_points={self.write_points}, "
            f"faults_injected={self.faults_injected})"
        )
