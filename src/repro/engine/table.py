"""Tables: schemas, heap storage and secondary B+-tree indexes.

A :class:`Table` is the engine's equivalent of the paper's

.. code-block:: sql

    CREATE TABLE Intervals (node int, lower int, upper int, id int);
    CREATE INDEX lowerIndex ON Intervals (node, lower);
    CREATE INDEX upperIndex ON Intervals (node, upper);

(Figure 2).  Index entries consist of the index's key columns followed by the
row id, so entries are always unique and an index range scan can answer a
query without touching the heap -- the *index-organised* behaviour the paper
relies on ("the attribute id was included in the indexes", Section 4.3).

When the owning :class:`~repro.engine.database.Database` runs with a
write-ahead log, every DML and DDL statement is announced through the
``log`` callback *before* it is applied, which is all the recovery path
needs: replaying the logical records rebuilds heap and indexes.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from .bptree import BPlusTree
from .buffer import BufferPool
from .errors import SchemaError
from .heap import HeapFile


class IndexDef:
    """A named index over a subset of a table's columns."""

    __slots__ = ("name", "columns", "column_indexes", "tree")

    def __init__(
        self,
        name: str,
        columns: tuple[str, ...],
        column_indexes: tuple[int, ...],
        tree: BPlusTree,
    ) -> None:
        self.name = name
        self.columns = columns
        self.column_indexes = column_indexes
        self.tree = tree

    def entry_for(self, row: tuple[int, ...], rowid: int) -> tuple[int, ...]:
        """Build the index entry (key columns + rowid) for a row."""
        return tuple(row[i] for i in self.column_indexes) + (rowid,)


class Table:
    """A relational table of 64-bit integer columns.

    Create through :meth:`repro.engine.database.Database.create_table`.
    """

    def __init__(
        self,
        pool: BufferPool,
        name: str,
        columns: Sequence[str],
        log: Optional[Callable[[dict], None]] = None,
    ) -> None:
        if not columns:
            raise SchemaError(f"table {name} needs at least one column")
        if len(set(columns)) != len(columns):
            raise SchemaError(f"table {name} has duplicate column names")
        self.pool = pool
        self.name = name
        self.columns = tuple(columns)
        self._column_pos = {column: i for i, column in enumerate(columns)}
        self.heap = HeapFile(pool, len(columns), name=f"{name}.heap")
        self.indexes: dict[str, IndexDef] = {}
        self._log = log

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_index(self, index_name: str, key_columns: Sequence[str]) -> IndexDef:
        """Add a composite index on ``key_columns`` (plus implicit rowid)."""
        if index_name in self.indexes:
            raise SchemaError(f"index {index_name} already exists")
        missing = [c for c in key_columns if c not in self._column_pos]
        if missing:
            raise SchemaError(f"table {self.name} has no column(s) {missing}")
        if self._log is not None:
            self._log(
                {
                    "t": "create_index",
                    "table": self.name,
                    "index": index_name,
                    "key": list(key_columns),
                }
            )
        column_indexes = tuple(self._column_pos[c] for c in key_columns)
        tree = BPlusTree(
            self.pool,
            arity=len(key_columns) + 1,
            name=f"{self.name}.{index_name}",
        )
        index = IndexDef(index_name, tuple(key_columns), column_indexes, tree)
        self.indexes[index_name] = index
        if self.heap.row_count:
            for rowid, row in self.heap.scan():
                tree.insert(index.entry_for(row, rowid))
        return index

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[int]) -> int:
        """Insert a row, maintaining all indexes; return the row id."""
        row_tuple = tuple(row)
        if self._log is not None:
            self._log({"t": "insert", "table": self.name, "row": list(row_tuple)})
        rowid = self.heap.insert(row_tuple)
        for index in self.indexes.values():
            index.tree.insert(index.entry_for(row_tuple, rowid))
        return rowid

    def delete(self, rowid: int) -> tuple[int, ...]:
        """Delete a row by id, maintaining all indexes; return the old row."""
        row = self.heap.delete(rowid)
        if self._log is not None:
            self._log({"t": "delete", "table": self.name, "row": list(row)})
        for index in self.indexes.values():
            index.tree.delete(index.entry_for(row, rowid))
        return row

    def bulk_load(self, rows: Sequence[Sequence[int]], fill: float = 0.9) -> list[int]:
        """Load many rows at once; indexes are built bottom-up.

        Only valid while the table is empty, mirroring index rebuilds /
        initial bulk loads in the paper's experiments.
        """
        if self.heap.row_count:
            raise SchemaError(f"bulk_load on non-empty table {self.name}")
        row_tuples = [tuple(row) for row in rows]
        if self._log is not None:
            self._log(
                {
                    "t": "bulk",
                    "table": self.name,
                    "rows": [list(row) for row in row_tuples],
                    "fill": fill,
                }
            )
        rowids = self.heap.bulk_append(row_tuples)
        for index in self.indexes.values():
            entries = sorted(
                index.entry_for(row, rowid) for row, rowid in zip(row_tuples, rowids)
            )
            index.tree.bulk_load(entries, fill=fill)
        return rowids

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Full table scan: yield ``(rowid, row)``."""
        return self.heap.scan()

    def scan_batches(self) -> Iterator[list[tuple[int, tuple[int, ...]]]]:
        """Batched full table scan: one ``[(rowid, row), ...]`` per page.

        The heap analogue of :meth:`index_scan_batches` -- identical
        rows and page requests to :meth:`scan`, delivered as whole page
        slices so bulk consumers (the sweep join's input scan) avoid the
        per-row generator hop.
        """
        return self.heap.scan_batches()

    def fetch(self, rowid: int) -> tuple[int, ...]:
        """Fetch one row by id."""
        return self.heap.fetch(rowid)

    def fetch_many(self, rowids: Sequence[int]) -> list[tuple[int, ...]]:
        """Fetch rows by id, sharing one page access per same-page run.

        The batched "table access by index rowid" step: row ids taken from
        an index scan arrive clustered by heap page, so grouping them cuts
        the Python-level overhead per row without changing which pages are
        requested or in which order.
        """
        return self.heap.fetch_many(rowids)

    def index_scan(
        self,
        index_name: str,
        lo_prefix: Sequence[int] = (),
        hi_prefix: Sequence[int] = (),
    ) -> Iterator[tuple[int, ...]]:
        """Inclusive index range scan; yields (key columns..., rowid) entries.

        This is the engine's ``INDEX RANGE SCAN`` operator (paper Figure 10):
        results come straight from the index leaves with no heap access.
        """
        index = self._index(index_name)
        return index.tree.scan_range(lo_prefix, hi_prefix)

    def index_scan_batches(
        self,
        index_name: str,
        lo_prefix: Sequence[int] = (),
        hi_prefix: Sequence[int] = (),
    ) -> Iterator[list[tuple[int, ...]]]:
        """Batched index range scan: yields whole leaf slices.

        Same results and same I/O trace as :meth:`index_scan`, but entries
        arrive as one list per visited leaf, so consumers avoid the
        per-entry generator hop -- the engine-side half of the batched
        scan pipeline.
        """
        index = self._index(index_name)
        return index.tree.scan_batches(lo_prefix, hi_prefix)

    def index_scan_unbatched(
        self,
        index_name: str,
        lo_prefix: Sequence[int] = (),
        hi_prefix: Sequence[int] = (),
    ) -> Iterator[tuple[int, ...]]:
        """The pre-batching scan operator, kept as a parity reference.

        See :meth:`~repro.engine.bptree.BPlusTree.scan_range_unbatched`;
        exercised only by parity tests and the scan-throughput benchmark.
        """
        index = self._index(index_name)
        return index.tree.scan_range_unbatched(lo_prefix, hi_prefix)

    def index_last_le(
        self, index_name: str, prefix: Sequence[int]
    ) -> Optional[tuple[int, ...]]:
        """Greatest index entry ``<=`` the (high-padded) prefix, or ``None``."""
        return self._index(index_name).tree.last_le(prefix)

    def index(self, index_name: str) -> IndexDef:
        """Look up an index definition (public accessor)."""
        return self._index(index_name)

    @property
    def row_count(self) -> int:
        """Number of live rows."""
        return self.heap.row_count

    def __len__(self) -> int:
        return self.heap.row_count

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _index(self, index_name: str) -> IndexDef:
        try:
            return self.indexes[index_name]
        except KeyError:
            raise SchemaError(f"table {self.name} has no index {index_name}") from None

    def column_position(self, column: str) -> int:
        """Position of ``column`` in the row tuple."""
        try:
            return self._column_pos[column]
        except KeyError:
            raise SchemaError(f"table {self.name} has no column {column}") from None
