"""Disk-based B+-tree with composite integer keys.

This is the engine's stand-in for the "robust and highly tuned" built-in
B+-tree indexes that the RI-tree relies on (paper, Section 3.2).  It provides
exactly the operations the paper's access methods need:

* point insertion and deletion in O(log_b n) block accesses,
* inclusive range scans over linked leaves (the ``INDEX RANGE SCAN`` of the
  paper's Figure 10 execution plan) costing O(log_b n + r/b),
* bottom-up bulk loading, used where the paper bulk-loads competitor indexes
  (Section 6.3 notes T-index and IST were bulk loaded).

Entries are fixed-arity tuples of signed 64-bit integers ordered
lexicographically; the tree is *index-organised* -- the whole entry is the
key, mirroring the paper's composite indexes ``(node, lower, id)`` /
``(node, upper, id)``.  Entries must be unique; upper layers guarantee this
by appending an id or row id column.

Design choices
--------------
* Minimum fill is one third of capacity (not one half).  This keeps the
  O(n/b) space bound while letting bulk loads at fill factor 0.9 distribute
  entries evenly without ever producing an under-minimum rightmost node, and
  matches the relaxed deletion thresholds used by production engines.
* Pages that an operation holds Python references to across other page
  accesses are pinned in the buffer pool; everything else relies on the
  mutate-then-``mark_dirty``-before-the-next-pool-call discipline.

All page traffic flows through the shared
:class:`~repro.engine.buffer.BufferPool`, so physical and logical I/O is
accounted exactly as in the paper's experiments.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, Optional, Sequence

from .buffer import BufferPool
from .errors import KeyNotFoundError, SchemaError, SerializationError
from .serial import (
    INT_MAX,
    INT_MIN,
    PAGE_HEADER_SIZE,
    IntTupleCodec,
    pack_header,
    pad_high,
    pad_low,
    unpack_header,
)

#: Page type tags stored in the page header.
PAGE_LEAF = 1
PAGE_INTERNAL = 2

#: Sentinel for "no block" (end of the leaf chain).
NO_BLOCK = -1


class DuplicateEntryError(SchemaError):
    """Raised when inserting an entry that is already present."""


class LeafPage:
    """A leaf node: sorted unique entries plus the next-leaf link."""

    __slots__ = ("entries", "next_leaf")

    def __init__(
        self,
        entries: Optional[list[tuple[int, ...]]] = None,
        next_leaf: int = NO_BLOCK,
    ) -> None:
        self.entries: list[tuple[int, ...]] = entries if entries is not None else []
        self.next_leaf = next_leaf

    def to_bytes_with(self, codec: IntTupleCodec) -> bytes:
        header = pack_header(PAGE_LEAF, len(self.entries), self.next_leaf)
        return header + codec.pack_many(self.entries)

    @classmethod
    def from_bytes_with(cls, codec: IntTupleCodec, data: bytes) -> "LeafPage":
        page_type, count, aux = unpack_header(data)
        if page_type != PAGE_LEAF:
            raise SerializationError(
                f"expected leaf page, found type {page_type}"
            )
        entries = codec.unpack_many(data[PAGE_HEADER_SIZE:], count)
        return cls(entries, aux)


class InternalPage:
    """An internal node: ``len(children) == len(keys) + 1``.

    Child ``i`` holds entries ``e`` with ``keys[i-1] <= e < keys[i]``
    (with virtual sentinels at both ends).
    """

    __slots__ = ("keys", "children")

    _CHILD_CODEC = IntTupleCodec(1)

    def __init__(
        self,
        keys: Optional[list[tuple[int, ...]]] = None,
        children: Optional[list[int]] = None,
    ) -> None:
        self.keys: list[tuple[int, ...]] = keys if keys is not None else []
        self.children: list[int] = children if children is not None else []

    def to_bytes_with(self, codec: IntTupleCodec) -> bytes:
        header = pack_header(PAGE_INTERNAL, len(self.keys), NO_BLOCK)
        child_bytes = self._CHILD_CODEC.pack_many([(c,) for c in self.children])
        return header + child_bytes + codec.pack_many(self.keys)

    @classmethod
    def from_bytes_with(cls, codec: IntTupleCodec, data: bytes) -> "InternalPage":
        page_type, count, _aux = unpack_header(data)
        if page_type != PAGE_INTERNAL:
            raise SerializationError(
                f"expected internal page, found type {page_type}"
            )
        offset = PAGE_HEADER_SIZE
        children = [
            c for (c,) in cls._CHILD_CODEC.unpack_many(data[offset:], count + 1)
        ]
        offset += (count + 1) * 8
        keys = codec.unpack_many(data[offset:], count)
        return cls(keys, children)


class _Bound:
    """Adapter pairing a page with its codec so the pool can serialise it."""

    __slots__ = ("page", "codec")

    def __init__(self, page, codec: IntTupleCodec) -> None:
        self.page = page
        self.codec = codec

    def to_bytes(self) -> bytes:
        return self.page.to_bytes_with(self.codec)


def next_key(key: tuple[int, ...]) -> Optional[tuple[int, ...]]:
    """Smallest representable entry strictly greater than ``key``.

    Lexicographic successor over fixed-arity signed-64-bit tuples;
    ``None`` when ``key`` is the global maximum.
    """
    out = list(key)
    for i in range(len(out) - 1, -1, -1):
        if out[i] < INT_MAX:
            out[i] += 1
            return tuple(out)
        out[i] = INT_MIN
    return None


def coalesce_ranges(
    ranges: Sequence[tuple[Sequence[int], Sequence[int]]], arity: int
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Merge inclusive scan ranges that touch in key space.

    ``ranges`` holds ``(lo_prefix, hi_prefix)`` pairs as accepted by
    :meth:`BPlusTree.scan_batches`.  Two ranges merge when they overlap or
    when no representable key separates them, so one scan over the merged
    range returns exactly the union of the originals' result sets (with
    overlapping duplicates collapsed).  Each merged range saves one
    root-to-leaf descent, which is why a coalescing executor performs
    fewer logical reads than the range-at-a-time plan.

    Returns full-arity padded ranges sorted by lower bound.  Empty ranges
    (``lo > hi`` after padding) are dropped.
    """
    padded = []
    for lo_prefix, hi_prefix in ranges:
        lo = pad_low(lo_prefix, arity)
        hi = pad_high(hi_prefix, arity)
        if lo <= hi:
            padded.append((lo, hi))
    if len(padded) <= 1:
        return padded
    padded.sort()
    merged = [padded[0]]
    for lo, hi in padded[1:]:
        last_lo, last_hi = merged[-1]
        successor = next_key(last_hi)
        if successor is None or lo <= successor:
            if hi > last_hi:
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return merged


def _even_groups(total: int, per_group: int) -> list[int]:
    """Split ``total`` items into groups of at most ``per_group``.

    Sizes differ by at most one, so every group holds at least
    ``per_group // 2`` items whenever more than one group is needed --
    comfortably above the tree's one-third minimum fill.
    """
    if total <= 0:
        return []
    group_count = -(-total // per_group)
    base, rem = divmod(total, group_count)
    return [base + 1] * rem + [base] * (group_count - rem)


class BPlusTree:
    """A B+-tree over a buffer pool.

    Parameters
    ----------
    pool:
        Buffer pool (and, through it, the disk) the tree lives on.
    arity:
        Number of integer columns per entry.
    name:
        Diagnostic name used in error messages and statistics.
    """

    def __init__(self, pool: BufferPool, arity: int, name: str = "index") -> None:
        self.pool = pool
        self.name = name
        self.codec = IntTupleCodec(arity)
        self.arity = arity
        block_size = pool.disk.block_size
        self.leaf_capacity = (block_size - PAGE_HEADER_SIZE) // self.codec.entry_size
        # An internal page with k keys stores k + 1 child pointers of 8 bytes.
        self.internal_capacity = (block_size - PAGE_HEADER_SIZE - 8) // (
            self.codec.entry_size + 8
        )
        if self.leaf_capacity < 4 or self.internal_capacity < 4:
            raise SchemaError(f"block size {block_size} too small for arity {arity}")
        self._min_leaf = max(1, self.leaf_capacity // 3)
        self._min_internal_keys = max(1, self.internal_capacity // 3)
        # One pre-bound fast-path reader per tree: the loader closure is
        # allocated here once instead of on every page request.  The scan
        # loops additionally inline the cache-hit path via scan_refs.
        self._read = pool.make_reader(self._load)
        self._hot = pool.scan_refs(self._load)
        root = LeafPage()
        self.root_id = pool.disk.allocate()
        pool.put_new(self.root_id, _Bound(root, self.codec))
        self.height = 1
        self.entry_count = 0

    # ------------------------------------------------------------------
    # page helpers
    # ------------------------------------------------------------------
    def _load(self, data: bytes) -> _Bound:
        page_type, _count, _aux = unpack_header(data)
        if page_type == PAGE_LEAF:
            return _Bound(LeafPage.from_bytes_with(self.codec, data), self.codec)
        if page_type == PAGE_INTERNAL:
            return _Bound(InternalPage.from_bytes_with(self.codec, data), self.codec)
        raise SerializationError(f"unknown page type {page_type}")

    def _get(self, block_id: int):
        return self._read(block_id).page

    def _new_block(self, page) -> int:
        block_id = self.pool.disk.allocate()
        self.pool.put_new(block_id, _Bound(page, self.codec))
        return block_id

    # ------------------------------------------------------------------
    # lookup and scans
    # ------------------------------------------------------------------
    def _descend(self, key: tuple[int, ...]) -> list[tuple[int, int]]:
        """Return the root-to-leaf path for ``key``.

        Each element is ``(block_id, child_index_in_parent)``; the root's
        child index is ``-1``.
        """
        path = [(self.root_id, -1)]
        node = self._get(self.root_id)
        while isinstance(node, InternalPage):
            idx = bisect_right(node.keys, key)
            child_id = node.children[idx]
            path.append((child_id, idx))
            node = self._get(child_id)
        return path

    def contains(self, entry: tuple[int, ...]) -> bool:
        """Exact-match membership test."""
        self._check_arity(entry)
        leaf_id = self._descend(entry)[-1][0]
        leaf = self._get(leaf_id)
        idx = bisect_left(leaf.entries, entry)
        return idx < len(leaf.entries) and leaf.entries[idx] == entry

    def _seek_leaf(self, lo: tuple[int, ...]) -> int:
        """Root-to-leaf descent for a padded key; returns the leaf's block.

        Shared by the batched scan and count loops so the descent logic
        cannot desynchronise between them.  Reads every node on the path,
        leaf included -- the same I/O trace as :meth:`_descend` -- with
        the cache-hit path inlined per the ``scan_refs`` contract (one
        frame activation per *scan*, none per page).
        """
        frames, stats, miss = self._hot
        frames_get = frames.get
        move_to_end = frames.move_to_end
        node_id = self.root_id
        while True:
            stats.logical_reads += 1
            frame = frames_get(node_id)
            if frame is not None:
                move_to_end(node_id)
                node = frame.page.page
            else:
                node = miss(node_id).page
            if isinstance(node, LeafPage):
                return node_id
            node_id = node.children[bisect_right(node.keys, lo)]

    def scan_batches(
        self, lo_prefix: Sequence[int] = (), hi_prefix: Sequence[int] = ()
    ) -> Iterator[list[tuple[int, ...]]]:
        """Yield the range ``lo_prefix <= e <= hi_prefix`` as leaf slices.

        The batched form of :meth:`scan_range`: each yielded list is the
        qualifying slice of one leaf, produced without per-entry key
        comparisons -- only the two *boundary* leaves are bisected; interior
        leaves are emitted whole.  Consumers that aggregate (count, extend)
        therefore do O(r/b) Python-level work instead of O(r).

        The I/O trace is identical to the per-entry scan: one root-to-leaf
        descent for the lower bound, then exactly the leaves the per-entry
        scan would visit, each requested once.  Every yielded list is a
        fresh copy, so consumer pauses survive eviction and concurrent
        tree mutation exactly as with the per-entry scan's snapshots.
        """
        return self.scan_batches_padded(
            pad_low(lo_prefix, self.arity), pad_high(hi_prefix, self.arity)
        )

    def scan_batches_padded(
        self, lo: tuple[int, ...], hi: tuple[int, ...]
    ) -> Iterator[list[tuple[int, ...]]]:
        """:meth:`scan_batches` over pre-padded full-arity bounds.

        Query executors that compile a scan plan pad each range once at
        plan time and call this directly.  The cache-hit path is inlined
        per the :meth:`~repro.engine.buffer.BufferPool.scan_refs`
        contract, so a buffered page costs no Python-level call at all --
        the logical-read accounting is unchanged.
        """
        if lo > hi:
            return
        frames, stats, miss = self._hot
        frames_get = frames.get
        move_to_end = frames.move_to_end
        leaf_id = self._seek_leaf(lo)
        first = True
        while leaf_id != NO_BLOCK:
            stats.logical_reads += 1
            frame = frames_get(leaf_id)
            if frame is not None:
                move_to_end(leaf_id)
                leaf = frame.page.page
            else:
                leaf = miss(leaf_id).page
            entries = leaf.entries
            next_leaf = leaf.next_leaf
            if first:
                idx = bisect_left(entries, lo)
                first = False
            else:
                # Later leaves hold only entries >= lo by tree order.
                idx = 0
            if entries and entries[-1] > hi:
                # Terminal leaf: bisect the upper boundary and stop.  (When
                # the lower-boundary tail is empty, every entry is < lo <= hi,
                # so this branch cannot trigger spuriously.)
                stop = bisect_right(entries, hi, idx)
                if stop > idx:
                    yield entries[idx:stop]
                return
            if idx < len(entries):
                yield entries[idx:]
            leaf_id = next_leaf

    def count_range(
        self, lo_prefix: Sequence[int] = (), hi_prefix: Sequence[int] = ()
    ) -> int:
        """Number of entries in the inclusive range, without yielding them.

        Same scans, same I/O trace as :meth:`scan_batches`; the hot loop
        only sums slice lengths, so aggregation queries (the benchmark
        harness's ``intersection_count`` path) do constant Python work per
        leaf and none per entry.
        """
        return self.count_range_padded(
            pad_low(lo_prefix, self.arity), pad_high(hi_prefix, self.arity)
        )

    def count_range_padded(self, lo: tuple[int, ...], hi: tuple[int, ...]) -> int:
        """:meth:`count_range` over pre-padded full-arity bounds."""
        if lo > hi:
            return 0
        frames, stats, miss = self._hot
        frames_get = frames.get
        move_to_end = frames.move_to_end
        leaf_id = self._seek_leaf(lo)
        first = True
        total = 0
        while leaf_id != NO_BLOCK:
            stats.logical_reads += 1
            frame = frames_get(leaf_id)
            if frame is not None:
                move_to_end(leaf_id)
                leaf = frame.page.page
            else:
                leaf = miss(leaf_id).page
            entries = leaf.entries
            next_leaf = leaf.next_leaf
            if first:
                idx = bisect_left(entries, lo)
                first = False
            else:
                idx = 0
            if entries and entries[-1] > hi:
                return total + bisect_right(entries, hi, idx) - idx
            total += len(entries) - idx
            leaf_id = next_leaf
        return total

    def scan_range(
        self, lo_prefix: Sequence[int], hi_prefix: Sequence[int]
    ) -> Iterator[tuple[int, ...]]:
        """Yield entries ``e`` with ``lo_prefix <= e <= hi_prefix``.

        Prefixes shorter than the arity are padded with open bounds, so
        ``scan_range((5,), (5,))`` yields every entry whose first column is 5
        -- the semantics of an index range scan on a composite index.

        Per-entry convenience wrapper over :meth:`scan_batches`; page
        requests happen at the same points (when a leaf's first entry is
        needed), so both forms have the same I/O trace.
        """
        for batch in self.scan_batches(lo_prefix, hi_prefix):
            yield from batch

    def scan_range_unbatched(
        self, lo_prefix: Sequence[int], hi_prefix: Sequence[int]
    ) -> Iterator[tuple[int, ...]]:
        """The pre-batching range scan, kept verbatim as a reference.

        One buffer-pool call per leaf (loader passed on every call) and
        one comparison per yielded entry -- the execution the batched
        pipeline replaced.  Parity tests and
        ``benchmarks/bench_scan_throughput.py`` run it against
        :meth:`scan_batches` to demonstrate identical results, an
        identical I/O trace, and the Python-level work the batching
        removes.  Not used by any query path.
        """
        lo = pad_low(lo_prefix, self.arity)
        hi = pad_high(hi_prefix, self.arity)
        if lo > hi:
            return
        leaf_id = self._descend(lo)[-1][0]
        while leaf_id != NO_BLOCK:
            leaf = self.pool.get(leaf_id, self._load).page
            entries = leaf.entries
            idx = bisect_left(entries, lo)
            # Snapshot the tail so eviction during consumer pauses is safe.
            tail = entries[idx:]
            next_leaf = leaf.next_leaf
            for entry in tail:
                if entry > hi:
                    return
                yield entry
            leaf_id = next_leaf

    def scan_all(self) -> Iterator[tuple[int, ...]]:
        """Yield every entry in order."""
        return self.scan_range((), ())

    def last_le(self, prefix: Sequence[int]) -> Optional[tuple[int, ...]]:
        """Greatest entry whose value is ``<= prefix`` (padded high).

        The descending counterpart of a range scan's seek: one root-to-leaf
        descent, plus at most one extra descent into the nearest left
        sibling subtree when the target leaf holds no qualifying entry.
        """
        key = pad_high(prefix, self.arity)
        fallback: Optional[int] = None
        node_id = self.root_id
        node = self._get(node_id)
        while isinstance(node, InternalPage):
            idx = bisect_right(node.keys, key)
            if idx > 0:
                fallback = node.children[idx - 1]
            node_id = node.children[idx]
            node = self._get(node_id)
        idx = bisect_right(node.entries, key) - 1
        if idx >= 0:
            return node.entries[idx]
        if fallback is None:
            return None
        node = self._get(fallback)
        while isinstance(node, InternalPage):
            node = self._get(node.children[-1])
        return node.entries[-1] if node.entries else None

    def first(self) -> Optional[tuple[int, ...]]:
        """Smallest entry, or ``None`` when empty."""
        for entry in self.scan_all():
            return entry
        return None

    def __len__(self) -> int:
        return self.entry_count

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, entry: tuple[int, ...]) -> None:
        """Insert a unique entry (O(log_b n) block accesses)."""
        self._check_arity(entry)
        path = self._descend(entry)
        leaf_id = path[-1][0]
        leaf = self._get(leaf_id)
        idx = bisect_left(leaf.entries, entry)
        if idx < len(leaf.entries) and leaf.entries[idx] == entry:
            raise DuplicateEntryError(f"{self.name}: duplicate entry {entry}")
        leaf.entries.insert(idx, entry)
        self.entry_count += 1
        if len(leaf.entries) <= self.leaf_capacity:
            self.pool.mark_dirty(leaf_id)
            return
        # Leaf overflow: split and propagate separators upward.
        mid = len(leaf.entries) // 2
        right = LeafPage(leaf.entries[mid:], leaf.next_leaf)
        leaf.entries = leaf.entries[:mid]
        separator = right.entries[0]
        self.pool.pin(leaf_id)
        try:
            right_id = self._new_block(right)
            leaf.next_leaf = right_id
            self.pool.mark_dirty(leaf_id)
        finally:
            self.pool.unpin(leaf_id)
        self._insert_into_parent(path[:-1], separator, right_id)

    def _insert_into_parent(
        self, path: list[tuple[int, int]], separator: tuple[int, ...], right_id: int
    ) -> None:
        while True:
            if not path:
                old_root = self.root_id
                new_root = InternalPage([separator], [old_root, right_id])
                self.root_id = self._new_block(new_root)
                self.height += 1
                return
            node_id, _ = path.pop()
            node = self._get(node_id)
            idx = bisect_right(node.keys, separator)
            node.keys.insert(idx, separator)
            node.children.insert(idx + 1, right_id)
            if len(node.keys) <= self.internal_capacity:
                self.pool.mark_dirty(node_id)
                return
            mid = len(node.keys) // 2
            promoted = node.keys[mid]
            right = InternalPage(node.keys[mid + 1 :], node.children[mid + 1 :])
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
            self.pool.mark_dirty(node_id)
            right_id = self._new_block(right)
            separator = promoted

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, entry: tuple[int, ...]) -> None:
        """Remove an entry, rebalancing underfull pages (O(log_b n))."""
        self._check_arity(entry)
        path = self._descend(entry)
        leaf_id = path[-1][0]
        leaf = self._get(leaf_id)
        idx = bisect_left(leaf.entries, entry)
        if idx >= len(leaf.entries) or leaf.entries[idx] != entry:
            raise KeyNotFoundError(f"{self.name}: entry {entry} not found")
        del leaf.entries[idx]
        self.entry_count -= 1
        self.pool.mark_dirty(leaf_id)
        self._rebalance_after_delete(path)

    def _rebalance_after_delete(self, path: list[tuple[int, int]]) -> None:
        level = len(path) - 1
        while level > 0:
            node_id, child_idx = path[level]
            node = self._get(node_id)
            if isinstance(node, LeafPage):
                too_small = len(node.entries) < self._min_leaf
            else:
                too_small = len(node.keys) < self._min_internal_keys
            if not too_small:
                return
            parent_id = path[level - 1][0]
            self._fix_underflow(parent_id, child_idx)
            level -= 1
        # Root: collapse an internal root left with a single child.
        root = self._get(self.root_id)
        while isinstance(root, InternalPage) and not root.keys:
            old_root = self.root_id
            self.root_id = root.children[0]
            self.pool.drop(old_root)
            self.pool.disk.free(old_root)
            self.height -= 1
            root = self._get(self.root_id)

    def _fix_underflow(self, parent_id: int, child_idx: int) -> None:
        """Borrow from or merge with a sibling of child ``child_idx``."""
        parent = self._get(parent_id)
        self.pool.pin(parent_id)
        try:
            if child_idx > 0:
                left_id = parent.children[child_idx - 1]
                right_id = parent.children[child_idx]
                sep_idx = child_idx - 1
                donor_is_left = True
            else:
                left_id = parent.children[0]
                right_id = parent.children[1]
                sep_idx = 0
                donor_is_left = False
            freed = self._borrow_or_merge(
                parent_id, parent, left_id, right_id, sep_idx, donor_is_left
            )
        finally:
            self.pool.unpin(parent_id)
        if freed is not None:
            self.pool.drop(freed)
            self.pool.disk.free(freed)

    def _borrow_or_merge(
        self,
        parent_id: int,
        parent: InternalPage,
        left_id: int,
        right_id: int,
        sep_idx: int,
        donor_is_left: bool,
    ) -> Optional[int]:
        """Rebalance adjacent siblings; return a block id to free, if any."""
        left = self._get(left_id)
        self.pool.pin(left_id)
        try:
            right = self._get(right_id)
            self.pool.pin(right_id)
            try:
                if isinstance(left, LeafPage):
                    return self._rebalance_leaves(
                        parent,
                        left,
                        right,
                        sep_idx,
                        donor_is_left,
                        left_id,
                        right_id,
                        parent_id,
                    )
                return self._rebalance_internal(
                    parent,
                    left,
                    right,
                    sep_idx,
                    donor_is_left,
                    left_id,
                    right_id,
                    parent_id,
                )
            finally:
                self.pool.unpin(right_id)
        finally:
            self.pool.unpin(left_id)

    def _rebalance_leaves(
        self,
        parent: InternalPage,
        left: LeafPage,
        right: LeafPage,
        sep_idx: int,
        donor_is_left: bool,
        left_id: int,
        right_id: int,
        parent_id: int,
    ) -> Optional[int]:
        donor = left if donor_is_left else right
        if len(donor.entries) > self._min_leaf:
            if donor_is_left:
                right.entries.insert(0, left.entries.pop())
            else:
                left.entries.append(right.entries.pop(0))
            parent.keys[sep_idx] = right.entries[0]
            self.pool.mark_dirty(left_id)
            self.pool.mark_dirty(right_id)
            self.pool.mark_dirty(parent_id)
            return None
        # Merge right into left.
        left.entries.extend(right.entries)
        left.next_leaf = right.next_leaf
        del parent.keys[sep_idx]
        del parent.children[sep_idx + 1]
        self.pool.mark_dirty(left_id)
        self.pool.mark_dirty(parent_id)
        return right_id

    def _rebalance_internal(
        self,
        parent: InternalPage,
        left: InternalPage,
        right: InternalPage,
        sep_idx: int,
        donor_is_left: bool,
        left_id: int,
        right_id: int,
        parent_id: int,
    ) -> Optional[int]:
        donor = left if donor_is_left else right
        if len(donor.keys) > self._min_internal_keys:
            if donor_is_left:
                right.keys.insert(0, parent.keys[sep_idx])
                parent.keys[sep_idx] = left.keys.pop()
                right.children.insert(0, left.children.pop())
            else:
                left.keys.append(parent.keys[sep_idx])
                parent.keys[sep_idx] = right.keys.pop(0)
                left.children.append(right.children.pop(0))
            self.pool.mark_dirty(left_id)
            self.pool.mark_dirty(right_id)
            self.pool.mark_dirty(parent_id)
            return None
        # Merge right into left, pulling the separator down.
        left.keys.append(parent.keys[sep_idx])
        left.keys.extend(right.keys)
        left.children.extend(right.children)
        del parent.keys[sep_idx]
        del parent.children[sep_idx + 1]
        self.pool.mark_dirty(left_id)
        self.pool.mark_dirty(parent_id)
        return right_id

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------
    def bulk_load(self, entries: Sequence[tuple[int, ...]], fill: float = 0.9) -> None:
        """Build the tree bottom-up from sorted unique ``entries``.

        This mirrors how the paper's competitor indexes were bulk loaded
        (Section 6.3: "the good clustering properties of the bulk loaded
        indexes").  The tree must be empty.
        """
        if self.entry_count:
            raise SchemaError(f"{self.name}: bulk_load on non-empty tree")
        # Even distribution guarantees groups of at least fill * capacity / 2
        # entries; the floor of 0.7 keeps that above the one-third minimum.
        if not 0.7 <= fill <= 1.0:
            raise SchemaError(f"fill factor {fill} out of range [0.7, 1.0]")
        arity = self.arity
        previous: Optional[tuple[int, ...]] = None
        for entry in entries:
            if len(entry) != arity:
                raise SchemaError(f"{self.name}: entry arity {len(entry)} != {arity}")
            if previous is not None and previous >= entry:
                raise SchemaError(
                    f"{self.name}: bulk_load input not sorted/unique at {entry}"
                )
            previous = entry
        if not entries:
            return
        disk = self.pool.disk
        # Reclaim the empty bootstrap root.
        self.pool.drop(self.root_id)
        disk.free(self.root_id)

        per_leaf = max(2, int(self.leaf_capacity * fill))
        sizes = _even_groups(len(entries), per_leaf)
        leaf_ids = [disk.allocate() for _ in sizes]
        level_seps: list[tuple[int, ...]] = []
        position = 0
        for i, size in enumerate(sizes):
            chunk = list(entries[position : position + size])
            next_leaf = leaf_ids[i + 1] if i + 1 < len(leaf_ids) else NO_BLOCK
            page = LeafPage(chunk, next_leaf)
            disk.write(leaf_ids[i], page.to_bytes_with(self.codec))
            if i > 0:
                level_seps.append(chunk[0])
            position += size

        level_ids = leaf_ids
        self.height = 1
        per_internal = max(2, int(self.internal_capacity * fill))
        while len(level_ids) > 1:
            group_sizes = _even_groups(len(level_ids), per_internal + 1)
            new_ids: list[int] = []
            new_seps: list[tuple[int, ...]] = []
            position = 0
            for j, size in enumerate(group_sizes):
                children = level_ids[position : position + size]
                keys = level_seps[position : position + size - 1]
                page = InternalPage(keys, children)
                block_id = disk.allocate()
                disk.write(block_id, page.to_bytes_with(self.codec))
                new_ids.append(block_id)
                if j > 0:
                    new_seps.append(level_seps[position - 1])
                position += size
            level_ids = new_ids
            level_seps = new_seps
            self.height += 1
        self.root_id = level_ids[0]
        self.entry_count = len(entries)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any structural violation."""
        problems = self.violations()
        assert not problems, "; ".join(problems)

    def violations(self) -> list[str]:
        """Collect every structural violation instead of raising.

        The interval stores' ``verify()`` contract reports all problems
        at once, so this walker records each broken invariant -- key
        order, fill factors, subtree bounds, uniform depth, the leaf
        chain, the entry count -- as a human-readable description and
        keeps walking.  An intact tree returns an empty list.
        """
        problems: list[str] = []
        leaves: list[int] = []
        count = self._collect_node(self.root_id, None, None, 1, leaves, problems)
        if count != self.entry_count:
            problems.append(
                f"{self.name}: entry_count={self.entry_count} but found {count}"
            )
        # The leaf chain must visit exactly the in-order leaves.
        if leaves:
            chain: list[int] = []
            seen: set[int] = set()
            leaf_id = leaves[0]
            while leaf_id != NO_BLOCK and leaf_id not in seen:
                seen.add(leaf_id)
                chain.append(leaf_id)
                leaf_id = self._get(leaf_id).next_leaf
            if leaf_id != NO_BLOCK:
                problems.append(f"{self.name}: leaf chain contains a cycle")
            elif chain != leaves:
                problems.append(
                    f"{self.name}: leaf chain disagrees with tree order"
                )
        return problems

    def _collect_node(
        self,
        node_id: int,
        lo: Optional[tuple[int, ...]],
        hi: Optional[tuple[int, ...]],
        depth: int,
        leaves: list[int],
        problems: list[str],
    ) -> int:
        node = self._get(node_id)
        if isinstance(node, LeafPage):
            if depth != self.height:
                problems.append(
                    f"{self.name}: leaf {node_id} at depth {depth}, "
                    f"height {self.height}"
                )
            entries = node.entries
            if not all(a < b for a, b in zip(entries, entries[1:])):
                problems.append(
                    f"{self.name}: leaf {node_id} unsorted or duplicated"
                )
            if node_id != self.root_id and len(entries) < self._min_leaf:
                problems.append(
                    f"{self.name}: leaf {node_id} underfull ({len(entries)})"
                )
            if len(entries) > self.leaf_capacity:
                problems.append(
                    f"{self.name}: leaf {node_id} overfull ({len(entries)})"
                )
            if lo is not None and any(entry < lo for entry in entries):
                problems.append(
                    f"{self.name}: leaf {node_id} entry below subtree bound"
                )
            if hi is not None and any(entry >= hi for entry in entries):
                problems.append(
                    f"{self.name}: leaf {node_id} entry above subtree bound"
                )
            leaves.append(node_id)
            return len(entries)
        keys = node.keys
        if not all(a < b for a, b in zip(keys, keys[1:])):
            problems.append(f"{self.name}: internal {node_id} keys unsorted")
        if len(node.children) != len(keys) + 1:
            problems.append(
                f"{self.name}: internal {node_id} has {len(node.children)} "
                f"children for {len(keys)} keys"
            )
        if node_id != self.root_id:
            if len(keys) < self._min_internal_keys:
                problems.append(
                    f"{self.name}: internal {node_id} underfull ({len(keys)})"
                )
        elif not keys:
            problems.append(
                f"{self.name}: internal root {node_id} has no keys"
            )
        if len(keys) > self.internal_capacity:
            problems.append(
                f"{self.name}: internal {node_id} overfull ({len(keys)})"
            )
        total = 0
        bounds: list[Optional[tuple[int, ...]]] = [lo] + list(keys) + [hi]
        for i, child_id in enumerate(list(node.children)):
            child_lo = bounds[i] if i < len(bounds) else None
            child_hi = bounds[i + 1] if i + 1 < len(bounds) else None
            total += self._collect_node(
                child_id, child_lo, child_hi, depth + 1, leaves, problems
            )
        return total

    def _check_arity(self, entry: tuple[int, ...]) -> None:
        if len(entry) != self.arity:
            raise SchemaError(
                f"{self.name}: entry arity {len(entry)} != {self.arity}"
            )

    @property
    def block_count(self) -> int:
        """Number of blocks the tree occupies (computed by a full walk)."""
        return self._count_blocks(self.root_id)

    def _count_blocks(self, node_id: int) -> int:
        node = self._get(node_id)
        if isinstance(node, LeafPage):
            return 1
        children = list(node.children)
        return 1 + sum(self._count_blocks(child) for child in children)
