"""Block-level relational storage substrate.

This package simulates the parts of an Oracle8i-class RDBMS that the paper's
experiments depend on: a block device with physical-I/O accounting, an LRU
buffer cache, composite-key B+-tree indexes and heap tables.  See DESIGN.md
section 3.1 for the substitution rationale.

Typical use::

    from repro.engine import Database

    db = Database(block_size=2048, cache_blocks=200)
    t = db.create_table("Intervals", ["node", "lower", "upper", "id"])
    t.create_index("lowerIndex", ["node", "lower"])
    t.create_index("upperIndex", ["node", "upper"])
"""

from .bptree import BPlusTree, DuplicateEntryError
from .buffer import DEFAULT_CACHE_BLOCKS, BufferPool
from .database import Database
from .errors import (
    BlockError,
    BufferError_,
    EngineError,
    KeyNotFoundError,
    SchemaError,
    SerializationError,
)
from .heap import HeapFile
from .serial import INT_MAX, INT_MIN, IntTupleCodec
from .stats import IoSnapshot, IoStats, measure
from .storage import DEFAULT_BLOCK_SIZE, DiskManager
from .table import IndexDef, Table

__all__ = [
    "BPlusTree",
    "BufferPool",
    "BlockError",
    "BufferError_",
    "Database",
    "DiskManager",
    "DuplicateEntryError",
    "EngineError",
    "HeapFile",
    "IndexDef",
    "IntTupleCodec",
    "IoSnapshot",
    "IoStats",
    "KeyNotFoundError",
    "SchemaError",
    "SerializationError",
    "Table",
    "measure",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CACHE_BLOCKS",
    "INT_MAX",
    "INT_MIN",
]
