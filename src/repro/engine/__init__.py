"""Block-level relational storage substrate.

This package simulates the parts of an Oracle8i-class RDBMS that the paper's
experiments depend on: a block device with physical-I/O accounting, an LRU
buffer cache, composite-key B+-tree indexes and heap tables.  See DESIGN.md
section 3.1 for the substitution rationale.

Typical use::

    from repro.engine import Database

    db = Database(block_size=2048, cache_blocks=200)
    t = db.create_table("Intervals", ["node", "lower", "upper", "id"])
    t.create_index("lowerIndex", ["node", "lower"])
    t.create_index("upperIndex", ["node", "upper"])

For durability experiments, attach a write-ahead log and a fault injector::

    from repro.engine import Database, FaultInjector

    injector = FaultInjector(seed=7).crash_at_write_point(3)
    db = Database(wal=True, injector=injector)
"""

from .bptree import BPlusTree, DuplicateEntryError
from .buffer import DEFAULT_CACHE_BLOCKS, BufferPool
from .database import Database
from .errors import (
    BlockError,
    BufferError_,
    EngineError,
    KeyNotFoundError,
    PermanentIOError,
    RecoveryError,
    RetryExhaustedError,
    SchemaError,
    SerializationError,
    SimulatedCrash,
    TornPageError,
    TransientError,
    TransientIOError,
    WalError,
)
from .faults import FaultInjector
from .heap import HeapFile
from .retry import RetryPolicy, default_classify
from .serial import INT_MAX, INT_MIN, IntTupleCodec
from .stats import IoSnapshot, IoStats, measure
from .storage import DEFAULT_BLOCK_SIZE, DiskManager
from .table import IndexDef, Table
from .wal import WriteAheadLog

__all__ = [
    "BPlusTree",
    "BufferPool",
    "BlockError",
    "BufferError_",
    "Database",
    "DiskManager",
    "DuplicateEntryError",
    "EngineError",
    "FaultInjector",
    "HeapFile",
    "IndexDef",
    "IntTupleCodec",
    "IoSnapshot",
    "IoStats",
    "KeyNotFoundError",
    "PermanentIOError",
    "RecoveryError",
    "RetryExhaustedError",
    "RetryPolicy",
    "SchemaError",
    "SerializationError",
    "SimulatedCrash",
    "Table",
    "TornPageError",
    "TransientError",
    "TransientIOError",
    "WalError",
    "WriteAheadLog",
    "default_classify",
    "measure",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CACHE_BLOCKS",
    "INT_MAX",
    "INT_MIN",
]
