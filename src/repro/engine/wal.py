"""Write-ahead log with group commit, checkpointing and crash semantics.

The simulated engine keeps its catalog and page directories in memory, so a
:class:`~repro.engine.errors.SimulatedCrash` abandons *all* volatile state.
Durability therefore follows the classic logical-redo recipe:

* every mutation appends a **logical record** (insert / delete / bulk /
  DDL / store metadata) to the log tail;
* a batch commits by appending a ``commit`` record and **forcing** the
  tail (group commit -- one force per batch, accounted in whole blocks as
  ``wal_writes``);
* a **checkpoint** atomically replaces the whole log with one snapshot
  record, bounding replay work;
* **recovery** scans the durable prefix (accounted as ``wal_reads``),
  applies the checkpoint snapshot and replays every *committed* batch in
  order; a batch whose ``commit`` never became durable is rolled back by
  simply not replaying it.

Records are JSON lines protected by a CRC-32 prefix.  The "disk" behind
the log is modeled the same way as the data disk: whatever was forced
survives a crash, the un-forced tail is lost
(:meth:`WriteAheadLog.drop_tail`), and the force itself is a write point
of the :class:`~repro.engine.faults.FaultInjector` -- a crash injected at
that point loses the batch, exactly like a power cut between ``write()``
and ``fsync()``.
"""

from __future__ import annotations

import json
import zlib
from typing import TYPE_CHECKING, Optional

from .errors import WalError
from .stats import IoStats
from .storage import DEFAULT_BLOCK_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from .faults import FaultInjector

#: Record kinds understood by replay.
RECORD_KINDS = (
    "begin",
    "commit",
    "create_table",
    "create_index",
    "insert",
    "delete",
    "bulk",
    "meta",
    "ckpt",
)


def encode_record(record: dict) -> str:
    """Serialise one record as a CRC-protected JSON line."""
    if record.get("t") not in RECORD_KINDS:
        raise WalError(f"unknown WAL record kind: {record.get('t')!r}")
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}"


def decode_record(line: str) -> dict:
    """Parse and CRC-check one log line."""
    if len(line) < 10 or line[8] != " ":
        raise WalError(f"malformed WAL line: {line[:40]!r}")
    payload = line[9:]
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    if f"{crc:08x}" != line[:8]:
        raise WalError(f"WAL record fails its CRC: {line[:40]!r}")
    record = json.loads(payload)
    if record.get("t") not in RECORD_KINDS:
        raise WalError(f"unknown WAL record kind: {record.get('t')!r}")
    return record


class WriteAheadLog:
    """An in-memory WAL with an explicit durable / volatile boundary.

    Parameters
    ----------
    block_size:
        Log block size used for I/O accounting (defaults to the paper's
        2 KB data block).
    stats:
        Counter object receiving ``wal_reads`` / ``wal_writes``.
    injector:
        Optional fault injector; every force is one of its write points.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        stats: Optional[IoStats] = None,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.block_size = block_size
        self.stats = stats if stats is not None else IoStats()
        self.injector = injector
        self._durable: list[str] = []
        self._tail: list[str] = []
        self.forces = 0
        self.checkpoints = 0

    def rebind(self, stats: IoStats, injector: Optional["FaultInjector"]) -> None:
        """Attach the log to a (new) database's counters and injector.

        Called when a recovered :class:`~repro.engine.database.Database`
        adopts the survivor log.
        """
        self.stats = stats
        self.injector = injector

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Buffer one record in the volatile tail (no I/O yet)."""
        self._tail.append(encode_record(record))

    def force(self) -> None:
        """Make the buffered tail durable (the group-commit fsync).

        Accounted as ``wal_writes`` in whole blocks of appended bytes.
        The injector's write point fires *before* durability: a crash
        injected here loses the tail, like a power cut before fsync.
        """
        if not self._tail:
            return
        if self.injector is not None:
            self.injector.on_wal_force()
        appended = sum(len(line) + 1 for line in self._tail)
        self.stats.wal_writes += -(-appended // self.block_size)
        self._durable.extend(self._tail)
        self._tail.clear()
        self.forces += 1

    def checkpoint(self, snapshot: dict) -> None:
        """Atomically replace the log contents with one snapshot record.

        Models writing the snapshot to a side file and atomically
        switching the log anchor to it: the injector's write point fires
        before the switch, so a crash injected here leaves the *old* log
        intact and recovery simply replays more.
        """
        line = encode_record(snapshot)
        if self.injector is not None:
            self.injector.on_wal_force()
        self.stats.wal_writes += -(-(len(line) + 1) // self.block_size)
        self._durable = [line]
        self._tail.clear()
        self.forces += 1
        self.checkpoints += 1

    def drop_tail(self) -> int:
        """Discard the un-forced tail (what a crash destroys); return count."""
        lost = len(self._tail)
        self._tail.clear()
        return lost

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """Decode the durable prefix (accounted as ``wal_reads`` blocks)."""
        nbytes = sum(len(line) + 1 for line in self._durable)
        if nbytes:
            self.stats.wal_reads += -(-nbytes // self.block_size)
        return [decode_record(line) for line in self._durable]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def durable_records(self) -> int:
        """Number of records in the durable prefix."""
        return len(self._durable)

    @property
    def tail_records(self) -> int:
        """Number of buffered (volatile) records."""
        return len(self._tail)

    @property
    def durable_bytes(self) -> int:
        """Size of the durable prefix in bytes."""
        return sum(len(line) + 1 for line in self._durable)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog(durable={len(self._durable)}, "
            f"tail={len(self._tail)}, forces={self.forces}, "
            f"checkpoints={self.checkpoints})"
        )
