"""Measurement harness for the Section 6 experiments.

Reproduces the paper's experimental protocol on the engine substrate:

* databases are built per method with the paper's server geometry (2 KB
  blocks, 200-block buffer cache, Section 6.1);
* competitor indexes (and, for comparability, the RI-tree) are *bulk
  loaded*, as in the paper ("the good clustering properties of the bulk
  loaded indexes", Section 6.3);
* the buffer cache is cleared once before each query batch, then the batch
  runs warm -- a server answering a query stream;
* per query batch we record **average physical disk-block accesses** and
  **average response time** per query, the two y-axes of Figures 13-17,
  plus the realised selectivity so the calibration is auditable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core.access import AccessMethod, IntervalRecord, IntervalStore
from ..engine.database import Database

QueryInterval = tuple[int, int]

#: The paper's server geometry (Section 6.1).
PAPER_BLOCK_SIZE = 2048
PAPER_CACHE_BLOCKS = 200


def paper_database() -> Database:
    """A fresh engine instance with the paper's block/cache geometry."""
    return Database(block_size=PAPER_BLOCK_SIZE, cache_blocks=PAPER_CACHE_BLOCKS)


def build_method(
    factory: Callable[[Database], AccessMethod],
    records: Sequence[IntervalRecord],
    bulk: bool = True,
) -> AccessMethod:
    """Create a method on a fresh paper-geometry database and load it."""
    method = factory(paper_database())
    if bulk:
        method.bulk_load(records)
    else:
        method.extend(records)
    method.db.flush()
    return method


@dataclass
class BatchResult:
    """Aggregate measurements of one query batch against one method."""

    method: str
    queries: int
    physical_io_per_query: float
    logical_io_per_query: float
    response_time_per_query: float
    results_per_query: float
    selectivity: float

    def as_row(self) -> dict:
        """Flat dict for table printing."""
        return {
            "method": self.method,
            "queries": self.queries,
            "physical I/O": round(self.physical_io_per_query, 1),
            "logical I/O": round(self.logical_io_per_query, 1),
            "time [ms]": round(self.response_time_per_query * 1000, 3),
            "avg results": round(self.results_per_query, 1),
            "selectivity [%]": round(self.selectivity * 100, 3),
        }


def run_query_batch(
    method: AccessMethod, queries: Sequence[QueryInterval], cold_start: bool = True
) -> BatchResult:
    """Run ``queries`` against ``method`` and aggregate the measurements.

    Queries go through :meth:`~repro.core.access.AccessMethod.intersection_count`,
    which executes the same scans (and therefore the same I/O) as
    ``intersection`` but lets batched methods skip materialising id lists
    -- the harness measures query execution, not list building.
    """
    if not queries:
        raise ValueError("empty query batch")
    if cold_start:
        method.db.clear_cache()
    total_results = 0
    stats = method.db.stats
    before = stats.snapshot()
    started = time.perf_counter()
    for lower, upper in queries:
        total_results += method.intersection_count(lower, upper)
    elapsed = time.perf_counter() - started
    delta = stats.snapshot() - before
    count = len(queries)
    n = max(method.interval_count, 1)
    return BatchResult(
        method=method.method_name,
        queries=count,
        physical_io_per_query=delta.physical_reads / count,
        logical_io_per_query=delta.logical_reads / count,
        response_time_per_query=elapsed / count,
        results_per_query=total_results / count,
        selectivity=(total_results / count) / n,
    )


@dataclass
class JoinBatchResult:
    """Aggregate measurements of one index-nested-loop join run."""

    method: str
    probes: int
    pairs: int
    physical_io: int
    logical_io: int
    response_time: float
    #: The planner's prediction (``JoinEstimate.as_dict()``) when the run
    #: was planned (``run_join_batch(..., plan=True)``); ``None`` otherwise.
    decision: Optional[dict] = None
    #: The evaluation the harness actually drove.  ``run_join_batch``
    #: always probes the store's own join path (index-nested-loop),
    #: whatever the planner's ``choice`` says -- surfacing both keeps
    #: plan rows honest about which join was measured.
    dispatch: str = "index-nested-loop"
    #: Join predicate name the batch ran under (None = overlap join).
    predicate: Optional[str] = None

    @property
    def io_per_pair(self) -> float:
        """Physical block accesses per emitted join pair."""
        return self.physical_io / max(self.pairs, 1)

    def as_row(self) -> dict:
        """Flat dict for table printing."""
        row = {
            "method": self.method,
            "probes": self.probes,
            "pairs": self.pairs,
            "physical I/O": self.physical_io,
            "logical I/O": self.logical_io,
            "time [ms]": round(self.response_time * 1000, 3),
            "I/O per pair": round(self.io_per_pair, 4),
        }
        if self.predicate is not None:
            row["predicate"] = self.predicate
        if self.decision is not None:
            chosen = self.decision[
                "index" if self.decision["choice"] == "index-nested-loop" else "sweep"
            ]
            row["planner choice"] = self.decision["choice"]
            row["dispatched"] = self.dispatch
            row["predicted pairs"] = self.decision["result_count"]
            row["predicted physical I/O"] = chosen["physical_reads"]
        return row


def run_join_batch(
    method: IntervalStore | str,
    probes: Sequence[IntervalRecord],
    cold_start: bool = True,
    count_only: bool = True,
    plan: bool = False,
    predicate=None,
    inner: Optional[Sequence[IntervalRecord]] = None,
    store_opts: Optional[dict] = None,
) -> JoinBatchResult:
    """Join ``probes`` against ``method``'s stored intervals, measured.

    The index join as the harness sees it: the store holds the inner
    relation and the whole probe batch runs through
    :meth:`~repro.core.access.IntervalStore.join_count` /
    :meth:`~repro.core.access.IntervalStore.join_pairs` (``count_only``
    selects between them; the default materialises no pair list).
    ``predicate`` runs the batch as an Allen-relation predicate join
    through the same entry points.

    ``method`` is any :class:`~repro.core.access.IntervalStore`, or a
    backend *name* resolved through :func:`repro.core.stores.
    create_store` (``store_opts`` forwarded to the factory); a named
    backend is bulk-loaded with ``inner`` before the measured window,
    so callers can drive any registered backend -- the sharded router
    included -- without constructing it themselves.  For
    engine-backed methods the batch's I/O is observed through
    :meth:`~repro.engine.database.Database.measure` -- the same counters
    (and, per probe, the same scans) as the Figure 13 query batches.
    Stores on a foreign engine (the sqlite3 backend) have no such
    counters; their rows report zero I/O and wall time only.

    With ``plan=True`` the store's cost model (where it has one) prices
    the batch *before* the caches are cleared, and the prediction --
    expected pair count, per-strategy logical/physical I/O -- rides along
    on :attr:`JoinBatchResult.decision`, so reports can put predicted and
    measured cost side by side.  Planning happens outside the measured
    window: the ANALYZE scan is statistics maintenance, not query work.
    """
    from ..core.predicates import resolve_join_predicate

    if isinstance(method, str):
        from ..core.stores import create_store

        method = create_store(method, **(store_opts or {}))
        if inner:
            method.bulk_load(inner)
    elif inner is not None:
        raise ValueError(
            "inner= loads a backend constructed by name; this store is "
            "already built"
        )
    pred = resolve_join_predicate(predicate)
    decision = None
    if plan:
        model = method.cost_model()
        if model is not None:
            decision = model.estimate_join(probes, predicate=pred).as_dict()
    db = getattr(method, "db", None)
    if cold_start and db is not None:
        db.clear_cache()
    started = time.perf_counter()

    def evaluate() -> int:
        if count_only:
            return method.join_count(probes, predicate=pred)
        return len(method.join_pairs(probes, predicate=pred))

    if db is not None:
        with db.measure() as delta:
            pairs = evaluate()
        physical, logical = delta.physical_reads, delta.logical_reads
    else:
        pairs = evaluate()
        physical = logical = 0
    elapsed = time.perf_counter() - started
    return JoinBatchResult(
        method=method.method_name,
        probes=len(probes),
        pairs=pairs,
        physical_io=physical,
        logical_io=logical,
        response_time=elapsed,
        decision=decision,
        predicate=None if pred is None else pred.name,
    )


@dataclass
class ExperimentResult:
    """One reproduced table/figure: labelled rows plus free-form notes."""

    experiment_id: str
    title: str
    paper_reference: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        """Append a result row (keys must match ``columns``)."""
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append(values)

    def note(self, text: str) -> None:
        """Attach a free-form observation."""
        self.notes.append(text)

    def to_markdown(self) -> str:
        """Render rows as a GitHub-style markdown table."""
        lines = [
            f"### {self.experiment_id}: {self.title}",
            f"*Paper reference: {self.paper_reference}*",
            "",
        ]
        header = " | ".join(str(c) for c in self.columns)
        separator = " | ".join("---" for _ in self.columns)
        lines.append(f"| {header} |")
        lines.append(f"| {separator} |")
        for row in self.rows:
            cells = " | ".join(str(row[c]) for c in self.columns)
            lines.append(f"| {cells} |")
        for note in self.notes:
            lines.append("")
            lines.append(f"> {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.to_markdown())
        print()

    def series(
        self, x_column: str, y_column: str, label_column: str = "method"
    ) -> dict[str, list[tuple]]:
        """Group rows into figure series: label -> [(x, y), ...]."""
        out: dict[str, list[tuple]] = {}
        for row in self.rows:
            out.setdefault(str(row[label_column]), []).append(
                (row[x_column], row[y_column])
            )
        return out
