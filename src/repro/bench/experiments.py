"""The Section 6 experiments, one function per table/figure.

Every experiment returns an :class:`~repro.bench.harness.ExperimentResult`
whose rows are the series the paper plots.  Absolute numbers differ from the
paper (Python substrate vs. PL/SQL on a Pentium Pro/180); the *shapes* --
who wins, by what factor, where trends bend -- are the reproduction target.
See EXPERIMENTS.md for paper-vs-measured notes.

Scaling: experiments accept a scale preset (``tiny`` for CI, ``small`` for
developer machines -- the default, ``full`` for paper-size runs), selected
by argument or the ``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

import os
import random
import time
from typing import Callable, Optional

from ..core.backbone import FixedHeightBackbone, VirtualBackbone
from ..core.ritree import RITree
from ..core.temporal import TemporalRITree
from ..engine.database import Database
from ..methods.ist import ISTree
from ..methods.tindex import TileIndex, tune_fixed_level
from ..methods.windowlist import WindowList
from ..sql.ritree_sql import SQLRITree
from ..workloads import distributions, queries as query_gen
from .harness import (
    BatchResult,
    ExperimentResult,
    build_method,
    paper_database,
    run_query_batch,
)

#: Scale presets: every size knob of every experiment.
SCALES: dict[str, dict] = {
    "tiny": dict(
        fig12_sizes=[500, 1000, 2000],
        fig13_n=2000,
        fig13_selectivities=[0.005, 0.015, 0.03],
        fig13_queries=10,
        fig14_sizes=[500, 1000, 2000],
        fig14_queries=8,
        fig15_n=2000,
        fig15_selectivities=[0.0, 0.005, 0.012],
        fig15_queries=8,
        fig16_n=2000,
        fig16_means=[0, 500, 1000, 2000],
        fig16_queries=8,
        fig17_n=4000,
        fig17_distances=[0, 50_000, 100_000, 150_000, 200_000],
        fig17_queries=5,
        windowlist_n=2000,
        windowlist_queries=20,
        tune_sample=200,
        tune_queries=10,
        tune_levels=range(2, 15),
        ablation_n=2000,
        ablation_queries=15,
        join_outer_n=200,
        join_inner_n=2000,
        join_outer_d=2000,
        join_inner_d=2000,
        crossover_outer_ns=[5, 20, 80, 320],
        crossover_inner_ns=[2000],
        crossover_inner_ds=[500, 2000],
        predicate_outer_n=120,
        predicate_inner_n=1200,
        predicate_grid_outer_ns=[5, 80],
        predicate_grid_inner_n=8000,
        predicate_grid_relations=["before", "during", "met_by"],
        range_duration_n=1500,
        range_duration_temporal_rows=40,
        range_duration_queries=6,
        range_duration_bands=[(0.0, 0.5), (0.2, 0.8), (0.75, 1.0)],
        range_duration_shard_counts=[1, 2, 4],
        range_duration_probe_n=60,
        range_duration_grid_outer_ns=[5, 80],
        range_duration_grid_inner_n=8000,
        range_duration_grid_bands=[(0.0, 0.35), (0.0, 1.0), (0.6, 1.0)],
        service_n=1500,
        service_ops=500,
        service_shards=2,
        service_domain=20_000,
        service_concurrencies=[1, 16],
        service_repeats=3,
        ingest_batches=16,
        ingest_batch_size=40,
        ingest_flush=120,
        ingest_checkpoint=3,
        ingest_open_fraction=0.12,
        ingest_mean_length=400,
        ingest_check_every=4,
        ingest_crash_batches=3,
        ingest_crash_batch_size=10,
        ingest_crash_flush=20,
        ingest_serve_n=1200,
        ingest_serve_batches=10,
        ingest_serve_batch_size=60,
        ingest_serve_shards=2,
        ingest_serve_domain=20_000,
        ingest_serve_queries=60,
        ingest_serve_concurrency=4,
    ),
    "small": dict(
        fig12_sizes=[1000, 5000, 20_000, 50_000],
        fig13_n=20_000,
        fig13_selectivities=[0.005, 0.01, 0.015, 0.02, 0.025, 0.03],
        fig13_queries=50,
        fig14_sizes=[1000, 10_000, 100_000],
        fig14_queries=20,
        fig15_n=20_000,
        fig15_selectivities=[0.0, 0.002, 0.005, 0.012],
        fig15_queries=20,
        fig16_n=20_000,
        fig16_means=[0, 250, 500, 1000, 1500, 2000],
        fig16_queries=20,
        fig17_n=40_000,
        fig17_distances=[
            0, 25_000, 50_000, 75_000, 100_000, 125_000, 150_000, 175_000, 200_000
        ],
        fig17_queries=10,
        windowlist_n=20_000,
        windowlist_queries=50,
        tune_sample=1000,
        tune_queries=20,
        tune_levels=range(2, 15),
        ablation_n=20_000,
        ablation_queries=30,
        join_outer_n=1500,
        join_inner_n=15_000,
        join_outer_d=2000,
        join_inner_d=2000,
        crossover_outer_ns=[5, 10, 20, 40, 80, 160, 320, 640],
        crossover_inner_ns=[4000, 8000],
        crossover_inner_ds=[1000, 2000],
        predicate_outer_n=400,
        predicate_inner_n=4000,
        predicate_grid_outer_ns=[5, 20, 80, 320],
        predicate_grid_inner_n=8000,
        predicate_grid_relations=["before", "during", "met_by", "overlaps"],
        range_duration_n=8000,
        range_duration_temporal_rows=200,
        range_duration_queries=16,
        range_duration_bands=[(0.0, 0.5), (0.2, 0.8), (0.75, 1.0)],
        range_duration_shard_counts=[1, 2, 4],
        range_duration_probe_n=300,
        range_duration_grid_outer_ns=[5, 20, 80, 320],
        range_duration_grid_inner_n=8000,
        range_duration_grid_bands=[
            (0.0, 0.25), (0.0, 0.6), (0.0, 1.0), (0.5, 1.0)
        ],
        service_n=20_000,
        service_ops=4_000,
        service_shards=4,
        service_domain=100_000,
        service_concurrencies=[1, 4, 16],
        service_repeats=3,
        ingest_batches=60,
        ingest_batch_size=200,
        ingest_flush=600,
        ingest_checkpoint=5,
        ingest_open_fraction=0.1,
        ingest_mean_length=1000,
        ingest_check_every=10,
        ingest_crash_batches=4,
        ingest_crash_batch_size=15,
        ingest_crash_flush=30,
        ingest_serve_n=10_000,
        ingest_serve_batches=40,
        ingest_serve_batch_size=250,
        ingest_serve_shards=4,
        ingest_serve_domain=100_000,
        ingest_serve_queries=400,
        ingest_serve_concurrency=8,
    ),
    "full": dict(
        fig12_sizes=[1000, 10_000, 100_000, 300_000, 1_000_000],
        fig13_n=100_000,
        fig13_selectivities=[0.005, 0.01, 0.015, 0.02, 0.025, 0.03],
        fig13_queries=100,
        fig14_sizes=[1000, 10_000, 100_000, 1_000_000],
        fig14_queries=20,
        fig15_n=100_000,
        fig15_selectivities=[0.0, 0.002, 0.005, 0.012],
        fig15_queries=20,
        fig16_n=100_000,
        fig16_means=[0, 250, 500, 1000, 1500, 2000],
        fig16_queries=20,
        fig17_n=200_000,
        fig17_distances=[
            0, 25_000, 50_000, 75_000, 100_000, 125_000, 150_000, 175_000, 200_000
        ],
        fig17_queries=20,
        windowlist_n=100_000,
        windowlist_queries=100,
        tune_sample=1000,
        tune_queries=20,
        tune_levels=range(2, 15),
        ablation_n=100_000,
        ablation_queries=50,
        join_outer_n=5000,
        join_inner_n=100_000,
        join_outer_d=2000,
        join_inner_d=2000,
        crossover_outer_ns=[5, 10, 20, 40, 80, 160, 320, 640, 1280],
        crossover_inner_ns=[8000, 15_000, 30_000],
        crossover_inner_ds=[500, 2000, 4000],
        predicate_outer_n=800,
        predicate_inner_n=8000,
        predicate_grid_outer_ns=[5, 20, 80, 320, 1280],
        predicate_grid_inner_n=15_000,
        predicate_grid_relations=["before", "during", "met_by", "overlaps", "equals"],
        range_duration_n=40_000,
        range_duration_temporal_rows=1000,
        range_duration_queries=30,
        range_duration_bands=[
            (0.0, 0.35), (0.0, 0.5), (0.2, 0.8), (0.5, 1.0), (0.75, 1.0)
        ],
        range_duration_shard_counts=[1, 2, 4, 8],
        range_duration_probe_n=1000,
        range_duration_grid_outer_ns=[5, 20, 80, 320, 1280],
        range_duration_grid_inner_n=15_000,
        range_duration_grid_bands=[
            (0.0, 0.25), (0.0, 0.6), (0.0, 1.0), (0.5, 1.0)
        ],
        service_n=100_000,
        service_ops=20_000,
        service_shards=4,
        service_domain=500_000,
        service_concurrencies=[1, 4, 16, 64],
        service_repeats=3,
        ingest_batches=200,
        ingest_batch_size=500,
        ingest_flush=2000,
        ingest_checkpoint=8,
        ingest_open_fraction=0.1,
        ingest_mean_length=1000,
        ingest_check_every=25,
        ingest_crash_batches=5,
        ingest_crash_batch_size=20,
        ingest_crash_flush=40,
        ingest_serve_n=50_000,
        ingest_serve_batches=100,
        ingest_serve_batch_size=500,
        ingest_serve_shards=4,
        ingest_serve_domain=500_000,
        ingest_serve_queries=2000,
        ingest_serve_concurrency=16,
    ),
}

#: T-index builds above this entry estimate are skipped (with a note) to
#: keep default runs inside laptop memory budgets.  Override with the
#: REPRO_TINDEX_LIMIT environment variable for paper-size T-index runs.
TINDEX_ENTRY_LIMIT = int(os.environ.get("REPRO_TINDEX_LIMIT", 6_000_000))


def get_scale(name: Optional[str] = None) -> dict:
    """Resolve a scale preset from argument or REPRO_BENCH_SCALE."""
    chosen = name or os.environ.get("REPRO_BENCH_SCALE", "small")
    try:
        return dict(SCALES[chosen], name=chosen)
    except KeyError:
        raise ValueError(
            f"unknown scale {chosen!r}; expected one of {sorted(SCALES)}"
        ) from None


# ----------------------------------------------------------------------
# method factories
# ----------------------------------------------------------------------
def ritree_factory(db: Database) -> RITree:
    """RI-tree on the shared engine geometry."""
    return RITree(db)


def ist_factory(db: Database) -> ISTree:
    """IST with the D-ordering used by the paper's evaluation."""
    return ISTree(db, ordering="D")


def tindex_factory(fixed_level: int) -> Callable[[Database], TileIndex]:
    """T-index factory bound to a tuned fixed level."""

    def factory(db: Database) -> TileIndex:
        return TileIndex(db, fixed_level=fixed_level)

    return factory


def tuned_level_for(
    workload: distributions.Workload,
    scale: dict,
    selectivity: float = 0.01,
    seed: int = 11,
) -> int:
    """The paper's tuning protocol: sample intervals, replay queries."""
    sample_size = min(scale["tune_sample"], len(workload.records))
    sample = workload.records[:sample_size]
    tuning_queries = query_gen.range_queries(
        workload, selectivity, scale["tune_queries"], seed=seed
    )
    return tune_fixed_level(sample, tuning_queries, levels=scale["tune_levels"])


# ----------------------------------------------------------------------
# Table 1 -- the data distributions
# ----------------------------------------------------------------------
def table1_workloads(
    scale_name: Optional[str] = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce Table 1: generate each distribution, report its shape."""
    scale = get_scale(scale_name)
    n = scale["fig13_n"]
    result = ExperimentResult(
        experiment_id="table1",
        title=f"Sample interval databases (n={n}, d=2000)",
        paper_reference="Table 1, Section 6.1",
        columns=[
            "distribution",
            "n",
            "mean length",
            "min lower",
            "max upper",
            "points (len=0)",
        ],
    )
    for name in sorted(distributions.DISTRIBUTIONS):
        workload = distributions.make(name, n, 2000, seed=seed)
        lo, hi = workload.bounds()
        zero = sum(1 for lower, upper, _ in workload.records if upper == lower)
        result.add_row(
            **{
                "distribution": workload.name,
                "n": workload.n,
                "mean length": round(workload.mean_length, 1),
                "min lower": lo,
                "max upper": hi,
                "points (len=0)": zero,
            }
        )
    result.note(
        "Bounding points lie in [0, 2^20 - 1]; D3/D4 arrive in "
        "Poisson start order. Every distribution contains length-0 "
        "intervals, so minstep reaches its minimum (Section 6.1)."
    )
    return result


# ----------------------------------------------------------------------
# Section 6.1 -- Window-List vs RI-tree
# ----------------------------------------------------------------------
def windowlist_comparison(
    scale_name: Optional[str] = None, seed: int = 0
) -> ExperimentResult:
    """Section 6.1: "queries on Window-Lists produced twice as many I/O
    operations than on the dynamic RI-tree"."""
    scale = get_scale(scale_name)
    n = scale["windowlist_n"]
    workload = distributions.d1(n, 2000, seed=seed)
    query_batch = query_gen.range_queries(
        workload, 0.005, scale["windowlist_queries"], seed=seed + 1
    )
    result = ExperimentResult(
        experiment_id="sec6.1-windowlist",
        title=f"Window-List vs RI-tree, D1({n},2k), 0.5% queries",
        paper_reference="Section 6.1 (Window-List paragraph)",
        columns=[
            "method",
            "physical I/O",
            "logical I/O",
            "time [ms]",
            "avg results",
            "index entries",
        ],
    )
    methods = [
        build_method(lambda db: WindowList(db), workload.records),
        build_method(ritree_factory, workload.records),
    ]
    batch_results: list[BatchResult] = []
    for method in methods:
        batch = run_query_batch(method, query_batch)
        batch_results.append(batch)
        row = batch.as_row()
        result.add_row(
            **{
                "method": row["method"],
                "physical I/O": row["physical I/O"],
                "logical I/O": row["logical I/O"],
                "time [ms]": row["time [ms]"],
                "avg results": row["avg results"],
                "index entries": method.index_entry_count,
            }
        )
    wl, ri = batch_results
    if ri.physical_io_per_query > 0:
        ratio = wl.physical_io_per_query / ri.physical_io_per_query
        result.note(
            f"Window-List / RI-tree physical I/O ratio: {ratio:.2f} (paper: ~2)."
        )
    return result


# ----------------------------------------------------------------------
# Figure 12 -- storage occupation
# ----------------------------------------------------------------------
def fig12_storage(scale_name: Optional[str] = None, seed: int = 0) -> ExperimentResult:
    """Index entries vs database size on D4(*, 2k)."""
    scale = get_scale(scale_name)
    sizes = scale["fig12_sizes"]
    tuning_workload = distributions.d4(max(sizes[0], 1000), 2000, seed=seed)
    level = tuned_level_for(tuning_workload, scale, selectivity=0.006)
    result = ExperimentResult(
        experiment_id="fig12",
        title="Number of index entries for varying database size, D4(*,2k)",
        paper_reference="Figure 12, Section 6.2",
        columns=["db size", "method", "index entries", "redundancy"],
    )
    verified = False
    for n in sizes:
        workload = distributions.d4(n, 2000, seed=seed)
        tile = TileIndex(paper_database(), fixed_level=level)
        tindex_entries = sum(
            len(tile.tiles_for(lower, upper)) for lower, upper, _ in workload.records
        )
        if not verified and tindex_entries <= 500_000:
            tile.bulk_load(workload.records)
            assert tile.index_entry_count == tindex_entries
            verified = True
        for method_name, entries in (
            ("T-index", tindex_entries), ("IST", n), ("RI-tree", 2 * n)
        ):
            result.add_row(
                **{
                    "db size": n,
                    "method": method_name,
                    "index entries": entries,
                    "redundancy": round(entries / n, 2) if n else 0.0,
                }
            )
    result.note(
        f"T-index fixed level tuned to {level} by the Section 6.1 "
        "protocol. IST stores one entry per interval, the RI-tree "
        "two (lowerIndex + upperIndex); only the T-index entry "
        "count depends on interval decomposition (paper: factor "
        "10.1 at its optimum level)."
    )
    result.note(
        "T-index entry counts are computed from the decomposition "
        "and verified against a materialised index at the smallest "
        "size."
    )
    return result


# ----------------------------------------------------------------------
# Figure 13 -- I/O and response time vs query selectivity
# ----------------------------------------------------------------------
def fig13_selectivity(
    scale_name: Optional[str] = None, seed: int = 0
) -> ExperimentResult:
    """Disk accesses and response time for range queries on D1."""
    scale = get_scale(scale_name)
    n = scale["fig13_n"]
    workload = distributions.d1(n, 2000, seed=seed)
    level = tuned_level_for(workload, scale, selectivity=0.01)
    result = ExperimentResult(
        experiment_id="fig13",
        title=f"Range queries on D1({n},2k) by query selectivity",
        paper_reference="Figure 13, Section 6.3",
        columns=[
            "selectivity [%]", "method", "physical I/O", "time [ms]", "avg results"
        ],
    )
    methods = {
        "T-index": build_method(tindex_factory(level), workload.records),
        "IST": build_method(ist_factory, workload.records),
        "RI-tree": build_method(ritree_factory, workload.records),
    }
    speedups = []
    for selectivity in scale["fig13_selectivities"]:
        query_batch = query_gen.range_queries(
            workload, selectivity, scale["fig13_queries"], seed=seed + 7
        )
        per_method: dict[str, BatchResult] = {}
        for label, method in methods.items():
            batch = run_query_batch(method, query_batch)
            per_method[label] = batch
            result.add_row(
                **{
                    "selectivity [%]": round(selectivity * 100, 2),
                    "method": label,
                    "physical I/O": round(batch.physical_io_per_query, 1),
                    "time [ms]": round(batch.response_time_per_query * 1000, 2),
                    "avg results": round(batch.results_per_query, 1),
                }
            )
        ri = per_method["RI-tree"].physical_io_per_query
        if ri > 0:
            speedups.append(
                (
                    round(selectivity * 100, 2),
                    round(per_method["T-index"].physical_io_per_query / ri, 1),
                    round(per_method["IST"].physical_io_per_query / ri, 1),
                )
            )
    for sel, t_factor, ist_factor in speedups:
        result.note(
            f"selectivity {sel}%: RI-tree I/O speedup factor "
            f"{t_factor} vs T-index, {ist_factor} vs IST "
            "(paper at 0.5%: 10.8 / 46.3; at 3.0%: 22.8 / 13.6)."
        )
    result.note(f"T-index fixed level tuned to {level}.")
    return result


# ----------------------------------------------------------------------
# Figure 14 -- scaleup with database size
# ----------------------------------------------------------------------
def fig14_scaleup(scale_name: Optional[str] = None, seed: int = 0) -> ExperimentResult:
    """Disk accesses and response time vs database size on D4(*, 2k)."""
    scale = get_scale(scale_name)
    sizes = scale["fig14_sizes"]
    tuning_workload = distributions.d4(min(sizes[-1], 10_000), 2000, seed=seed)
    level = tuned_level_for(tuning_workload, scale, selectivity=0.006)
    result = ExperimentResult(
        experiment_id="fig14",
        title="Range queries on D4(*,2k), selectivity 0.6%, by db size",
        paper_reference="Figure 14, Section 6.3",
        columns=["db size", "method", "physical I/O", "time [ms]", "avg results"],
    )
    first_speedup = None
    last_speedup = None
    for n in sizes:
        workload = distributions.d4(n, 2000, seed=seed)
        query_batch = query_gen.range_queries(
            workload, 0.006, scale["fig14_queries"], seed=seed + 3
        )
        methods: dict[str, object] = {}
        tile_probe = TileIndex(paper_database(), fixed_level=level)
        tindex_entries = sum(
            len(tile_probe.tiles_for(lower, upper))
            for lower, upper, _ in workload.records
        )
        if tindex_entries <= TINDEX_ENTRY_LIMIT:
            methods["T-index"] = build_method(tindex_factory(level), workload.records)
        else:
            result.note(
                f"T-index skipped at n={n}: estimated "
                f"{tindex_entries} entries exceed the "
                f"{TINDEX_ENTRY_LIMIT} build limit."
            )
        methods["IST"] = build_method(ist_factory, workload.records)
        methods["RI-tree"] = build_method(ritree_factory, workload.records)
        per_method: dict[str, BatchResult] = {}
        for label, method in methods.items():
            batch = run_query_batch(method, query_batch)
            per_method[label] = batch
            result.add_row(
                **{
                    "db size": n,
                    "method": label,
                    "physical I/O": round(batch.physical_io_per_query, 1),
                    "time [ms]": round(batch.response_time_per_query * 1000, 2),
                    "avg results": round(batch.results_per_query, 1),
                }
            )
        if "T-index" in per_method:
            ri = per_method["RI-tree"]
            if ri.physical_io_per_query > 0:
                io_factor = (
                    per_method["T-index"].physical_io_per_query
                    / ri.physical_io_per_query
                )
                time_factor = (
                    per_method["T-index"].response_time_per_query
                    / max(ri.response_time_per_query, 1e-9)
                )
                if first_speedup is None:
                    first_speedup = (n, io_factor, time_factor)
                last_speedup = (n, io_factor, time_factor)
    if first_speedup and last_speedup and first_speedup != last_speedup:
        result.note(
            f"T-index/RI-tree speedup grows from {first_speedup[1]:.1f}x "
            f"I/O ({first_speedup[2]:.1f}x time) at n={first_speedup[0]} to "
            f"{last_speedup[1]:.1f}x I/O ({last_speedup[2]:.1f}x time) at "
            f"n={last_speedup[0]} (paper: 2 -> 42 I/O, 2.0 -> 4.9 time)."
        )
    result.note(f"T-index fixed level tuned to {level}.")
    return result


# ----------------------------------------------------------------------
# Figure 15 -- data-space granularity (minstep)
# ----------------------------------------------------------------------
def fig15_granularity(
    scale_name: Optional[str] = None, seed: int = 0
) -> ExperimentResult:
    """RI-tree response time on restricted D3 databases."""
    scale = get_scale(scale_name)
    n = scale["fig15_n"]
    ranges = [(0, 4000), (500, 3500), (1000, 3000), (1500, 2500)]
    result = ExperimentResult(
        experiment_id="fig15",
        title=f"RI-tree on restricted D3({n}) databases by minimum length",
        paper_reference="Figure 15, Section 6.3",
        columns=[
            "min length",
            "selectivity [%]",
            "physical I/O",
            "time [ms]",
            "avg results",
            "minstep",
            "height",
        ],
    )
    for min_len, max_len in ranges:
        workload = distributions.d3_restricted(n, min_len, max_len, seed=seed)
        tree = build_method(ritree_factory, workload.records)
        for selectivity in scale["fig15_selectivities"]:
            query_batch = query_gen.range_queries(
                workload, selectivity, scale["fig15_queries"], seed=seed + 5
            )
            batch = run_query_batch(tree, query_batch)
            result.add_row(
                **{
                    "min length": min_len,
                    "selectivity [%]": round(selectivity * 100, 2),
                    "physical I/O": round(batch.physical_io_per_query, 1),
                    "time [ms]": round(batch.response_time_per_query * 1000, 2),
                    "avg results": round(batch.results_per_query, 1),
                    "minstep": tree.backbone.minstep,
                    "height": tree.backbone.height(),
                }
            )
    result.note(
        "Larger minimum interval lengths raise minstep, so query "
        "walks prune earlier; response time should stay nearly "
        "flat across the x-axis and be dominated by the result "
        "count (paper: 'almost independent of the minimum length')."
    )
    return result


# ----------------------------------------------------------------------
# Figure 16 -- mean interval duration
# ----------------------------------------------------------------------
def fig16_duration(scale_name: Optional[str] = None, seed: int = 0) -> ExperimentResult:
    """Response time vs mean interval duration on D4(n, *)."""
    scale = get_scale(scale_name)
    n = scale["fig16_n"]
    result = ExperimentResult(
        experiment_id="fig16",
        title=f"Range queries on D4({n},*), selectivity 1.0%, by mean duration",
        paper_reference="Figure 16, Section 6.3",
        columns=[
            "mean duration",
            "method",
            "physical I/O",
            "time [ms]",
            "avg results",
            "T-index redundancy",
        ],
    )
    for mean in scale["fig16_means"]:
        workload = distributions.d4(n, mean, seed=seed)
        level = tuned_level_for(workload, scale, selectivity=0.01, seed=seed + 13)
        tindex = build_method(tindex_factory(level), workload.records)
        methods = {
            "IST": build_method(ist_factory, workload.records),
            "T-index": tindex,
            "RI-tree": build_method(ritree_factory, workload.records),
        }
        query_batch = query_gen.range_queries(
            workload, 0.01, scale["fig16_queries"], seed=seed + 5
        )
        for label, method in methods.items():
            batch = run_query_batch(method, query_batch)
            result.add_row(
                **{
                    "mean duration": mean,
                    "method": label,
                    "physical I/O": round(batch.physical_io_per_query, 1),
                    "time [ms]": round(batch.response_time_per_query * 1000, 2),
                    "avg results": round(batch.results_per_query, 1),
                    "T-index redundancy": (
                        round(tindex.redundancy, 2) if label == "T-index" else ""
                    ),
                }
            )
    result.note(
        "The T-index is re-tuned per mean duration (its optimum "
        "level shifts with interval length); its redundancy should "
        "fall toward 1 as durations approach 0 while the RI-tree "
        "stays at 2 entries/interval and remains at least as fast "
        "even for pure point databases (paper: 'slightly better')."
    )
    return result


# ----------------------------------------------------------------------
# Figure 17 -- sweeping point query
# ----------------------------------------------------------------------
def fig17_sweep(scale_name: Optional[str] = None, seed: int = 0) -> ExperimentResult:
    """Point-query position sweep on D2: the IST degeneration."""
    scale = get_scale(scale_name)
    n = scale["fig17_n"]
    workload = distributions.d2(n, 2000, seed=seed)
    # Tune with the experiment's own query type: point queries across the
    # swept region (the paper tunes per distribution and workload).
    sample_size = min(scale["tune_sample"], len(workload.records))
    tuning_points = query_gen.sweeping_point_queries(
        [d + 331 for d in scale["fig17_distances"]]
    )
    level = tune_fixed_level(
        workload.records[:sample_size], tuning_points, levels=scale["tune_levels"]
    )
    methods = {
        "IST": build_method(ist_factory, workload.records),
        "T-index": build_method(tindex_factory(level), workload.records),
        "RI-tree": build_method(ritree_factory, workload.records),
    }
    result = ExperimentResult(
        experiment_id="fig17",
        title=f"Sweeping point query on D2({n},2k)",
        paper_reference="Figure 17, Section 6.3",
        columns=[
            "distance to upper bound",
            "method",
            "physical I/O",
            "time [ms]",
            "avg results",
        ],
    )
    rng_offsets = list(range(scale["fig17_queries"]))
    for distance in scale["fig17_distances"]:
        base = distributions.DOMAIN_MAX - distance
        # A small cluster of nearby points per distance, averaged.
        query_batch = [
            (max(0, base - 31 * k), max(0, base - 31 * k)) for k in rng_offsets
        ]
        for label, method in methods.items():
            batch = run_query_batch(method, query_batch)
            result.add_row(
                **{
                    "distance to upper bound": distance,
                    "method": label,
                    "physical I/O": round(batch.physical_io_per_query, 1),
                    "time [ms]": round(batch.response_time_per_query * 1000, 2),
                    "avg results": round(batch.results_per_query, 1),
                }
            )
    result.note(
        "The IST (D-order: index on (upper, lower)) must scan every "
        "entry with upper >= query point, so its cost grows "
        "linearly with the distance from the data space's upper "
        "bound; RI-tree and T-index stay flat, with the RI-tree "
        "slightly ahead (paper Figure 17)."
    )
    result.note(f"T-index fixed level tuned to {level}.")
    return result


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def ablation_query_forms(
    scale_name: Optional[str] = None, seed: int = 0
) -> ExperimentResult:
    """A1: Figure 9 two-branch UNION ALL vs Figure 8 three-branch OR.

    Runs on sqlite3, where both literal statements execute unchanged.
    """
    scale = get_scale(scale_name)
    n = scale["ablation_n"]
    workload = distributions.d1(n, 2000, seed=seed)
    tree = SQLRITree()
    tree.bulk_load(workload.records)
    query_batch = query_gen.range_queries(
        workload, 0.01, scale["ablation_queries"], seed=seed + 1
    )
    result = ExperimentResult(
        experiment_id="ablation-A1",
        title=f"Query formulations on sqlite3, D1({n},2k), 1% selectivity",
        paper_reference="Figures 8 vs 9, Sections 4.2-4.3",
        columns=["query form", "time [ms]", "avg results"],
    )
    for label, runner in (
        ("Figure 9 (UNION ALL, folded BETWEEN)", tree.intersection),
        ("Figure 8 (3-branch OR)", tree.intersection_preliminary),
    ):
        started = time.perf_counter()
        total = 0
        for lower, upper in query_batch:
            total += len(runner(lower, upper))
        elapsed = time.perf_counter() - started
        result.add_row(
            **{
                "query form": label,
                "time [ms]": round(elapsed / len(query_batch) * 1000, 3),
                "avg results": round(total / len(query_batch), 1),
            }
        )
    result.note(
        "Both forms return identical results; the two-branch form "
        "lets the optimizer drive each branch from the matching "
        "composite index (paper Section 4.3)."
    )
    return result


def ablation_expansion(
    scale_name: Optional[str] = None, seed: int = 0
) -> ExperimentResult:
    """A2: dynamic root/offset adaptation vs fixed-height backbones.

    Data occupies a narrow band far from the origin, the situation the
    offset/root machinery of Section 3.4 exists for.
    """
    scale = get_scale(scale_name)
    n = scale["ablation_n"]
    rng_workload = distributions.d1(n, 200, seed=seed)
    # Compress starts into [900000, 916384): 2^14 wide, far from 0.
    records = [
        (900_000 + (lower % 16_384), 900_000 + (lower % 16_384) + (upper - lower), i)
        for i, (lower, upper, _) in enumerate(rng_workload.records)
    ]
    query_batch = [
        (900_000 + (13 * k) % 16_384, 900_000 + (13 * k) % 16_384 + 3000)
        for k in range(scale["ablation_queries"])
    ]
    variants = [
        ("adaptive (Section 3.4)", VirtualBackbone()),
        ("fixed height 20", FixedHeightBackbone(20)),
        ("fixed height 48", FixedHeightBackbone(48)),
    ]
    result = ExperimentResult(
        experiment_id="ablation-A2",
        title=f"Backbone expansion strategies, {n} intervals in a narrow band at 900k",
        paper_reference="Sections 3.3-3.5",
        columns=[
            "backbone", "height", "avg transient entries", "physical I/O", "time [ms]"
        ],
    )
    for label, backbone in variants:
        db = paper_database()
        tree = RITree(db, backbone=backbone)
        tree.bulk_load(records)
        db.flush()
        entries = (
            sum(tree.query_nodes(lo, up).total_entries for lo, up in query_batch)
            / len(query_batch)
        )
        batch = run_query_batch(tree, query_batch)
        result.add_row(
            **{
                "backbone": label,
                "height": tree.backbone.height(),
                "avg transient entries": round(entries, 1),
                "physical I/O": round(batch.physical_io_per_query, 1),
                "time [ms]": round(batch.response_time_per_query * 1000, 2),
            }
        )
    result.note(
        "The adaptive backbone shifts the band to the origin and "
        "sizes the root to the occupied range; fixed backbones pay "
        "one extra transient entry (and index probe) per wasted "
        "level."
    )
    return result


def ablation_minstep(
    scale_name: Optional[str] = None, seed: int = 0
) -> ExperimentResult:
    """A3: the minstep pruning lemma on vs off (Section 3.4)."""
    scale = get_scale(scale_name)
    n = scale["ablation_n"]
    workload = distributions.d3_restricted(n, 1500, 2500, seed=seed)
    query_batch = query_gen.range_queries(
        workload, 0.005, scale["ablation_queries"], seed=seed + 1
    )
    result = ExperimentResult(
        experiment_id="ablation-A3",
        title=f"minstep pruning on D3({n},[1500,2500]) (min length 1500)",
        paper_reference="Section 3.4 (Lemma) and Figure 15",
        columns=[
            "minstep pruning",
            "minstep",
            "avg transient entries",
            "physical I/O",
            "time [ms]",
        ],
    )
    for use_minstep in (True, False):
        db = paper_database()
        tree = RITree(db, backbone=VirtualBackbone(use_minstep=use_minstep))
        tree.bulk_load(workload.records)
        db.flush()
        entries = (
            sum(tree.query_nodes(lo, up).total_entries for lo, up in query_batch)
            / len(query_batch)
        )
        batch = run_query_batch(tree, query_batch)
        result.add_row(
            **{
                "minstep pruning": "on" if use_minstep else "off",
                "minstep": tree.backbone.minstep,
                "avg transient entries": round(entries, 1),
                "physical I/O": round(batch.physical_io_per_query, 1),
                "time [ms]": round(batch.response_time_per_query * 1000, 2),
            }
        )
    result.note(
        "With all intervals at least 1500 long, nothing registers "
        "below level ~10, so pruned walks stop ~10 levels early; "
        "disabling the lemma pays two index probes per skipped "
        "level per query."
    )
    return result


def ablation_temporal(
    scale_name: Optional[str] = None, seed: int = 0
) -> ExperimentResult:
    """A4: reserved fork nodes for infinity vs the naive MAXINT tree.

    Section 4.6's first attempt "set the fork node of an infinite interval
    to MAXINT but do not further modify the algorithms. Thus, the tree
    becomes very high but it is almost empty close to the root."
    """
    scale = get_scale(scale_name)
    n = scale["ablation_n"]
    workload = distributions.d2(n, 2000, seed=seed)
    infinite_lowers = [lower for lower, _, __ in workload.records[: n // 10]]
    query_batch = query_gen.range_queries(
        workload, 0.005, scale["ablation_queries"], seed=seed + 1
    )
    result = ExperimentResult(
        experiment_id="ablation-A4",
        title=f"Infinite intervals: reserved fork node vs naive MAXINT "
        f"({n} finite + {n // 10} infinite)",
        paper_reference="Section 4.6",
        columns=[
            "strategy", "height", "avg transient entries", "physical I/O", "time [ms]"
        ],
    )
    # Strategy 1: Section 4.6's reserved fork node.
    reserved = TemporalRITree(paper_database())
    reserved.bulk_load(workload.records)
    for k, lower in enumerate(infinite_lowers):
        reserved.insert_infinite(lower, n + k)
    reserved.db.flush()
    # Strategy 2: naive registration with a huge upper bound.
    naive = RITree(paper_database())
    naive.bulk_load(
        workload.records
        + [(lower, 2**40, n + k) for k, lower in enumerate(infinite_lowers)]
    )
    naive.db.flush()
    for label, tree in (
        ("reserved fork node (Section 4.6)", reserved),
        ("naive MAXINT-high tree", naive),
    ):
        entries = (
            sum(tree.query_nodes(lo, up).total_entries for lo, up in query_batch)
            / len(query_batch)
        )
        batch = run_query_batch(tree, query_batch)
        result.add_row(
            **{
                "strategy": label,
                "height": tree.backbone.height(),
                "avg transient entries": round(entries, 1),
                "physical I/O": round(batch.physical_io_per_query, 1),
                "time [ms]": round(batch.response_time_per_query * 1000, 2),
            }
        )
    result.note(
        "Results agree between strategies; the naive tree's root "
        "doubles out to 2^40, inflating every query walk, while "
        "the reserved node adds exactly one rightNodes entry."
    )
    return result


def dynamic_environment(
    scale_name: Optional[str] = None, seed: int = 0
) -> ExperimentResult:
    """Section 6.3's unplotted claim: bulk-load clustering vs dynamic builds.

    "The fast response times of T-index and IST ... are caused by the good
    clustering properties of the bulk loaded indexes and will deteriorate
    in a dynamic environment."  Here every method is built twice over the
    same D1 data -- once bulk loaded, once by single inserts in random
    arrival order -- and queried identically.
    """
    scale = get_scale(scale_name)
    n = min(scale["windowlist_n"], 10_000)
    workload = distributions.d1(n, 2000, seed=seed)
    shuffled = list(workload.records)
    random.Random(seed + 1).shuffle(shuffled)
    query_batch = query_gen.range_queries(
        workload, 0.005, scale["ablation_queries"], seed=seed + 2
    )
    result = ExperimentResult(
        experiment_id="dynamic",
        title=f"Bulk-loaded vs dynamically built indexes, D1({n},2k), 0.5% queries",
        paper_reference="Section 6.3 (clustering remark)",
        columns=["method", "build", "physical I/O", "time [ms]", "avg results"],
    )
    factories = {
        "RI-tree": ritree_factory,
        "IST": ist_factory,
        "T-index": tindex_factory(10),
    }
    deterioration: dict[str, tuple[float, float]] = {}
    for label, factory in factories.items():
        for build, bulk in (("bulk", True), ("dynamic", False)):
            method = build_method(factory, shuffled, bulk=bulk)
            batch = run_query_batch(method, query_batch)
            result.add_row(
                **{
                    "method": label,
                    "build": build,
                    "physical I/O": round(batch.physical_io_per_query, 1),
                    "time [ms]": round(batch.response_time_per_query * 1000, 2),
                    "avg results": round(batch.results_per_query, 1),
                }
            )
            pair = deterioration.setdefault(label, [0.0, 0.0])
            pair[0 if bulk else 1] = batch.physical_io_per_query
    for label, (bulk_io, dynamic_io) in deterioration.items():
        if bulk_io > 0:
            result.note(
                f"{label}: dynamic build costs "
                f"{dynamic_io / bulk_io:.2f}x the bulk-loaded I/O."
            )
    result.note(
        "Both competitors deteriorate more than the RI-tree, as "
        "the paper predicts.  The IST suffers most here: its "
        "tail scan touches a constant fraction of the index, so "
        "the lower dynamic fill factor pushes it past the buffer "
        "cache.  The T-index additionally loses heap/tile "
        "correlation for its secondary-filter fetches.  The "
        "RI-tree's short index-only probes barely notice."
    )
    return result


#: All experiments by id, for the CLI runner and the benchmark suite.
ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1_workloads,
    "windowlist": windowlist_comparison,
    "fig12": fig12_storage,
    "fig13": fig13_selectivity,
    "fig14": fig14_scaleup,
    "fig15": fig15_granularity,
    "fig16": fig16_duration,
    "fig17": fig17_sweep,
    "dynamic": dynamic_environment,
    "ablation-a1": ablation_query_forms,
    "ablation-a2": ablation_expansion,
    "ablation-a3": ablation_minstep,
    "ablation-a4": ablation_temporal,
}
