"""Command-line runner regenerating the paper's tables and figures.

Usage::

    python -m repro.bench.run                  # every experiment, default scale
    python -m repro.bench.run fig13 fig14      # a subset
    python -m repro.bench.run --scale tiny     # CI-size quick pass
    python -m repro.bench.run --scale full     # paper-size runs
    python -m repro.bench.run --list           # available experiment ids

Each experiment prints a markdown table with the same rows/series the paper
reports, plus notes comparing the measured shape with the paper's claims.
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import ALL_EXPERIMENTS, SCALES


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.bench.run``."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's evaluation tables/figures."
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="size preset (default: REPRO_BENCH_SCALE or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed (default 0)")
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in ALL_EXPERIMENTS:
            print(experiment_id)
        return 0

    chosen = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [e for e in chosen if e not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        print(f"available: {list(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    for experiment_id in chosen:
        started = time.perf_counter()
        result = ALL_EXPERIMENTS[experiment_id](args.scale, seed=args.seed)
        elapsed = time.perf_counter() - started
        result.print()
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
