"""The bench-trajectory pipeline: merge reports, diff committed baselines.

CI runs the benchmark scripts at tiny scale and hands their JSON reports
to this module, which

* extracts each benchmark's *deterministic* metrics (I/O counters, result
  sizes, decision accuracy -- never wall time, which CI runners cannot
  reproduce),
* merges them into one ``BENCH_PR.json`` whose rows follow the schema
  ``{bench, scale, metrics, git_sha}`` -- the perf-trajectory record a PR
  leaves behind as an artifact, and
* diffs the rows against the committed baselines under
  ``benchmarks/baselines/`` so a regression fails the job with a
  readable delta table.

Three comparison rules cover every metric:

* ``exact`` -- deterministic counters (physical/logical reads, pair
  counts, grid sizes) must reproduce bit for bit; any drift means the
  change altered measured behaviour and the baseline must be updated
  *deliberately* (with the diff in the PR).
* ``at-least`` -- quality ratios (ops ratio, planner accuracy) may only
  improve; dropping below the recorded value is a regression.
* ``informational`` -- wall-clock-derived observations (the service
  bench's latency percentiles and throughput) that CI runners cannot
  reproduce bit for bit.  They ride in the trajectory rows for trend
  reading but never fail the diff; their *gates* live in the benchmark
  scripts themselves, which exit non-zero before the merge job runs.
  Names ending in ``_ms`` or ``_ops_s`` (and ``scaling_ratio``) get
  this rule implicitly.

The CLI wrapper is ``benchmarks/bench_trajectory.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

#: Comparison rules.
EXACT = "exact"
AT_LEAST = "at-least"
INFO = "informational"

#: Metric name -> comparison rule; anything unlisted defaults through
#: :func:`metric_rule` (wall-clock suffixes to INFO, the rest to EXACT).
METRIC_RULES: dict[str, str] = {
    "worst_ops_ratio": AT_LEAST,
    "count_worst_ops_ratio": AT_LEAST,
    "auto_accuracy": AT_LEAST,
    "correct_choices": AT_LEAST,
}


def metric_rule(name: str) -> str:
    """The comparison rule for one metric name."""
    rule = METRIC_RULES.get(name)
    if rule is not None:
        return rule
    if name.endswith(("_ms", "_ops_s")) or name == "scaling_ratio":
        return INFO
    return EXACT


#: Tolerance for AT_LEAST comparisons (floating-point guard only).
AT_LEAST_SLACK = 1e-9


def _scan_throughput_metrics(report: dict) -> dict:
    count_rows = [r for r in report["rows"] if r["path"] == "count"]
    return {
        "results_total": sum(r["results_total"] for r in count_rows),
        "logical_reads": sum(r["logical_reads"] for r in count_rows),
        "physical_reads": sum(r["physical_reads"] for r in count_rows),
        "worst_ops_ratio": round(report["summary"]["ritree_worst_ops_ratio"], 3),
    }


def _interval_join_metrics(report: dict) -> dict:
    rows = {r["strategy"]: r for r in report["rows"]}
    return {
        "pairs": report["summary"]["pairs"],
        "index_physical_reads": rows["index-nested-loop"]["physical_reads"],
        "index_logical_reads": rows["index-nested-loop"]["logical_reads"],
        "sweep_physical_reads": rows["sweep"]["physical_reads"],
        "sweep_logical_reads": rows["sweep"]["logical_reads"],
        "auto_physical_reads": rows["auto"]["physical_reads"],
    }


def _sql_join_metrics(report: dict) -> dict:
    summary = report["summary"]
    return {
        "pairs": summary["pairs"],
        "planner_choice": summary["planner_choice"],
        "decision_consistent": int(summary["decision_consistent"]),
        "plan_uses_both_indexes": int(summary["plan_uses_both_indexes"]),
    }


def _predicate_join_metrics(report: dict) -> dict:
    summary = report["summary"]
    return {
        "predicates": summary["predicates"],
        "pairs_total": summary["pairs_total"],
        "grid_points": summary["grid_points"],
        "correct_choices": summary["correct_choices"],
        "auto_accuracy": round(summary["auto_accuracy"], 3),
        "index_physical_reads": summary["index_physical_reads"],
        "sweep_physical_reads": summary["sweep_physical_reads"],
        "sql_one_statement": int(summary["sql_one_statement"]),
    }


def _range_duration_metrics(report: dict) -> dict:
    summary = report["summary"]
    return {
        "bands": summary["bands"],
        "backends": len(summary["backends"]),
        "parity_queries": summary["parity_queries"],
        "results_total": summary["results_total"],
        "pairs_total": summary["pairs_total"],
        "temporal_rows": summary["temporal_rows"],
        "temporal_results": summary["temporal_results"],
        "grid_points": summary["grid_points"],
        "correct_choices": summary["correct_choices"],
        "auto_accuracy": round(summary["auto_accuracy"], 3),
        "index_physical_reads": summary["index_physical_reads"],
        "sweep_physical_reads": summary["sweep_physical_reads"],
        "sql_one_statement": int(summary["sql_one_statement"]),
        "sql_plans_clean": int(summary["sql_plans_clean"]),
    }


def _join_crossover_metrics(report: dict) -> dict:
    summary = report["summary"]
    measured_index = sum(
        r["measured"]["index-nested-loop"]["physical_reads"] for r in report["rows"]
    )
    measured_sweep = sum(
        r["measured"]["sweep"]["physical_reads"] for r in report["rows"]
    )
    return {
        "grid_points": summary["grid_points"],
        "correct_choices": summary["correct_choices"],
        "auto_accuracy": round(summary["auto_accuracy"], 3),
        "index_physical_reads": measured_index,
        "sweep_physical_reads": measured_sweep,
    }


def _hint_metrics(report: dict) -> dict:
    summary = report["summary"]
    return {
        "results_total": summary["results_total"],
        "parity_queries": summary["parity_queries"],
        "pairs": summary["pairs"],
        "worst_ops_ratio": round(summary["worst_ops_ratio"], 3),
        "count_worst_ops_ratio": round(summary["count_worst_ops_ratio"], 3),
    }


def _recovery_metrics(report: dict) -> dict:
    summary = report["summary"]
    return {
        "crash_points": summary["crash_points"],
        "recovered_clean": summary["recovered_clean"],
        "all_recovered": summary["all_recovered"],
        "replayed_ops": summary["replayed_ops"],
        "wal_writes": summary["wal_writes"],
        "wal_reads": summary["wal_reads"],
        "records": summary["records"],
    }


def _service_metrics(report: dict) -> dict:
    summary = report["summary"]
    metrics = {
        # Deterministic routing facts: seeded dataset + derived cuts.
        "parity_ok": int(summary["parity_ok"]),
        "parity_runs": summary["parity_runs"],
        "ops": summary["ops"],
        "records": summary["records"],
        "shards": summary["shards"],
        "replicas": summary["replicas"],
        "scaling_target_met": int(summary["scaling_target_met"]),
        # Wall-clock observations (INFO rule: recorded, never diffed).
        "throughput_c1_ops_s": round(summary["throughput_low"], 1),
        "throughput_cmax_ops_s": round(summary["throughput_high"], 1),
        "scaling_ratio": round(summary["scaling_ratio"], 3),
    }
    for cls, stats in sorted(report["latency"].items()):
        metrics[f"{cls}_p50_ms"] = stats["p50_ms"]
        metrics[f"{cls}_p99_ms"] = stats["p99_ms"]
    return metrics


def _ingest_metrics(report: dict) -> dict:
    summary = report["summary"]
    return {
        # Deterministic: seeded streams, counted flushes/closes, crash
        # points from the injector's write-point axis.
        "parity_ok": int(summary["parity_ok"]),
        "parity_checks": summary["parity_checks"],
        "records": summary["records"],
        "flushes": summary["flushes"],
        "closes": summary["closes"],
        "checkpoints": summary["checkpoints"],
        "wal_force_batches": summary["wal_force_batches"],
        "wal_force_per_batch_ok": int(summary["wal_force_per_batch_ok"]),
        "crash_points": summary["crash_points"],
        "recovered_clean": summary["recovered_clean"],
        "all_recovered": int(summary["all_recovered"]),
        "serving_parity_ok": int(summary["serving_parity_ok"]),
        # Wall-clock observations (INFO rule: recorded, never diffed).
        "ingest_ops_s": round(summary["ingest_ops_s"], 1),
        "reader_ops_s": round(summary["reader_ops_s"], 1),
    }


#: Benchmark name -> metrics extractor over its JSON report.
BENCH_EXTRACTORS: dict[str, Callable[[dict], dict]] = {
    "scan-throughput": _scan_throughput_metrics,
    "interval-join": _interval_join_metrics,
    "join-crossover": _join_crossover_metrics,
    "sql-join": _sql_join_metrics,
    "predicate-join": _predicate_join_metrics,
    "range-duration": _range_duration_metrics,
    "recovery": _recovery_metrics,
    "hint": _hint_metrics,
    "service": _service_metrics,
    "ingest": _ingest_metrics,
}


def extract_metrics(bench: str, report: dict) -> dict:
    """Deterministic metrics of one benchmark report."""
    try:
        extractor = BENCH_EXTRACTORS[bench]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {bench!r}; expected one of "
            f"{sorted(BENCH_EXTRACTORS)}"
        ) from None
    return extractor(report)


def merge_reports(named_reports: dict[str, dict], git_sha: str = "unknown") -> dict:
    """Merge benchmark reports into the BENCH_PR row schema."""
    rows = []
    for bench, report in sorted(named_reports.items()):
        rows.append(
            {
                "bench": bench,
                "scale": report.get("scale", "unknown"),
                "metrics": extract_metrics(bench, report),
                "git_sha": git_sha,
            }
        )
    return {"schema": "bench-trajectory/v1", "git_sha": git_sha, "rows": rows}


def strip_baseline(merged: dict) -> dict:
    """The committable form of a merged report: rows minus the sha."""
    return {
        "schema": merged["schema"],
        "rows": [
            {"bench": r["bench"], "scale": r["scale"], "metrics": r["metrics"]}
            for r in merged["rows"]
        ],
    }


def compare_to_baseline(merged: dict, baseline: dict) -> list[dict]:
    """Per-metric deltas of a merged report against a committed baseline.

    Returns one dict per comparison: ``bench``, ``scale``, ``metric``,
    ``baseline``, ``current``, ``status`` (``ok`` / ``regression`` /
    ``new`` / ``missing``).  Baseline rows are matched on
    ``(bench, scale)``; benches without a baseline row pass with a
    ``new`` marker so freshly added benchmarks do not need a same-PR
    baseline to land.  The converse is a failure: a baseline row with no
    matching merged row means a benchmark vanished from the pipeline
    (dropped report, renamed bench), which must not pass silently.
    """
    base_rows = {
        (r["bench"], r["scale"]): r["metrics"] for r in baseline.get("rows", [])
    }
    merged_keys = {(r["bench"], r["scale"]) for r in merged["rows"]}
    deltas: list[dict] = []
    for (bench, scale), metrics in base_rows.items():
        if (bench, scale) not in merged_keys:
            deltas.append(
                {
                    "bench": bench,
                    "scale": scale,
                    "metric": "*",
                    "baseline": len(metrics),
                    "current": None,
                    "status": "missing",
                }
            )
    for row in merged["rows"]:
        key = (row["bench"], row["scale"])
        base_metrics = base_rows.get(key)
        if base_metrics is None:
            deltas.append(
                {
                    "bench": row["bench"],
                    "scale": row["scale"],
                    "metric": "*",
                    "baseline": None,
                    "current": None,
                    "status": "new",
                }
            )
            continue
        for metric, current in sorted(row["metrics"].items()):
            recorded = base_metrics.get(metric)
            entry = {
                "bench": row["bench"],
                "scale": row["scale"],
                "metric": metric,
                "baseline": recorded,
                "current": current,
            }
            rule = metric_rule(metric)
            if recorded is None:
                entry["status"] = "new"
            elif rule == INFO:
                entry["status"] = "ok"
            elif rule == AT_LEAST:
                entry["status"] = (
                    "ok" if current >= recorded - AT_LEAST_SLACK else "regression"
                )
            else:
                entry["status"] = "ok" if current == recorded else "regression"
            deltas.append(entry)
        for metric in sorted(set(base_metrics) - set(row["metrics"])):
            deltas.append(
                {
                    "bench": row["bench"],
                    "scale": row["scale"],
                    "metric": metric,
                    "baseline": base_metrics[metric],
                    "current": None,
                    "status": "missing",
                }
            )
    return deltas


def regressions(deltas: Iterable[dict]) -> list[dict]:
    """The failing subset: regressed or vanished metrics."""
    return [d for d in deltas if d["status"] in ("regression", "missing")]


def render_delta_table(deltas: list[dict]) -> str:
    """Markdown-style delta table, readable straight from the CI log."""
    headers = ["bench", "scale", "metric", "baseline", "current", "status"]
    body = [
        [
            str(d["bench"]),
            str(d["scale"]),
            str(d["metric"]),
            _fmt(d["baseline"]),
            _fmt(d["current"]),
            d["status"],
        ]
        for d in deltas
    ]
    widths = [
        max(len(h), *(len(r[i]) for r in body)) if body else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        " | ".join("-" * w for w in widths),
    ]
    lines.extend(" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in body)
    return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
