"""Blocking service clients: the raw RPC client and the store adapter.

:class:`ServiceClient` speaks one frame request/response at a time over
a TCP connection, thread-safe behind a lock -- concurrent callers
serialise per connection, and the GIL is released during the socket
round trip, which is exactly what lets a router process drive many
shard processes from a thread pool.

:class:`RemoteStore` adapts a served store back into the
:class:`~repro.core.access.IntervalStore` contract: every method is one
RPC (bulk loads chunked), contract exceptions round-trip by type, and
temporal entry points appear *only when the remote backend has them* --
``hasattr(remote, "insert_infinite")`` answers like the local store
would, so :class:`~repro.core.router.ShardedStore` can front remote
shards with unchanged temporal guards.
"""

from __future__ import annotations

import socket
import threading
from types import MethodType
from typing import Iterable, Optional, Sequence

from ..core.access import IntervalRecord, IntervalStore
from ..core.temporal import resolve_clock_argument
from ..core.verify import VerificationReport
from .protocol import (
    ProtocolError,
    ServiceError,
    raise_for_response,
    read_frame,
    write_frame,
)

#: Records per bulk_load frame -- keeps frames around a megabyte.
BULK_CHUNK = 20_000


def _wire_predicate(predicate) -> dict:
    """A predicate's wire form: ``predicate`` name plus family params.

    Classic relations travel by name; a compiled query family
    (:class:`~repro.core.predicates.CompiledQuery`) travels as its
    ``family_name`` with the parameter bundle in a ``params`` field, so
    the server can rebuild the compiled predicate with
    :func:`~repro.core.predicates.compile_query`.
    """
    family = getattr(predicate, "family_name", "")
    if family:
        return {"predicate": family,
                "params": dict(getattr(predicate, "param_dict", {}))}
    return {"predicate": getattr(predicate, "name", predicate)}


class ServiceClient:
    """One connection to an interval service; thread-safe call()."""

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = None) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._writer = self._sock.makefile("wb")
        self._lock = threading.Lock()
        self._next_id = 0

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    def call(self, op: str, **params):
        """One request/response round trip; raises remote errors."""
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            write_frame(self._writer, {"id": request_id, "op": op, **params})
            response = read_frame(self._reader)
        if response is None:
            raise ServiceError(f"server closed the connection during {op!r}")
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}")
        return raise_for_response(response)

    def close(self) -> None:
        for stream in (self._writer, self._reader):
            try:
                stream.close()
            except OSError:
                pass
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# Temporal forwards, attached through __getattr__ so that a RemoteStore
# over a non-temporal backend fails hasattr() like the local store does.
def _rpc_insert_infinite(self, lower: int, interval_id: int) -> None:
    self.call("insert_infinite", lower=lower, interval_id=interval_id)


def _rpc_insert_until_now(self, lower: int, interval_id: int) -> None:
    self.call("insert_until_now", lower=lower, interval_id=interval_id)


def _rpc_delete_infinite(self, lower: int, interval_id: int) -> None:
    self.call("delete_infinite", lower=lower, interval_id=interval_id)


def _rpc_delete_until_now(self, lower: int, interval_id: int) -> None:
    self.call("delete_until_now", lower=lower, interval_id=interval_id)


def _rpc_close_now_interval(self, lower: int, interval_id: int,
                            upper: int) -> None:
    self.call("close_now_interval", lower=lower, interval_id=interval_id, upper=upper)


def _rpc_advance_to(self, now: Optional[int] = None, *,
                    timestamp: Optional[int] = None) -> None:
    self.call("advance_to", now=resolve_clock_argument(now, timestamp))


_TEMPORAL_FORWARDS = {
    "insert_infinite": _rpc_insert_infinite,
    "insert_until_now": _rpc_insert_until_now,
    "delete_infinite": _rpc_delete_infinite,
    "delete_until_now": _rpc_delete_until_now,
    "close_now_interval": _rpc_close_now_interval,
    "advance_to": _rpc_advance_to,
}


class RemoteStore(IntervalStore):
    """A served store, driven through the ``IntervalStore`` contract."""

    def __init__(self, client: ServiceClient) -> None:
        self._client = client
        info = client.call("info")
        self.method_name = f"remote({info['method_name']})"
        self._temporal = bool(info["temporal"])

    @classmethod
    def connect(cls, host: str, port: int,
                timeout: Optional[float] = None) -> "RemoteStore":
        return cls(ServiceClient(host, port, timeout=timeout))

    @property
    def address(self) -> tuple[str, int]:
        """The served store's ``(host, port)`` -- the relay's target."""
        return self._client.address

    def call(self, op: str, **params):
        return self._client.call(op, **params)

    def __getattr__(self, name: str):
        forward = _TEMPORAL_FORWARDS.get(name)
        if forward is not None and self.__dict__.get("_temporal"):
            return MethodType(forward, self)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        self.call("insert", lower=lower, upper=upper, interval_id=interval_id)

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        self.call("delete", lower=lower, upper=upper, interval_id=interval_id)

    def bulk_load(self, intervals: Sequence[IntervalRecord]) -> None:
        intervals = list(intervals)
        for start in range(0, len(intervals), BULK_CHUNK):
            self.call("bulk_load",
                      records=intervals[start:start + BULK_CHUNK])

    def append_batch(self, intervals: Sequence[IntervalRecord]) -> None:
        """Forward a streaming append batch as ``ingest_batch`` frames.

        Each frame is one writer-lock acquisition (and one group commit
        on WAL-backed backends) server-side; oversized batches chunk at
        the same frame bound as :meth:`bulk_load`.
        """
        intervals = list(intervals)
        for start in range(0, len(intervals), BULK_CHUNK):
            self.call("ingest_batch",
                      records=intervals[start:start + BULK_CHUNK])

    def extend(self, intervals: Iterable[IntervalRecord]) -> None:
        self.bulk_load(list(intervals))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def intersection(self, lower: int, upper: int) -> list[int]:
        return self.call("intersection", lower=lower, upper=upper)

    def intersection_count(self, lower: int, upper: int) -> int:
        return self.call("intersection_count", lower=lower, upper=upper)

    def intersection_many(
        self, queries: Sequence[tuple[int, int]]
    ) -> list[list[int]]:
        return self.call("intersection_many", queries=list(queries))

    def stab(self, point: int) -> list[int]:
        return self.call("stab", value=point)

    def query(self, lower, upper=None, *, predicate="intersects"):
        return self.call("query", lower=lower, upper=upper,
                         **_wire_predicate(predicate))

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def join_pairs(self, probes: Sequence[IntervalRecord], *,
                   predicate=None) -> list[tuple[int, int]]:
        pairs = self.call("join_pairs", probes=list(probes),
                          **_wire_predicate(predicate))
        return [(probe_id, interval_id) for probe_id, interval_id in pairs]

    def join_count(self, probes: Sequence[IntervalRecord], *,
                   predicate=None) -> int:
        return self.call("join_count", probes=list(probes),
                         **_wire_predicate(predicate))

    # ------------------------------------------------------------------
    # enumeration / verification / accounting
    # ------------------------------------------------------------------
    def stored_records(self) -> list[IntervalRecord]:
        return [(lower, upper, interval_id)
                for lower, upper, interval_id in self.call("stored_records")]

    def verify(self) -> VerificationReport:
        """The *served* store's own verification, rebuilt client-side."""
        data = self.call("verify")
        report = VerificationReport(
            store=data["store"], backend=data["backend"])
        for check in data["checks"]:
            report.add_check(check)
        for issue in data["issues"]:
            report.add_issue(issue["code"], issue["message"],
                             issue.get("context"))
        return report

    @property
    def interval_count(self) -> int:
        return self.call("info")["records"]

    @property
    def index_entry_count(self) -> int:
        return self.call("info")["index_entries"]

    # ------------------------------------------------------------------
    # service lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return self.call("stats")

    def shutdown(self) -> None:
        """Ask the server to stop, then drop the connection."""
        try:
            self.call("shutdown")
        finally:
            self.close()

    def close(self) -> None:
        self._client.close()
