"""Wire protocol of the interval query service: length-prefixed JSON.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON -- the simplest self-delimiting framing that both
:mod:`asyncio` streams (the server, the load driver) and blocking
sockets (the router's shard proxies) can speak without a parser state
machine.  Requests and responses are JSON objects:

* request: ``{"id": <int>, "op": <str>, ...params}`` -- ``id`` is a
  client-chosen correlation token echoed back verbatim, so a client may
  pipeline many requests over one connection;
* success: ``{"id": <int>, "ok": true, "result": <value>}``;
* failure: ``{"id": <int>, "ok": false, "error": <message>,
  "error_type": <exception class name>}``.

The failure's ``error_type`` round-trips the store-contract exceptions
(:class:`KeyError` from a fuzzy delete, :class:`ValueError` from a
malformed interval, ...) so a remote store misbehaves exactly like a
local one; unknown types surface as :class:`ServiceError`.

Integer bounds pass through JSON unmodified -- Python's ``json`` keeps
arbitrary-precision integers, so the temporal sentinels
:data:`~repro.core.temporal.UPPER_INF` / ``UPPER_NOW`` (``2**60``-sized)
survive the wire bit for bit.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO, Optional

#: Frame header: one unsigned 32-bit big-endian payload length.
HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload -- a malformed or hostile header
#: must not allocate unbounded memory.  Bulk loads chunk under this.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Exception types allowed to round-trip the wire by name.  Anything
#: else degrades to :class:`ServiceError` -- the protocol restores the
#: *store contract's* error surface, not arbitrary exceptions.
ERROR_TYPES = {
    "KeyError": KeyError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "NotImplementedError": NotImplementedError,
}


class ServiceError(RuntimeError):
    """A service-side failure with no contract-level exception type."""


class ProtocolError(RuntimeError):
    """A malformed frame (bad header, oversized payload, non-JSON)."""


def encode_frame(message: dict) -> bytes:
    """One wire frame: header plus compact JSON payload."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit")
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse one frame payload back into a message object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(message).__name__}")
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header announces {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte frame limit")


async def read_raw_frame_async(reader) -> Optional[bytes]:
    """Read one frame's payload bytes from an :class:`asyncio.
    StreamReader` without decoding them (the router's byte-relay path).

    Returns ``None`` on a clean end of stream (the peer closed between
    frames); raises :class:`ProtocolError` on a truncated or oversized
    frame.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = HEADER.unpack(header)
    _check_length(length)
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc


async def read_frame_async(reader) -> Optional[dict]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on a clean end of stream (the peer closed between
    frames); raises :class:`ProtocolError` on a truncated or malformed
    frame.
    """
    payload = await read_raw_frame_async(reader)
    return None if payload is None else decode_payload(payload)


async def write_frame_async(writer, message: dict) -> None:
    """Write one frame to an :class:`asyncio.StreamWriter` and drain."""
    writer.write(encode_frame(message))
    await writer.drain()


def read_frame(stream: BinaryIO) -> Optional[dict]:
    """Blocking :func:`read_frame_async`: reads from a binary file-like
    (``socket.makefile("rb")``)."""
    header = stream.read(HEADER.size)
    if not header:
        return None
    if len(header) < HEADER.size:
        raise ProtocolError("connection closed mid-header")
    (length,) = HEADER.unpack(header)
    _check_length(length)
    payload = b""
    while len(payload) < length:
        chunk = stream.read(length - len(payload))
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        payload += chunk
    return decode_payload(payload)


def write_frame(stream: BinaryIO, message: dict) -> None:
    """Blocking :func:`write_frame_async` onto a writable binary stream."""
    stream.write(encode_frame(message))
    stream.flush()


def error_response(request_id, exc: BaseException) -> dict:
    """The failure frame for ``exc``, typed for client-side re-raise."""
    return {
        "id": request_id,
        "ok": False,
        "error": str(exc) or type(exc).__name__,
        "error_type": type(exc).__name__,
    }


def raise_for_response(response: dict):
    """Return a success frame's result; re-raise a failure frame.

    The contract exceptions listed in :data:`ERROR_TYPES` come back as
    themselves (a remote ``delete`` of an absent record raises
    :class:`KeyError`, like a local store); everything else raises
    :class:`ServiceError` carrying the remote type name.
    """
    if response.get("ok"):
        return response.get("result")
    error_type = response.get("error_type", "")
    message = response.get("error", "remote error")
    exc_class = ERROR_TYPES.get(error_type)
    if exc_class is not None:
        raise exc_class(message)
    raise ServiceError(f"{error_type or 'remote error'}: {message}")
