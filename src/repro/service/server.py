"""The asyncio interval query service.

:class:`IntervalService` fronts any :class:`~repro.core.access.
IntervalStore` with the frame protocol of :mod:`repro.service.protocol`,
exposing the full query surface -- updates, stabs and intersections,
Allen-predicate ``query``, ``join_count``/``join_pairs``, the temporal
``now`` entry points -- plus ``stats`` (request counters, latency
histograms, and the router's shard routing stats) and a cooperative
``shutdown``.

Store calls run under a readers-writer lock: queries share the store,
mutations get it exclusively.  Writes always go through a thread pool;
reads take an inline fast path on the event loop when the lock is
uncontended (``inline_reads``, the single-backend role) and fall back
to the pool under write pressure, so one slow mutation never stalls
frame handling.

Topology (the ``python -m repro.service`` CLI)
----------------------------------------------
* ``--shards 1`` (default) serves one backend built by
  :func:`~repro.core.stores.create_store` -- this is also the *shard
  server* role.
* ``--shards K`` spawns ``K`` shard-server subprocesses and serves a
  :class:`~repro.core.router.ShardedStore` whose shards are
  :class:`~repro.service.client.RemoteStore` proxies, cut points derived
  from the dataset's :class:`~repro.core.costmodel.BoundSummary`
  histogram.  All routing, replication and first-occurrence
  deduplication logic is the router's own -- the service adds processes,
  not semantics.  Each shard process evaluates on its own interpreter
  (its own GIL), so concurrent requests scale across cores; the proxies
  release the GIL during socket waits, which is what lets one router
  process keep ``K`` shard processes busy.  Single-shard reads (stabs,
  and intersections whose window fits one slice) additionally skip the
  proxies: the router relays the raw request frame to the owning shard
  server and streams the response frame back byte for byte (see
  :meth:`IntervalService._fast_shard` for why that is exact), still
  under the service read lock, so relayed reads observe every completed
  router-level write.

Either role prints ``LISTENING <host> <port>`` on stdout once bound, so
supervisors (the load driver, the bench harness, tests) can spawn on
port 0 and discover the ephemeral port.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Optional, Sequence

from ..core.access import IntervalStore
from ..core.predicates import compile_query
from .protocol import (
    HEADER,
    ProtocolError,
    _check_length,
    decode_payload,
    error_response,
    read_raw_frame_async,
    write_frame_async,
)

#: Default worker-thread count: enough that a deep client pipeline keeps
#: every shard busy; idle threads cost almost nothing.
DEFAULT_WORKERS = 16


class _ReadWriteLock:
    """Readers share, writers exclude, waiting writers block new readers
    (no writer starvation under a steady query stream)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._waiting_writers:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            self.release_read()

    def try_read(self) -> bool:
        """Non-blocking read acquisition (the inline fast path)."""
        with self._cond:
            if self._writer or self._waiting_writers:
                return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._waiting_writers += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._waiting_writers -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class _ShardRelay:
    """Per-client-connection raw-frame links to the shard servers.

    The router's fast path for single-shard reads: the client's frame
    is forwarded verbatim to the owning shard server (same correlation
    id, so no re-framing) and the shard's response frame is relayed
    byte for byte -- the result payload is never JSON-decoded in the
    router process.  One lazily-opened connection per shard per client
    connection; frames on it are strictly request/response (the client
    handler is sequential), so no multiplexing is needed.
    """

    def __init__(self, targets: Sequence[tuple[str, int]]) -> None:
        self._targets = targets
        self._links: dict[int, tuple] = {}

    async def forward(self, shard: int, payload: bytes) -> bytes:
        link = self._links.get(shard)
        if link is None:
            host, port = self._targets[shard]
            link = await asyncio.open_connection(host, port)
            self._links[shard] = link
        reader, writer = link
        try:
            writer.write(HEADER.pack(len(payload)) + payload)
            await writer.drain()
            header = await reader.readexactly(HEADER.size)
            (length,) = HEADER.unpack(header)
            _check_length(length)
            return header + await reader.readexactly(length)
        except (OSError, asyncio.IncompleteReadError):
            # A broken link must not be reused; the caller retries the
            # request on the slow path through the store's own proxies.
            self._links.pop(shard, None)
            writer.close()
            raise

    async def close(self) -> None:
        for _, writer in self._links.values():
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self._links.clear()


class ServiceStats:
    """Per-op request counters and log2 latency histograms.

    Latencies land in power-of-two microsecond buckets (bucket ``b``
    holds requests under ``2**b`` microseconds), cheap enough to record
    on every request and faithful enough for the ``stats`` op's service
    picture; exact client-side percentiles come from the load driver.
    Counters are best-effort under concurrent readers (increments may
    race); they are observability, not accounting.
    """

    def __init__(self) -> None:
        self.started = time.time()
        self.connections_total = 0
        self.connections_active = 0
        self._ops: dict[str, dict] = {}

    def record(self, op: str, elapsed: float, ok: bool) -> None:
        entry = self._ops.get(op)
        if entry is None:
            entry = self._ops[op] = {
                "count": 0, "errors": 0, "total_us": 0, "histogram": {}}
        entry["count"] += 1
        if not ok:
            entry["errors"] += 1
        micros = int(elapsed * 1e6)
        entry["total_us"] += micros
        bucket = micros.bit_length()
        histogram = entry["histogram"]
        histogram[bucket] = histogram.get(bucket, 0) + 1

    def snapshot(self) -> dict:
        return {
            "uptime_s": round(time.time() - self.started, 3),
            "connections": {
                "total": self.connections_total,
                "active": self.connections_active,
            },
            "ops": {
                op: {
                    "count": e["count"],
                    "errors": e["errors"],
                    "total_us": e["total_us"],
                    "histogram_le_2e_us": {
                        str(b): n for b, n in sorted(e["histogram"].items())
                    },
                }
                for op, e in sorted(self._ops.items())
            },
        }


def _need(params: dict, *keys: str):
    """Required request fields; a missing one is a contract ValueError."""
    try:
        return [params[key] for key in keys]
    except KeyError as exc:
        raise ValueError(f"request is missing field {exc.args[0]!r}") from None


def _records(value) -> list[tuple[int, int, int]]:
    return [(int(lo), int(up), int(rid)) for lo, up, rid in value]


def _temporal(store: IntervalStore, op: str) -> Callable:
    fn = getattr(store, op, None)
    if fn is None:
        raise NotImplementedError(
            f"backend {store.method_name!r} has no temporal support ({op})")
    return fn


# ----------------------------------------------------------------------
# op table: name -> (mutates_store, handler(store, params))
# ----------------------------------------------------------------------
def _op_insert(store, p):
    lower, upper, rid = _need(p, "lower", "upper", "interval_id")
    store.insert(lower, upper, rid)


def _op_delete(store, p):
    lower, upper, rid = _need(p, "lower", "upper", "interval_id")
    store.delete(lower, upper, rid)


def _op_bulk_load(store, p):
    store.bulk_load(_records(_need(p, "records")[0]))


def _op_ingest_batch(store, p):
    store.append_batch(_records(_need(p, "records")[0]))


def _op_insert_infinite(store, p):
    lower, rid = _need(p, "lower", "interval_id")
    _temporal(store, "insert_infinite")(lower, rid)


def _op_insert_until_now(store, p):
    lower, rid = _need(p, "lower", "interval_id")
    _temporal(store, "insert_until_now")(lower, rid)


def _op_delete_infinite(store, p):
    lower, rid = _need(p, "lower", "interval_id")
    _temporal(store, "delete_infinite")(lower, rid)


def _op_delete_until_now(store, p):
    lower, rid = _need(p, "lower", "interval_id")
    _temporal(store, "delete_until_now")(lower, rid)


def _op_close_now_interval(store, p):
    lower, rid, upper = _need(p, "lower", "interval_id", "upper")
    _temporal(store, "close_now_interval")(lower, rid, upper)


def _op_advance_to(store, p):
    _temporal(store, "advance_to")(_need(p, "now")[0])


def _op_stab(store, p):
    return store.stab(_need(p, "value")[0])


def _op_intersection(store, p):
    lower, upper = _need(p, "lower", "upper")
    return store.intersection(lower, upper)


def _op_intersection_count(store, p):
    lower, upper = _need(p, "lower", "upper")
    return store.intersection_count(lower, upper)


def _op_intersection_many(store, p):
    queries = [(int(lo), int(up)) for lo, up in _need(p, "queries")[0]]
    return store.intersection_many(queries)


def _wire_predicate(p, default):
    """Rebuild the request's predicate: a name, or family + params."""
    predicate = p.get("predicate", default)
    params = p.get("params")
    if predicate is None or not params:
        return predicate
    return compile_query(predicate, params)


def _op_query(store, p):
    lower = _need(p, "lower")[0]
    return store.query(lower, p.get("upper"),
                       predicate=_wire_predicate(p, "intersects"))


def _op_join_pairs(store, p):
    return store.join_pairs(_records(_need(p, "probes")[0]),
                            predicate=_wire_predicate(p, None))


def _op_join_count(store, p):
    return store.join_count(_records(_need(p, "probes")[0]),
                            predicate=_wire_predicate(p, None))


def _op_stored_records(store, p):
    return store.stored_records()


def _op_verify(store, p):
    return store.verify().as_dict()


def _op_info(store, p):
    return {
        "method_name": store.method_name,
        "records": store.interval_count,
        "index_entries": store.index_entry_count,
        "now": getattr(store, "now", None),
        "temporal": hasattr(store, "insert_infinite"),
    }


#: Op name -> (mutates store, handler).  ``ping``/``stats``/``shutdown``
#: are service-level and handled outside this table.
OPS: dict[str, tuple[bool, Callable]] = {
    "insert": (True, _op_insert),
    "delete": (True, _op_delete),
    "bulk_load": (True, _op_bulk_load),
    "ingest_batch": (True, _op_ingest_batch),
    "insert_infinite": (True, _op_insert_infinite),
    "insert_until_now": (True, _op_insert_until_now),
    "delete_infinite": (True, _op_delete_infinite),
    "delete_until_now": (True, _op_delete_until_now),
    "close_now_interval": (True, _op_close_now_interval),
    "advance_to": (True, _op_advance_to),
    "stab": (False, _op_stab),
    "intersection": (False, _op_intersection),
    "intersection_count": (False, _op_intersection_count),
    "intersection_many": (False, _op_intersection_many),
    "query": (False, _op_query),
    "join_pairs": (False, _op_join_pairs),
    "join_count": (False, _op_join_count),
    "stored_records": (False, _op_stored_records),
    "verify": (False, _op_verify),
    "info": (False, _op_info),
}


class IntervalService:
    """One served store: frame handling, dispatch, stats, lifecycle."""

    def __init__(self, store: IntervalStore,
                 max_workers: int = DEFAULT_WORKERS,
                 inline_reads: bool = True,
                 relay_targets: Optional[Sequence[tuple[str, int]]] = None,
                 ) -> None:
        self.store = store
        self.stats = ServiceStats()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="store")
        self._lock = _ReadWriteLock()
        # Read ops may run directly on the event loop (store calls are
        # non-blocking and the shard is one unit of capacity anyway),
        # saving two thread handoffs per request.  Must be OFF when the
        # store itself does socket I/O -- the router over RemoteStore
        # shards -- or the loop would block on remote round trips.
        self._inline_reads = inline_reads
        # Router role only: shard-server addresses, index-aligned with
        # ``store.shards``, enabling the single-shard byte relay.
        self._relay_targets = (list(relay_targets)
                               if relay_targets is not None
                               and hasattr(store, "_shard_of") else None)
        self.shutdown_requested = asyncio.Event()

    async def handle_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        """One connection: sequential request/response frames."""
        self.stats.connections_total += 1
        self.stats.connections_active += 1
        relay = (_ShardRelay(self._relay_targets)
                 if self._relay_targets else None)
        try:
            while True:
                try:
                    payload = await read_raw_frame_async(reader)
                    message = (None if payload is None
                               else decode_payload(payload))
                except ProtocolError as exc:
                    await write_frame_async(writer, error_response(None, exc))
                    break
                if message is None:
                    break
                if relay is not None:
                    shard = self._fast_shard(message)
                    if shard is not None and await self._relay_request(
                            relay, shard, payload, message, writer):
                        if self.shutdown_requested.is_set():
                            break
                        continue
                await write_frame_async(writer, await self.dispatch(message))
                if self.shutdown_requested.is_set():
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.stats.connections_active -= 1
            if relay is not None:
                await relay.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _fast_shard(self, message: dict) -> Optional[int]:
        """Shard index when this request can be relayed verbatim.

        A stab or an intersection whose window lies inside one slice
        touches only that shard; the clip of such a window to the slice
        is the window itself, and the first (here: only) touched shard
        reports without replica stripping -- so the shard server's raw
        response frame *is* the router's answer, byte for byte.
        """
        op = message.get("op")
        if op == "stab":
            lower = upper = message.get("value")
        elif op in ("intersection", "intersection_count"):
            lower = message.get("lower")
            upper = message.get("upper")
        else:
            return None
        if not (isinstance(lower, int) and isinstance(upper, int)):
            return None
        if lower > upper:
            return None  # the slow path raises the contract ValueError
        shard = self.store._shard_of(lower)
        return shard if shard == self.store._shard_of(upper) else None

    async def _relay_request(self, relay: _ShardRelay, shard: int,
                             payload: bytes, message: dict,
                             writer: asyncio.StreamWriter) -> bool:
        """Try the byte relay; ``False`` falls back to the slow path.

        Holds the service read lock across the shard round trip, so
        relayed reads still exclude router-level mutations (a write in
        progress, or waiting, routes the request through the executor
        like any other).  The fast path records latency but not remote
        errors (the shard's error frame relays undecoded).
        """
        if not self._lock.try_read():
            return False
        started = time.perf_counter()
        try:
            response = await relay.forward(shard, payload)
        except (OSError, ProtocolError, asyncio.IncompleteReadError):
            return False
        finally:
            self._lock.release_read()
        writer.write(response)
        await writer.drain()
        self.store._stat_queries[shard] += 1
        self.stats.record(
            str(message.get("op")), time.perf_counter() - started, True)
        return True

    async def dispatch(self, message: dict) -> dict:
        """Route one request message to its handler; never raises."""
        op = message.get("op")
        request_id = message.get("id")
        started = time.perf_counter()
        ok = True
        try:
            if op == "ping":
                result = "pong"
            elif op == "stats":
                result = self._stats_result()
            elif op == "shutdown":
                self.shutdown_requested.set()
                result = True
            else:
                spec = OPS.get(op)
                if spec is None:
                    raise ValueError(
                        f"unknown op {op!r}; expected one of "
                        f"{sorted(OPS) + ['ping', 'stats', 'shutdown']}")
                writes, handler = spec
                if (not writes and self._inline_reads
                        and self._lock.try_read()):
                    try:
                        result = handler(self.store, message)
                    finally:
                        self._lock.release_read()
                else:
                    result = await asyncio.get_running_loop() \
                        .run_in_executor(self._pool, self._execute,
                                         writes, handler, message)
            response = {"id": request_id, "ok": True, "result": result}
        except Exception as exc:  # noqa: BLE001 - every failure becomes a frame
            ok = False
            response = error_response(request_id, exc)
        self.stats.record(str(op), time.perf_counter() - started, ok)
        return response

    def _execute(self, writes: bool, handler: Callable, params: dict):
        guard = self._lock.write if writes else self._lock.read
        with guard():
            return handler(self.store, params)

    def _stats_result(self) -> dict:
        result = self.stats.snapshot()
        result["store"] = {
            "method_name": self.store.method_name,
            "records": self.store.interval_count,
        }
        routing = getattr(self.store, "routing_stats", None)
        result["routing"] = routing() if callable(routing) else None
        return result

    def close(self) -> None:
        self._pool.shutdown(wait=False)


# ----------------------------------------------------------------------
# CLI: shard server / router server
# ----------------------------------------------------------------------
def load_dataset(path: str) -> tuple[list[tuple[int, int, int]], int]:
    """Read a dataset file: ``{"records": [[l, u, id], ...], "now": N}``."""
    data = json.loads(Path(path).read_text())
    return _records(data.get("records", [])), int(data.get("now", 0))


def _build_single(args, records: Sequence[tuple[int, int, int]],
                  now: int):
    from ..core.stores import create_store

    store = create_store(args.backend, **json.loads(args.backend_opts))
    if now:
        _temporal(store, "advance_to")(now)
    if records:
        store.bulk_load(records)
    return store, lambda: None


def _build_router(args, records: Sequence[tuple[int, int, int]],
                  now: int):
    import subprocess

    from ..core.costmodel import BoundSummary
    from ..core.router import ShardedStore, derive_cuts
    from .client import RemoteStore

    if args.cuts:
        cuts = [int(c) for c in args.cuts.split(",")]
    elif records:
        cuts = derive_cuts(
            BoundSummary.from_records(records, buckets=64), args.shards)
    else:
        raise SystemExit(
            "--shards > 1 needs --dataset (to derive cuts) or --cuts")
    procs: list[subprocess.Popen] = []
    proxies: list[RemoteStore] = []

    def cleanup() -> None:
        for proxy in proxies:
            try:
                proxy.shutdown()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()

    try:
        for _ in range(len(cuts) + 1):
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro.service",
                 "--host", args.host, "--port", "0",
                 "--backend", args.backend,
                 "--backend-opts", args.backend_opts,
                 "--workers", "4"],
                stdout=subprocess.PIPE, text=True))
        for proc in procs:
            line = proc.stdout.readline().strip()
            if not line.startswith("LISTENING "):
                raise SystemExit(f"shard server failed to start: {line!r}")
            _, host, port = line.split()
            proxies.append(RemoteStore.connect(host, int(port)))
        router = ShardedStore(proxies, cuts)
        if now:
            router.advance_to(now)
        if records:
            router.bulk_load(records)
    except BaseException:
        cleanup()
        for proc in procs:
            proc.kill()
        raise
    return router, cleanup


async def _serve(args) -> int:
    records, dataset_now = ([], 0)
    if args.dataset:
        records, dataset_now = load_dataset(args.dataset)
    now = args.now if args.now is not None else dataset_now
    build = _build_router if args.shards > 1 else _build_single
    store, cleanup = build(args, records, now)
    relay_targets = ([shard.address for shard in store.shards]
                     if args.shards > 1 else None)
    service = IntervalService(store, max_workers=args.workers,
                              inline_reads=args.shards == 1,
                              relay_targets=relay_targets)
    server = await asyncio.start_server(
        service.handle_client, args.host, args.port)
    host, port = server.sockets[0].getsockname()[:2]
    print(f"LISTENING {host} {port}", flush=True)
    try:
        await service.shutdown_requested.wait()
    finally:
        server.close()
        await server.wait_closed()
        service.close()
        cleanup()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve an interval store over the frame protocol")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 binds an ephemeral port (printed on stdout)")
    parser.add_argument("--backend", default="hint",
                        help="registered backend name (see available_backends)")
    parser.add_argument("--backend-opts", default="{}",
                        help="JSON dict of factory options per shard")
    parser.add_argument("--shards", type=int, default=1,
                        help="> 1 spawns shard subprocesses behind a router")
    parser.add_argument("--cuts", default="",
                        help="comma-separated split points (default: derived "
                             "from the dataset histogram)")
    parser.add_argument("--dataset", default="",
                        help="JSON dataset to bulk-load before serving")
    parser.add_argument("--now", type=int, default=None,
                        help="initial clock (default: the dataset's)")
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
