"""Seeded load driver for the interval query service.

Three pieces, all deterministic under a seed so runs are replayable and
comparable across topologies:

* :func:`build_dataset` -- a mixed interval database: finite rows plus
  a configurable fraction of temporal rows (``[l, oo)`` and ``[l, now]``
  sentinels), the population the service bulk-loads at startup;
* :func:`build_ops` -- a mixed read workload over that population:
  stabs, intersection windows (id and count paths), Allen-predicate
  queries, join batches, and temporal ``now``-queries (windows around
  the shared clock, the ones ``[l, now]`` rows answer);
* :func:`run_load` -- the async driver: ``concurrency`` connections
  replay the op list against a running service, each op's client-side
  latency recorded per op class, results canonicalised for parity
  checks against a local oracle (:func:`evaluate_ops`).

Latency methodology: per-request wall time is measured client-side from
frame write to response decode on an otherwise idle connection (each
worker runs one request at a time), so percentiles include protocol and
scheduling cost -- what a caller of the service actually observes.
Throughput is completed ops over the whole driver window.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.access import IntervalRecord
from ..core.predicates import PREDICATES
from ..core.temporal import UPPER_INF, UPPER_NOW
from .protocol import raise_for_response, read_frame_async, write_frame_async

#: Allen relations drawn by the ``query`` op class (no intersects/stab:
#: those have dedicated classes exercising the native paths).
RELATION_NAMES = tuple(
    name for name in PREDICATES if name not in ("intersects", "stab"))

#: Op-class weights of the default mixed workload.
DEFAULT_MIX: dict[str, float] = {
    "stab": 0.20,
    "intersection": 0.25,
    "count": 0.15,
    "query": 0.15,
    "join_count": 0.08,
    "join_pairs": 0.07,
    "now": 0.10,
}


def build_dataset(
    seed: int,
    n: int,
    domain: int = 100_000,
    max_len: int = 2_000,
    temporal_fraction: float = 0.1,
    now: Optional[int] = None,
) -> tuple[list[IntervalRecord], int]:
    """A seeded interval database with temporal rows mixed in.

    Returns ``(records, now)``: finite rows uniform over the domain,
    plus ``temporal_fraction`` of the population split between
    ``[l, oo)`` rows (sentinel :data:`UPPER_INF`) and ``[l, now]`` rows
    (sentinel :data:`UPPER_NOW`, lowers at or before the clock).
    """
    if now is None:
        now = domain // 2
    rng = random.Random(seed)
    temporal_n = int(n * temporal_fraction)
    records: list[IntervalRecord] = []
    for interval_id in range(1, n - temporal_n + 1):
        lower = rng.randint(0, domain)
        records.append((lower, lower + rng.randint(0, max_len), interval_id))
    for offset in range(temporal_n):
        interval_id = n - temporal_n + offset + 1
        if offset % 2:
            records.append((rng.randint(0, domain), UPPER_INF, interval_id))
        else:
            records.append((rng.randint(0, now), UPPER_NOW, interval_id))
    return records, now


def build_ops(
    seed: int,
    count: int,
    domain: int = 100_000,
    max_len: int = 2_000,
    now: Optional[int] = None,
    mix: Optional[dict[str, float]] = None,
) -> list[dict]:
    """A seeded mixed op list; each op carries its ``cls`` label."""
    if now is None:
        now = domain // 2
    mix = dict(DEFAULT_MIX if mix is None else mix)
    rng = random.Random(seed)
    classes = sorted(mix)
    weights = [mix[cls] for cls in classes]

    def window() -> tuple[int, int]:
        lower = rng.randint(0, domain)
        return lower, lower + rng.randint(0, 2 * max_len)

    ops: list[dict] = []
    for _ in range(count):
        cls = rng.choices(classes, weights)[0]
        if cls == "stab":
            op = {"op": "stab", "value": rng.randint(0, domain)}
        elif cls == "intersection":
            lower, upper = window()
            op = {"op": "intersection", "lower": lower, "upper": upper}
        elif cls == "count":
            lower, upper = window()
            op = {"op": "intersection_count", "lower": lower, "upper": upper}
        elif cls == "query":
            lower, upper = window()
            op = {"op": "query", "lower": lower, "upper": upper,
                  "predicate": rng.choice(RELATION_NAMES)}
        elif cls in ("join_count", "join_pairs"):
            probes = []
            for probe_id in range(1, rng.randint(3, 8) + 1):
                lower, upper = window()
                probes.append([lower, upper, probe_id])
            op = {"op": cls, "probes": probes}
        elif cls == "now":
            # A temporal now-query: a window straddling the clock, the
            # question the [l, now] rows exist to answer.
            delta = rng.randint(0, max_len)
            op = {"op": "intersection",
                  "lower": max(0, now - delta), "upper": now + delta}
        else:
            raise ValueError(f"unknown op class {cls!r}")
        op["cls"] = cls
        ops.append(op)
    return ops


def canonical(cls: str, result):
    """Order-free canonical form of one op result for parity checks."""
    if isinstance(result, int):
        return result
    if cls == "join_pairs":
        return sorted((probe_id, interval_id)
                      for probe_id, interval_id in result)
    return sorted(result)


def evaluate_ops(store, ops: Sequence[dict]) -> list:
    """Run the op list directly against a local store (the oracle)."""
    out = []
    for op in ops:
        kind = op["op"]
        if kind == "stab":
            result = store.stab(op["value"])
        elif kind == "intersection":
            result = store.intersection(op["lower"], op["upper"])
        elif kind == "intersection_count":
            result = store.intersection_count(op["lower"], op["upper"])
        elif kind == "query":
            result = store.query(op["lower"], op["upper"],
                                 predicate=op["predicate"])
        elif kind == "join_pairs":
            result = store.join_pairs(
                [tuple(probe) for probe in op["probes"]])
        elif kind == "join_count":
            result = store.join_count(
                [tuple(probe) for probe in op["probes"]])
        else:
            raise ValueError(f"oracle cannot evaluate op {kind!r}")
        out.append(canonical(op["cls"], result))
    return out


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample (q in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class ClassStats:
    """Latency aggregate of one op class in one load run."""

    count: int
    p50_ms: float
    p99_ms: float
    mean_ms: float

    def as_dict(self) -> dict:
        return {"count": self.count, "p50_ms": round(self.p50_ms, 3),
                "p99_ms": round(self.p99_ms, 3),
                "mean_ms": round(self.mean_ms, 3)}


@dataclass
class LoadResult:
    """One driver window: throughput plus per-class latency."""

    concurrency: int
    ops: int
    wall_s: float
    results: list = field(repr=False)
    classes: dict[str, ClassStats] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.ops / self.wall_s if self.wall_s else 0.0

    def as_dict(self) -> dict:
        return {
            "concurrency": self.concurrency,
            "ops": self.ops,
            "wall_s": round(self.wall_s, 4),
            "throughput_ops_s": round(self.throughput, 1),
            "classes": {cls: stats.as_dict()
                        for cls, stats in sorted(self.classes.items())},
        }


async def _worker(host: str, port: int, ops: Sequence[dict],
                  cursor, results: list, samples: list) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for index in cursor:
            if index >= len(ops):
                break
            op = ops[index]
            request = {key: value for key, value in op.items()
                       if key != "cls"}
            request["id"] = index
            started = time.perf_counter()
            await write_frame_async(writer, request)
            response = await read_frame_async(reader)
            elapsed = time.perf_counter() - started
            if response is None:
                raise ConnectionError("server closed during load run")
            # Raw result only -- canonicalisation happens after the
            # measured window, so parity bookkeeping is not billed to
            # the service's throughput.
            results[index] = raise_for_response(response)
            samples.append((op["cls"], elapsed))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_load_async(host: str, port: int, ops: Sequence[dict],
                         concurrency: int) -> LoadResult:
    """Replay ``ops`` over ``concurrency`` connections; see module doc."""
    import itertools

    cursor = itertools.count()
    results: list = [None] * len(ops)
    samples: list[tuple[str, float]] = []
    started = time.perf_counter()
    await asyncio.gather(*(
        _worker(host, port, ops, cursor, results, samples)
        for _ in range(concurrency)
    ))
    wall = time.perf_counter() - started
    results = [canonical(op["cls"], result)
               for op, result in zip(ops, results)]
    by_class: dict[str, list[float]] = {}
    for cls, elapsed in samples:
        by_class.setdefault(cls, []).append(elapsed * 1000)
    classes = {
        cls: ClassStats(
            count=len(lat),
            p50_ms=percentile(lat, 50),
            p99_ms=percentile(lat, 99),
            mean_ms=sum(lat) / len(lat),
        )
        for cls, lat in by_class.items()
    }
    return LoadResult(concurrency=concurrency, ops=len(ops), wall_s=wall,
                      results=results, classes=classes)


def run_load(host: str, port: int, ops: Sequence[dict],
             concurrency: int) -> LoadResult:
    """Synchronous wrapper around :func:`run_load_async`."""
    return asyncio.run(run_load_async(host, port, ops, concurrency))
