"""``python -m repro.service``: the service CLI entry point."""

from .server import main

if __name__ == "__main__":
    raise SystemExit(main())
