"""The interval query service: RI-tree stores behind a network front.

The serving layer the paper's Section 5 integration argument points at:
interval stores as an *operational service* rather than a library.  One
asyncio server (:mod:`~repro.service.server`) fronts any registered
backend -- most interestingly the domain-sharding router of
:mod:`repro.core.router`, whose shards may themselves be shard-server
subprocesses reached through :class:`~repro.service.client.RemoteStore`
proxies.  Framing is length-prefixed JSON
(:mod:`~repro.service.protocol`), and :mod:`~repro.service.loadgen`
replays seeded mixed workloads against a running service at configurable
concurrency, reporting throughput and per-op-class latency percentiles.

Start a four-shard service and drive it::

    PYTHONPATH=src python -m repro.service --shards 4 --dataset data.json
    # prints: LISTENING 127.0.0.1 <port>

See ``docs/serving.md`` for the protocol, the sharding/replication
rules, and the latency methodology; ``benchmarks/bench_service.py``
gates parity and concurrency scaling.
"""

from .client import RemoteStore, ServiceClient
from .protocol import (
    ProtocolError,
    ServiceError,
    encode_frame,
    read_frame,
    read_frame_async,
    write_frame,
    write_frame_async,
)
from .server import IntervalService

__all__ = [
    "IntervalService",
    "ProtocolError",
    "RemoteStore",
    "ServiceClient",
    "ServiceError",
    "encode_frame",
    "read_frame",
    "read_frame_async",
    "write_frame",
    "write_frame_async",
]
