"""Documentation lints: relative links resolve, benchmarks are listed.

Two checks keep ``docs/`` honest as the code moves:

* every relative markdown link in ``docs/*.md`` and ``README.md`` must
  point at a file or directory that exists (external ``http(s)``,
  ``mailto`` and pure ``#anchor`` links are skipped -- CI has no
  network, and anchors are a rendering concern);
* every benchmark script ``benchmarks/bench_*.py`` must be mentioned by
  name in ``docs/benchmarks.md``, so a new benchmark cannot land
  without its documentation row.

Run it locally or from CI as::

    PYTHONPATH=src python -m repro.docscheck [repo_root]

Exit status 0 means clean; 1 prints one line per problem.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` -- good enough for the hand-written docs here;
#: fenced code blocks are stripped before matching so example links in
#: code samples are not checked.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_EXTERNAL = ("http://", "https://", "mailto:")


def _doc_files(root: Path) -> list[Path]:
    files = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def check_links(root: Path) -> list[str]:
    """Broken relative links, one ``file: target`` line each."""
    problems = []
    for doc in _doc_files(root):
        text = _FENCE.sub("", doc.read_text())
        for target in _LINK.findall(text):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(root)}: broken link -> {target}"
                )
    return problems


def check_benchmarks_listed(root: Path) -> list[str]:
    """Benchmark scripts missing from ``docs/benchmarks.md``."""
    listing = root / "docs" / "benchmarks.md"
    if not listing.exists():
        return ["docs/benchmarks.md does not exist"]
    text = listing.read_text()
    problems = []
    for script in sorted((root / "benchmarks").glob("bench_*.py")):
        if script.name not in text:
            problems.append(
                f"docs/benchmarks.md: missing entry for "
                f"benchmarks/{script.name}"
            )
    return problems


def run(root: Path) -> list[str]:
    """All documentation problems under ``root`` (empty when clean)."""
    if not (root / "docs").is_dir():
        return [f"no docs/ directory under {root}"]
    return check_links(root) + check_benchmarks_listed(root)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = Path(args[0]) if args else Path(__file__).resolve().parents[2]
    problems = run(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"FAIL: {len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    docs = len(_doc_files(root))
    benches = len(list((root / "benchmarks").glob("bench_*.py")))
    print(f"docs check OK: {docs} files linted, {benches} benchmarks listed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
