"""Reproduction of the Relational Interval Tree (Kriegel et al., VLDB 2000).

Package map:

* :mod:`repro.core` -- the RI-tree and its extensions (the paper's
  contribution);
* :mod:`repro.engine` -- the block-level relational storage substrate;
* :mod:`repro.methods` -- competitor access methods and main-memory
  reference structures;
* :mod:`repro.sql` -- the object-relational wrapping on sqlite3;
* :mod:`repro.workloads` -- the Table 1 data and query generators;
* :mod:`repro.bench` -- the experiment harness regenerating every table
  and figure of the paper's evaluation.

Entry points: ``from repro.core import RITree`` for the library,
``python -m repro.bench.run`` for the evaluation.
"""

__version__ = "1.0.0"
