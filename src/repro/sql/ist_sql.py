"""IST (D-order) on a real SQL engine -- the paper's Figure 11 query.

"Range queries on D-ordered intervals can be expressed in a simple SQL
statement by just testing the upper and lower bounds for intersection with
the query range."  This is the competitor the paper implements directly in
SQL; we reproduce it on sqlite3 for cross-validation against both the
engine-backed :class:`repro.methods.ist.ISTree` and the SQL RI-tree.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Optional

from ..core.interval import validate_interval
from . import schema


class SQLISTree:
    """D-order IST: one composite index (upper, lower), Figure 11 queries."""

    def __init__(
        self,
        connection: Optional[sqlite3.Connection] = None,
        name: str = "ISTIntervals",
    ) -> None:
        self.conn = (
            connection if connection is not None else sqlite3.connect(":memory:")
        )
        self.name = name
        self.conn.execute(
            f'CREATE TABLE {name} ("lower" INTEGER, "upper" INTEGER, "id" INTEGER)'
        )
        self.conn.execute(
            f'CREATE INDEX {name}_dorder ON {name} ("upper", "lower", "id")'
        )

    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """Single-row insert; the D-order index is maintained by the engine."""
        validate_interval(lower, upper)
        self.conn.execute(
            f'INSERT INTO {self.name} ("lower", "upper", "id") VALUES (?, ?, ?)',
            (lower, upper, interval_id),
        )

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Exact-record delete."""
        cursor = self.conn.execute(
            f'DELETE FROM {self.name} WHERE "lower" = ? AND "upper" = ? '
            f'AND "id" = ?',
            (lower, upper, interval_id),
        )
        if cursor.rowcount != 1:
            raise KeyError((lower, upper, interval_id))

    def bulk_load(self, intervals: Iterable[tuple[int, int, int]]) -> None:
        """Load many rows in one transaction."""
        with self.conn:
            self.conn.executemany(
                f'INSERT INTO {self.name} ("lower", "upper", "id") '
                f"VALUES (?, ?, ?)",
                list(intervals),
            )

    def intersection(self, lower: int, upper: int) -> list[int]:
        """The literal Figure 11 statement."""
        validate_interval(lower, upper)
        cursor = self.conn.execute(
            schema.IST_QUERY_SQL.format(name=self.name),
            {"lower": lower, "upper": upper},
        )
        return [row[0] for row in cursor]

    @property
    def interval_count(self) -> int:
        """Number of stored intervals."""
        return self.conn.execute(f"SELECT COUNT(*) FROM {self.name}").fetchone()[0]
