"""Object-relational wrapping on a real SQL engine (paper Section 5).

The RI-tree "can easily be implemented on top of any relational DBMS"; this
package demonstrates it on stdlib :mod:`sqlite3` with the paper's literal
DDL and query statements.  :class:`SQLRITree` implements the full
backend-neutral :class:`~repro.core.access.IntervalStore` contract --
set-at-a-time joins, batched queries, predicate compilation, planner
statistics -- and two SQL competitors ride along for cross-validation.
"""

from .ist_sql import SQLISTree
from .ritree_sql import SQLRITree
from .tindex_sql import SQLTileIndex

__all__ = ["SQLISTree", "SQLRITree", "SQLTileIndex"]
