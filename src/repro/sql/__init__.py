"""Object-relational wrapping on a real SQL engine (paper Section 5).

The RI-tree "can easily be implemented on top of any relational DBMS"; this
package demonstrates it on stdlib :mod:`sqlite3` with the paper's literal
DDL and query statements, and provides SQL versions of two competitors for
cross-validation.
"""

from .ist_sql import SQLISTree
from .ritree_sql import SQLRITree
from .tindex_sql import SQLTileIndex

__all__ = ["SQLISTree", "SQLRITree", "SQLTileIndex"]
