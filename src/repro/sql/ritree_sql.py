"""The RI-tree on a real SQL engine (paper Section 5).

"The Relational Interval Tree may be easily implemented on top of any
relational DBMS featuring a procedural query language."  This module proves
the claim on stdlib :mod:`sqlite3`:

* the relation and indexes are the literal Figure 2 DDL;
* insertion executes the single SQL statement of Figure 5 after the
  arithmetic-only fork computation of Figure 6;
* an intersection query fills the two transient (TEMP) tables and runs the
  literal two-branch ``UNION ALL`` statement of Figure 9;
* the O(1) parameter set persists in a data-dictionary table and survives
  re-opening the database;
* optionally, an updatable *view* with an ``INSTEAD OF`` trigger and a
  user-defined ``fork_node`` function wraps the whole maintenance machinery
  behind plain ``INSERT`` statements -- the object-relational encapsulation
  the paper describes for Oracle8i's extensible indexing framework.

Beyond the single-query statements, the class implements the full
backend-neutral :class:`~repro.core.access.IntervalStore` contract, so
every client of the simulated-engine RI-tree -- the join subsystem, the
``auto`` planner, the predicate layer, the benchmark harness -- runs
unchanged on sqlite:

* ``intersection_many`` and the interval-join entry points
  (``join_pairs`` / ``join_count``) evaluate *set-at-a-time*: the probe
  relation is loaded into a TEMP table once per batch and joined against
  the literal Figure 9 form in ONE statement, so sqlite's own optimizer
  drives the nested-loop plan over the whole batch;
* ``cost_model`` exposes :meth:`repro.core.costmodel.RITreeCostModel.
  from_sql_tree` statistics (NTILE histograms, page-count geometry), so
  the ``auto`` join strategy plans here exactly as on the simulated
  engine;
* :meth:`query` compiles the shared interval predicates (``intersects``,
  ``stab``, Allen's thirteen relations) to a WHERE-clause rewrite of the
  Figure 9 statement over the predicate's candidate range.

The ``now``/``infinity`` handling of Section 4.6 rides along: reserved fork
node values are injected into ``rightNodes`` at query time, with *no
modification of the SQL statement*.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Optional, Sequence

from ..core.access import IntervalRecord, IntervalStore
from ..core.backbone import VirtualBackbone
from ..core.interval import validate_interval
from ..core.predicates import (
    resolve_join_predicate,
    shim_positional_predicate,
)
from ..core.temporal import (
    FORK_INF,
    FORK_NOW,
    UPPER_INF,
    UPPER_NOW,
    resolve_clock_argument,
)
from ..core.verify import VerificationReport
from ..engine.retry import RetryPolicy
from . import schema

_PARAM_KEYS = ("offset", "left_root", "right_root", "minstep")
#: Sentinel stored for "no value yet" parameters in the data dictionary.
_NULL = None

#: The batch transient tables one fill cycle populates (and must clear).
_BATCH_TABLES = ("batchProbes", "batchLeftNodes", "batchRightNodes")


def sqlite_transient_classify(exc: BaseException) -> bool:
    """Retry test for sqlite: ``busy`` / ``locked`` operational errors.

    The sqlite analogue of the engine's
    :func:`~repro.engine.retry.default_classify` -- contention errors are
    transient (another connection holds the lock and will release it);
    everything else propagates untouched.
    """
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    text = str(exc).lower()
    return "locked" in text or "busy" in text


class SQLRITree(IntervalStore):
    """RI-tree over a DB-API connection (tested on sqlite3).

    Parameters
    ----------
    connection:
        An open sqlite3 connection; ``:memory:`` when omitted.
    name:
        Relation name; several trees may share a connection.
    attach:
        When true, attach to an existing relation of this name (re-opening a
        persistent database): the schema must exist and the parameters are
        loaded from the data dictionary instead of being created.

    Example
    -------
    >>> tree = SQLRITree()
    >>> tree.insert(3, 9, interval_id=1)
    >>> tree.insert(5, 15, interval_id=2)
    >>> sorted(tree.intersection(8, 12))
    [1, 2]
    >>> tree.intersection_count(8, 12)
    2
    >>> sorted(tree.join_pairs([(4, 6, 77)]))
    [(77, 1), (77, 2)]
    """

    method_name = "SQL-RI-tree"

    def __init__(
        self,
        connection: Optional[sqlite3.Connection] = None,
        name: str = "Intervals",
        attach: bool = False,
        now: int = 0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.conn = (
            connection if connection is not None else sqlite3.connect(":memory:")
        )
        self.name = name
        self.backbone = VirtualBackbone()
        self.retry = retry if retry is not None else RetryPolicy()
        self._now = now
        self._has_infinite = False
        self._has_now = False
        #: Last persisted parameter tuple (the dirty flag: ``_save_params``
        #: writes the dictionary only when this snapshot goes stale).
        self._persisted: Optional[tuple] = None
        self._cost_model = None
        if attach:
            self._load_params()
        else:
            for statement in schema.create_interval_table(name):
                self.conn.execute(statement)
            for statement in schema.create_params_table(name):
                self.conn.execute(statement)
            self._save_params()
        for statement in schema.create_transient_tables():
            self.conn.execute(statement)
        for statement in schema.create_batch_transient_tables():
            self.conn.execute(statement)
        self._register_udf()
        # Leave the connection at a transaction boundary: the initial
        # dictionary write opened an implicit transaction that a later
        # cycle's rollback must not be able to revert.
        self.conn.commit()

    # ------------------------------------------------------------------
    # data dictionary (Section 5)
    # ------------------------------------------------------------------
    def _param_values(self) -> tuple:
        return (
            self.backbone.offset,
            self.backbone.left_root,
            self.backbone.right_root,
            self.backbone.minstep,
            int(self._has_infinite),
            int(self._has_now),
        )

    def _save_params(self) -> None:
        """Persist the O(1) parameter set -- only when it changed.

        Insertions rarely move the backbone parameters (the roots double
        logarithmically, ``minstep`` only ever shrinks), so writing the
        dictionary per row would be almost-always-wasted I/O; the dirty
        check makes parameter persistence O(changes), not O(rows).
        """
        values = self._param_values()
        if values == self._persisted:
            return
        keys = _PARAM_KEYS + ("has_infinite", "has_now")
        self.conn.executemany(
            f'INSERT OR REPLACE INTO {self.name}_params ("key", "value") '
            f"VALUES (?, ?)",
            list(zip(keys, values)),
        )
        self._persisted = values

    def _load_params(self) -> None:
        rows = dict(
            self.conn.execute(f'SELECT "key", "value" FROM {self.name}_params')
        )
        if not rows:
            raise ValueError(f"no persisted parameters for RI-tree {self.name!r}")
        self.backbone.offset = rows.get("offset")
        self.backbone.left_root = rows.get("left_root") or 0
        self.backbone.right_root = rows.get("right_root") or 0
        self.backbone.minstep = rows.get("minstep")
        self._has_infinite = bool(rows.get("has_infinite"))
        self._has_now = bool(rows.get("has_now"))
        self._persisted = self._param_values()

    # ------------------------------------------------------------------
    # updates (Figures 5 and 6)
    # ------------------------------------------------------------------
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """Fork computation (no I/O) + the single INSERT of Figure 5."""
        node = self.backbone.register(lower, upper)
        self.conn.execute(
            schema.INSERT_SQL.format(name=self.name),
            {"node": node, "lower": lower, "upper": upper, "id": interval_id},
        )
        self._save_params()

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Recompute the fork, delete with one statement."""
        validate_interval(lower, upper)
        if self.backbone.is_empty:
            raise KeyError((lower, upper, interval_id))
        node = self.backbone.fork_node(lower, upper)
        cursor = self.conn.execute(
            schema.DELETE_SQL.format(name=self.name),
            {"node": node, "lower": lower, "upper": upper, "id": interval_id},
        )
        if cursor.rowcount != 1:
            raise KeyError((lower, upper, interval_id))

    def bulk_load(self, intervals: Iterable[IntervalRecord]) -> None:
        """Register and insert many intervals inside one transaction.

        A ``busy`` / ``locked`` failure rolls the transaction back and
        retries the whole batch under the bounded backoff policy.
        """
        rows = []
        for lower, upper, interval_id in intervals:
            node = self.backbone.register(lower, upper)
            rows.append(
                {"node": node, "lower": lower, "upper": upper, "id": interval_id}
            )

        def body() -> None:
            self.conn.executemany(schema.INSERT_SQL.format(name=self.name), rows)
            self._save_params()

        self._transact(body)

    def extend(self, intervals: Iterable[IntervalRecord]) -> None:
        """Insert many intervals one by one, inside one transaction."""
        records = list(intervals)

        def body() -> None:
            for lower, upper, interval_id in records:
                self.insert(lower, upper, interval_id)

        self._transact(body)

    def append_batch(self, intervals: Iterable[IntervalRecord]) -> None:
        """Streaming append: one ``executemany`` + dictionary write.

        Unlike :meth:`bulk_load` this is valid on a non-empty relation,
        and unlike :meth:`extend` it issues one multi-row statement and
        at most one parameter-dictionary write per batch.  Sentinel
        uppers fold into the same statement as reserved fork-node rows
        (Section 4.6), so a mixed batch still commits atomically.
        """
        rows = []
        has_infinite = self._has_infinite
        has_now = self._has_now
        for lower, upper, interval_id in intervals:
            if upper == UPPER_INF:
                validate_interval(lower, lower)
                if self.backbone.offset is None:
                    self.backbone.offset = lower
                rows.append(
                    {"node": FORK_INF, "lower": lower,
                     "upper": UPPER_INF, "id": interval_id}
                )
                has_infinite = True
            elif upper == UPPER_NOW:
                validate_interval(lower, lower)
                if lower > self._now:
                    raise ValueError(
                        f"now-relative interval starts after now={self._now}"
                    )
                if self.backbone.offset is None:
                    self.backbone.offset = lower
                rows.append(
                    {"node": FORK_NOW, "lower": lower,
                     "upper": UPPER_NOW, "id": interval_id}
                )
                has_now = True
            else:
                node = self.backbone.register(lower, upper)
                rows.append(
                    {"node": node, "lower": lower,
                     "upper": upper, "id": interval_id}
                )
        if not rows:
            return
        self._has_infinite = has_infinite
        self._has_now = has_now

        def body() -> None:
            self.conn.executemany(schema.INSERT_SQL.format(name=self.name), rows)
            self._save_params()

        self._transact(body)

    def _transact(self, body):
        """Run ``body`` in one transaction, retrying ``busy``/``locked``.

        On any failure the transaction rolls back, so the parameter
        dirty-flag snapshot must not claim the dictionary writes stuck;
        resetting it forces the next :meth:`_save_params` to re-persist.
        Pending single-statement work (``insert`` leaves its implicit
        transaction open) is committed first, so the rollback is scoped
        to this transaction alone.
        """

        def attempt():
            self.conn.commit()
            with self.conn:
                return body()

        def rolled_back(_exc: BaseException) -> None:
            self._persisted = None

        try:
            return self.retry.call(
                attempt, classify=sqlite_transient_classify, on_retry=rolled_back
            )
        except BaseException:
            self._persisted = None
            raise

    # ------------------------------------------------------------------
    # temporal records (Section 4.6)
    # ------------------------------------------------------------------
    def insert_infinite(self, lower: int, interval_id: int) -> None:
        """Insert ``[lower, infinity)`` under the reserved fork node."""
        if self.backbone.offset is None:
            self.backbone.offset = lower
        self.conn.execute(
            schema.INSERT_SQL.format(name=self.name),
            {"node": FORK_INF, "lower": lower, "upper": UPPER_INF, "id": interval_id},
        )
        self._has_infinite = True
        self._save_params()

    def insert_until_now(self, lower: int, interval_id: int) -> None:
        """Insert ``[lower, now]`` under the reserved fork node."""
        if lower > self._now:
            raise ValueError(f"now-relative interval starts after now={self._now}")
        if self.backbone.offset is None:
            self.backbone.offset = lower
        self.conn.execute(
            schema.INSERT_SQL.format(name=self.name),
            {"node": FORK_NOW, "lower": lower, "upper": UPPER_NOW, "id": interval_id},
        )
        self._has_now = True
        self._save_params()

    @property
    def now(self) -> int:
        """The clock for now-relative semantics."""
        return self._now

    def advance_to(self, now: Optional[int] = None, *,
                   timestamp: Optional[int] = None) -> None:
        """Move the clock forward."""
        now = resolve_clock_argument(now, timestamp)
        if now < self._now:
            raise ValueError("clock moves forward only")
        self._now = now

    # ------------------------------------------------------------------
    # queries (Figures 8 and 9)
    # ------------------------------------------------------------------
    def intersection(self, lower: int, upper: int) -> list[int]:
        """Fill the transient tables, run the Figure 9 statement.

        When the transient collections are provably empty -- an empty
        backbone with no reserved fork rows -- the result is ``[]``
        without any transient-table round-trip, not even the ``DELETE``
        statements.
        """
        validate_interval(lower, upper)
        left, right = self._transient_rows(lower, upper)
        if not left and not right:
            return []
        self._write_transient(left, right)
        cursor = self.conn.execute(
            schema.INTERSECTION_SQL.format(name=self.name),
            {"lower": lower, "upper": upper},
        )
        return [row[0] for row in cursor]

    def intersection_count(self, lower: int, upper: int) -> int:
        """Result count of :meth:`intersection`, aggregated in-engine.

        Same transient fill, same two-branch statement, wrapped in
        ``COUNT(*)`` so no id list crosses the DB-API boundary.
        """
        validate_interval(lower, upper)
        left, right = self._transient_rows(lower, upper)
        if not left and not right:
            return 0
        self._write_transient(left, right)
        cursor = self.conn.execute(
            schema.INTERSECTION_COUNT_SQL.format(name=self.name),
            {"lower": lower, "upper": upper},
        )
        return cursor.fetchone()[0]

    def intersection_many(self, queries: Sequence[tuple[int, int]]) -> list[list[int]]:
        """Answer a whole query batch with one set-at-a-time statement.

        All transient node collections are computed and loaded in ONE
        fill cycle of the batch TEMP tables, then a single Figure 9 form
        joined against the probe relation returns ``(qid, id)`` rows for
        every query at once.
        """
        results: list[list[int]] = [[] for _ in queries]
        if not queries:
            return results
        rows = self._batch_cycle(
            lambda: self._fill_batch_tables(queries),
            lambda: list(
                self.conn.execute(
                    schema.BATCH_INTERSECTION_SQL.format(name=self.name)
                )
            ),
            empty=[],
        )
        for qid, interval_id in rows:
            results[qid].append(interval_id)
        return results

    def intersection_preliminary(self, lower: int, upper: int) -> list[int]:
        """The unsimplified three-branch OR query of Figure 8.

        Kept for the query-form ablation benchmark; results are identical
        to :meth:`intersection`.
        """
        validate_interval(lower, upper)
        if self.backbone.is_empty:
            return []
        # Note: unlike the final form, the BETWEEN branch lives in the SQL
        # itself, so the query must run even with empty transient tables.
        left, right = self._transient_rows(lower, upper, fold_between=False)
        self._write_transient(left, right)
        cursor = self.conn.execute(
            schema.PRELIMINARY_INTERSECTION_SQL.format(name=self.name),
            {
                "lower": lower,
                "upper": upper,
                "lowshift": self.backbone.shift(lower),
                "upshift": self.backbone.shift(upper),
            },
        )
        return [row[0] for row in cursor]

    def _transient_rows(
        self,
        lower: int,
        upper: int,
        fold_between: bool = True,
        include_reserved: bool = True,
    ) -> tuple[list[tuple[int, int]], list[int]]:
        """Descend the backbone, compute the leftNodes/rightNodes rows.

        Pure arithmetic -- no SQL is issued; the caller decides whether
        the collections are worth materialising.  For the final query
        form, both empty means the result is provably empty and every
        round-trip can be skipped.
        """
        left: list[tuple[int, int]] = []
        right: list[int] = []
        if not self.backbone.is_empty:
            l = self.backbone.shift(lower)
            u = self.backbone.shift(upper)
            for node in self.backbone.walk_toward(l):
                if node < l:
                    left.append((node, node))
            for node in self.backbone.walk_toward(u):
                if node > u:
                    right.append(node)
            if fold_between:
                left.append((l, u))
        # Section 4.6: reserved fork nodes ride along rightNodes.
        if include_reserved:
            if self._has_infinite:
                right.append(FORK_INF)
            if self._has_now and lower <= self._now:
                right.append(FORK_NOW)
        return left, right

    def _write_transient(
        self, left: list[tuple[int, int]], right: list[int]
    ) -> None:
        """(Re)populate the single-query transient tables."""
        self.conn.execute("DELETE FROM leftNodes")
        self.conn.execute("DELETE FROM rightNodes")
        self.conn.executemany(
            'INSERT INTO leftNodes ("min", "max") VALUES (?, ?)', left
        )
        self.conn.executemany(
            'INSERT INTO rightNodes ("node") VALUES (?)',
            [(node,) for node in right],
        )

    def _fill_batch_tables(self, queries: Sequence[tuple[int, int]]) -> int:
        """One fill cycle of the batch transient tables for a probe batch.

        Returns the total number of transient node rows; zero means every
        probe's result is provably empty and the batch statement can be
        skipped entirely.
        """
        probe_rows: list[tuple[int, int, int]] = []
        left_rows: list[tuple[int, int, int]] = []
        right_rows: list[tuple[int, int]] = []
        for qid, (lower, upper) in enumerate(queries):
            validate_interval(lower, upper)
            probe_rows.append((qid, lower, upper))
            left, right = self._transient_rows(lower, upper)
            left_rows.extend((qid, mn, mx) for mn, mx in left)
            right_rows.extend((qid, node) for node in right)
        if not left_rows and not right_rows:
            return 0
        self.conn.execute("DELETE FROM batchProbes")
        self.conn.execute("DELETE FROM batchLeftNodes")
        self.conn.execute("DELETE FROM batchRightNodes")
        self.conn.executemany(
            'INSERT INTO batchProbes ("qid", "lower", "upper") VALUES (?, ?, ?)',
            probe_rows,
        )
        self.conn.executemany(
            'INSERT INTO batchLeftNodes ("qid", "min", "max") VALUES (?, ?, ?)',
            left_rows,
        )
        self.conn.executemany(
            'INSERT INTO batchRightNodes ("qid", "node") VALUES (?, ?)',
            right_rows,
        )
        return len(left_rows) + len(right_rows)

    def _clear_batch_tables(self) -> None:
        """Empty every batch transient table (end of one fill cycle)."""
        for table in _BATCH_TABLES:
            self.conn.execute(f"DELETE FROM {table}")

    def _batch_cycle(self, fill, run, empty):
        """One transaction-scoped batch fill cycle with bounded retry.

        ``fill`` populates the batch transient tables and returns the
        transient row count; when it returns zero the result is provably
        ``empty``, ``run`` is skipped and -- preserving the empty-backbone
        fast path -- not a single statement reaches the connection.  Fill,
        query and cleanup execute inside ONE transaction: a mid-cycle
        failure rolls the fill back (no stray TEMP rows can outlive the
        cycle), and a ``busy`` / ``locked`` error additionally
        re-attempts the whole cycle under the bounded backoff policy.
        Pending single-statement work is committed up front, so the
        mid-cycle rollback can only ever revert the cycle itself.
        """

        def attempt():
            self.conn.commit()
            try:
                if not fill():
                    return empty
                result = run()
                self._clear_batch_tables()
                self.conn.commit()
                return result
            except BaseException:
                self.conn.rollback()
                raise

        return self.retry.call(attempt, classify=sqlite_transient_classify)

    def _fill_predicate_batch_tables(
        self, probes: Sequence[IntervalRecord], inverse
    ) -> int:
        """Fill cycle for a predicate-join probe batch.

        Per probe, the transient node collections are computed for the
        *inverse* relation's candidate range (probing asks the
        stored-subject question) and the probe row carries both the
        candidate bounds (scanned by the Figure 9 branches) and the
        original probe bounds (consumed by the refinement fragment).
        Reserved Section 4.6 fork rows ride along their rightNodes
        entries and are refined on *effective* bounds, exactly as in the
        single-query predicate path.  Returns the total transient row
        count; zero means every probe's result is provably empty.
        """
        floor = ceiling = None
        if inverse.name in ("before", "after"):
            floor, ceiling = self._candidate_extent()
        probe_rows: list[tuple] = []
        left_rows: list[tuple[int, int, int]] = []
        right_rows: list[tuple[int, int]] = []
        for qid, (lower, upper, _probe_id) in enumerate(probes):
            validate_interval(lower, upper)
            candidate = inverse.candidates(lower, upper, floor, ceiling)
            if candidate is None:
                continue
            clower, cupper = candidate
            probe_rows.append((qid, clower, cupper, lower, upper))
            left, right = self._transient_rows(clower, cupper)
            left_rows.extend((qid, mn, mx) for mn, mx in left)
            right_rows.extend((qid, node) for node in right)
        if not left_rows and not right_rows:
            return 0
        self.conn.execute("DELETE FROM batchProbes")
        self.conn.execute("DELETE FROM batchLeftNodes")
        self.conn.execute("DELETE FROM batchRightNodes")
        self.conn.executemany(
            'INSERT INTO batchProbes ("qid", "lower", "upper", "plower", '
            '"pupper") VALUES (?, ?, ?, ?, ?)',
            probe_rows,
        )
        self.conn.executemany(
            'INSERT INTO batchLeftNodes ("qid", "min", "max") VALUES (?, ?, ?)',
            left_rows,
        )
        self.conn.executemany(
            'INSERT INTO batchRightNodes ("qid", "node") VALUES (?, ?)',
            right_rows,
        )
        return len(left_rows) + len(right_rows)

    # ------------------------------------------------------------------
    # joins (set-at-a-time, Section 5 meets the join subsystem)
    # ------------------------------------------------------------------
    def join_pairs(
        self, probes: Sequence[IntervalRecord], *legacy, predicate=None
    ) -> list[tuple[int, int]]:
        """The index-nested-loop interval join as ONE SQL statement.

        The probe relation is loaded into a TEMP table and joined against
        the literal Figure 9 form; sqlite's optimizer drives the
        nested-loop plan (probe relation outer, the two Figure 2 indexes
        inner), so the join is evaluated set-at-a-time instead of one
        statement per probe.

        A join ``predicate`` keeps the one-statement shape: the per-probe
        candidate ranges of the *inverse* relation fill the transient
        tables and the subject-swapped refinement fragment rides along in
        both branches (:func:`repro.sql.schema.
        predicate_batch_intersection_sql`).  Reserved Section 4.6 rows
        participate with their effective bounds, as in predicate
        queries.
        """
        predicate = shim_positional_predicate(legacy, predicate, "join_pairs")
        pred = resolve_join_predicate(predicate)
        if not probes:
            return []
        ids = [probe_id for _lower, _upper, probe_id in probes]
        if pred is None:
            rows = self._batch_cycle(
                lambda: self._fill_batch_tables([(l, u) for l, u, _ in probes]),
                lambda: list(
                    self.conn.execute(
                        schema.BATCH_INTERSECTION_SQL.format(name=self.name)
                    )
                ),
                empty=[],
            )
        else:
            statement = schema.predicate_batch_intersection_sql(
                self.name, pred.sql_refine
            )
            binds = {"now": self._now, **getattr(pred, "sql_binds", {})}
            rows = self._batch_cycle(
                lambda: self._fill_predicate_batch_tables(probes, pred.inverse),
                lambda: list(self.conn.execute(statement, binds)),
                empty=[],
            )
        return [(ids[qid], interval_id) for qid, interval_id in rows]

    def join_count(
        self, probes: Sequence[IntervalRecord], *legacy, predicate=None
    ) -> int:
        """Size of :meth:`join_pairs`, aggregated by the engine.

        Identical fill cycle and statement, wrapped in ``COUNT(*)`` --
        the pair list never leaves sqlite.
        """
        predicate = shim_positional_predicate(legacy, predicate, "join_count")
        pred = resolve_join_predicate(predicate)
        if not probes:
            return 0
        if pred is None:
            return self._batch_cycle(
                lambda: self._fill_batch_tables([(l, u) for l, u, _ in probes]),
                lambda: self.conn.execute(
                    schema.BATCH_COUNT_SQL.format(name=self.name)
                ).fetchone()[0],
                empty=0,
            )
        statement = schema.predicate_batch_count_sql(self.name, pred.sql_refine)
        binds = {"now": self._now, **getattr(pred, "sql_binds", {})}
        return self._batch_cycle(
            lambda: self._fill_predicate_batch_tables(probes, pred.inverse),
            lambda: self.conn.execute(statement, binds).fetchone()[0],
            empty=0,
        )

    def explain_join(
        self, probes: Sequence[IntervalRecord], predicate=None
    ) -> list[str]:
        """The engine's query plan for the set-at-a-time join statement."""
        pred = resolve_join_predicate(predicate)
        try:
            if pred is None:
                self._fill_batch_tables([(l, u) for l, u, _ in probes])
                statement = schema.BATCH_INTERSECTION_SQL.format(name=self.name)
                params = {}
            else:
                self._fill_predicate_batch_tables(probes, pred.inverse)
                statement = schema.predicate_batch_intersection_sql(
                    self.name, pred.sql_refine
                )
                params = {"now": self._now, **getattr(pred, "sql_binds", {})}
            cursor = self.conn.execute("EXPLAIN QUERY PLAN " + statement, params)
            return [row[-1] for row in cursor]
        finally:
            self._clear_batch_tables()

    # ------------------------------------------------------------------
    # predicate queries (WHERE-clause rewrite of Figure 9)
    # ------------------------------------------------------------------
    def _query_relation(self, pred, lower: int, upper: int) -> list[int]:
        """Predicates and families as ONE rewritten Figure 9 statement.

        The transient tables are filled for the predicate's *candidate
        range* and the predicate's defining endpoint formula is appended
        to the WHERE clause of both branches -- the sqlite compilation of
        the shared predicate layer of :mod:`repro.core.predicates`.
        Parameterized query families ride the same statement: their
        extra named binds (``CompiledQuery.sql_binds``, e.g. the
        ``:dmin``/``:dmax`` duration band of ``range_duration``) merge
        into the bind set, so the duration fragment in both branches
        stays one statement with the same two-index plan.
        Reserved Section 4.6 fork rows participate with their
        *effective* bounds: the refinement reads the stored upper
        through :data:`repro.sql.schema.EFFECTIVE_UPPER` (now-relative
        rows against the clock, infinite rows via the ``UPPER_INF``
        sentinel), exactly as the simulated engine materialises them.
        """
        validate_interval(lower, upper)
        floor = ceiling = None
        if (pred.name in ("before", "after")
                or getattr(pred, "needs_extent", False)):
            floor, ceiling = self._candidate_extent()
        candidate = pred.candidates(lower, upper, floor, ceiling)
        if candidate is None:
            return []
        clower, cupper = candidate
        left, right = self._transient_rows(clower, cupper)
        if not left and not right:
            return []
        self._write_transient(left, right)
        cursor = self.conn.execute(
            schema.predicate_intersection_sql(self.name, pred.sql_refine),
            {
                "lower": lower,
                "upper": upper,
                "clower": clower,
                "cupper": cupper,
                "now": self._now,
                **getattr(pred, "sql_binds", {}),
            },
        )
        return [row[0] for row in cursor]

    def _candidate_extent(self) -> tuple[Optional[int], Optional[int]]:
        """``(floor, ceiling)`` for before/after candidate ranges.

        The floor is the smallest stored lower bound (reserved rows
        carry real lowers); the ceiling must cover every coordinate the
        candidate scans have to reach -- the largest finite upper, the
        largest reserved-row lower, and the clock for now-relative
        rows.  Sentinel uppers never enter, so the scan plan's BETWEEN
        fold stays clear of the reserved fork-node values.
        """
        floor, ceiling = self.conn.execute(
            f'SELECT MIN("lower"), '
            f'MAX(CASE WHEN "node" IN ({FORK_INF}, {FORK_NOW}) '
            f'THEN "lower" ELSE "upper" END) FROM {self.name}'
        ).fetchone()
        if self._has_now and ceiling is not None:
            ceiling = max(ceiling, self._now)
        return floor, ceiling

    # ------------------------------------------------------------------
    # planning (Section 5: the cost model registered at the optimizer)
    # ------------------------------------------------------------------
    def cost_model(self, refresh: bool = False):
        """Optimizer statistics over this relation, built lazily and cached.

        A :meth:`~repro.core.costmodel.RITreeCostModel.from_sql_tree`
        model: histograms by SQL aggregation, geometry from sqlite page
        counts.  The cached model goes stale under updates; pass
        ``refresh=True`` to re-run the ANALYZE pass.
        """
        from ..core.costmodel import RITreeCostModel

        if self._cost_model is None:
            self._cost_model = RITreeCostModel.from_sql_tree(self)
        elif refresh:
            self._cost_model.refresh()
        return self._cost_model

    def stored_records(self) -> list[IntervalRecord]:
        """The stored relation as ``(lower, upper, id)`` records.

        Sentinel uppers are materialised as in
        :meth:`repro.core.temporal.TemporalRITree.intersection_records`:
        now-relative rows report the *effective* upper bound (the current
        clock), so an index-free consumer (the planner's sweep dispatch)
        joins the same pair set as the reserved-node scans; infinite rows
        keep the ``UPPER_INF`` sentinel, which behaves as +infinity under
        every overlap test inside the supported data space.
        """
        cursor = self.conn.execute(
            f'SELECT "node", "lower", "upper", "id" FROM {self.name}'
        )
        return [
            (lower, self._now if node == FORK_NOW else upper, interval_id)
            for node, lower, upper, interval_id in cursor
        ]

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _verify_into(self, report: VerificationReport) -> None:
        """Structural validators for the sqlite backend.

        Checks, in order: sqlite's own ``PRAGMA integrity_check``,
        presence and column order of the Figure 2 covering indexes, the
        persisted parameter dictionary against the in-memory backbone,
        Figure 6 fork-node consistency, the reserved Section 4.6 rows
        against their sentinel uppers and flags, and that no batch fill
        cycle left stray TEMP rows behind.
        """
        super()._verify_into(report)
        report.add_check("sqlite-integrity")
        for (line,) in self.conn.execute("PRAGMA integrity_check"):
            if line != "ok":
                report.add_issue("sqlite-integrity", line)
        report.add_check("figure2-indexes")
        expected_indexes = {
            f"{self.name}_lowerIndex": ["node", "lower", "id"],
            f"{self.name}_upperIndex": ["node", "upper", "id"],
        }
        present = {
            row[1] for row in self.conn.execute(f"PRAGMA index_list({self.name})")
        }
        for index_name, key_columns in expected_indexes.items():
            if index_name not in present:
                report.add_issue(
                    "missing-index",
                    f"covering index {index_name} is absent",
                    {"index": index_name},
                )
                continue
            columns = [
                row[2]
                for row in self.conn.execute(f"PRAGMA index_info({index_name})")
            ]
            if columns != key_columns:
                report.add_issue(
                    "index-columns",
                    f"{index_name} covers {columns}, Figure 2 expects "
                    f"{key_columns}",
                    {"index": index_name},
                )
        report.add_check("params-dictionary")
        stored = dict(
            self.conn.execute(f'SELECT "key", "value" FROM {self.name}_params')
        )
        expected_params = dict(
            zip(_PARAM_KEYS + ("has_infinite", "has_now"), self._param_values())
        )
        for key, value in expected_params.items():
            if stored.get(key) != value:
                report.add_issue(
                    "params-dictionary",
                    f"dictionary stores {key}={stored.get(key)!r}, "
                    f"in-memory value is {value!r}",
                    {"key": key},
                )
        report.add_check("fork-node")
        report.add_check("reserved-rows")
        inf_rows = now_rows = 0
        for node, lower, upper, interval_id in self.conn.execute(
            f'SELECT "node", "lower", "upper", "id" FROM {self.name}'
        ):
            if node == FORK_INF:
                inf_rows += 1
                if upper != UPPER_INF:
                    report.add_issue(
                        "reserved-row-upper",
                        f"row id {interval_id} at FORK_INF stores upper "
                        f"{upper}, expected the UPPER_INF sentinel",
                        {"id": interval_id},
                    )
                continue
            if node == FORK_NOW:
                now_rows += 1
                if upper != UPPER_NOW:
                    report.add_issue(
                        "reserved-row-upper",
                        f"row id {interval_id} at FORK_NOW stores upper "
                        f"{upper}, expected the UPPER_NOW sentinel",
                        {"id": interval_id},
                    )
                if lower > self._now:
                    report.add_issue(
                        "now-row-after-clock",
                        f"now-relative row id {interval_id} starts at "
                        f"{lower}, after now={self._now}",
                        {"id": interval_id},
                    )
                continue
            if self.backbone.is_empty:
                report.add_issue(
                    "missing-offset",
                    f"row id {interval_id} stored but the backbone has "
                    "no offset",
                    {"id": interval_id},
                )
                continue
            try:
                expected = self.backbone.fork_node(lower, upper)
            except ValueError as exc:
                report.add_issue(
                    "fork-node-unreachable",
                    f"row id {interval_id}: {exc}",
                    {"id": interval_id},
                )
                continue
            if node != expected:
                report.add_issue(
                    "fork-node-mismatch",
                    f"row id {interval_id} stored at node {node}, Figure 6 "
                    f"computes {expected} for ({lower}, {upper})",
                    {"id": interval_id, "node": node, "expected": expected},
                )
        if inf_rows and not self._has_infinite:
            report.add_issue(
                "reserved-flag",
                f"{inf_rows} rows at FORK_INF but has_infinite is unset "
                "(queries would miss them)",
            )
        if now_rows and not self._has_now:
            report.add_issue(
                "reserved-flag",
                f"{now_rows} rows at FORK_NOW but has_now is unset "
                "(queries would miss them)",
            )
        report.add_check("batch-tables-empty")
        for table in _BATCH_TABLES:
            count = self.conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            if count:
                report.add_issue(
                    "stray-batch-rows",
                    f"{count} rows left in {table} outside a fill cycle",
                    {"table": table},
                )

    # ------------------------------------------------------------------
    # object-relational wrapping: view + trigger + UDF (Section 5)
    # ------------------------------------------------------------------
    def _register_udf(self) -> None:
        def fork_node(lower: int, upper: int) -> int:
            return self.backbone.register(lower, upper)

        self.conn.create_function(f"ritree_fork_{self.name}", 2, fork_node)

    def create_view(self) -> str:
        """Create an updatable view hiding all index maintenance.

        ``INSERT INTO <name>_iv ("lower", "upper", "id") VALUES (...)``
        then behaves like inserting into a table with a built-in interval
        index: the trigger computes the fork node through the registered
        user-defined function -- "the complete index maintenance therefore
        may be managed by a trigger mechanism" (Section 5).  Call
        :meth:`sync_params` when done inserting to persist the dictionary.
        """
        view = f"{self.name}_iv"
        self.conn.execute(
            f"CREATE VIEW IF NOT EXISTS {view} AS "
            f'SELECT "lower", "upper", "id" FROM {self.name}'
        )
        self.conn.execute(
            f"CREATE TRIGGER IF NOT EXISTS {view}_insert "
            f"INSTEAD OF INSERT ON {view} BEGIN "
            f'INSERT INTO {self.name} ("node", "lower", "upper", "id") '
            f'VALUES (ritree_fork_{self.name}(NEW."lower", NEW."upper"), '
            f'NEW."lower", NEW."upper", NEW."id"); END'
        )
        return view

    def sync_params(self) -> None:
        """Persist the parameter dictionary after view-based inserts."""
        self._save_params()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def interval_count(self) -> int:
        """Number of stored intervals."""
        cursor = self.conn.execute(f"SELECT COUNT(*) FROM {self.name}")
        return cursor.fetchone()[0]

    @property
    def index_entry_count(self) -> int:
        """Two index entries per interval (Figure 12: ``2n``)."""
        return 2 * self.interval_count

    def explain_intersection(self, lower: int, upper: int) -> list[str]:
        """The engine's query plan for Figure 9 (cf. the paper's Figure 10)."""
        left, right = self._transient_rows(lower, upper)
        self._write_transient(left, right)
        cursor = self.conn.execute(
            "EXPLAIN QUERY PLAN " + schema.INTERSECTION_SQL.format(name=self.name),
            {"lower": lower, "upper": upper},
        )
        return [row[-1] for row in cursor]

    def explain_query(self, lower: int, upper: int,
                      predicate="intersects") -> list[str]:
        """The engine's plan for one predicate/family query statement.

        The EXPLAIN twin of :meth:`_query_relation`: the same transient
        fill, the same rewritten Figure 9 statement, the same bind set
        (family binds such as ``range_duration``'s ``:dmin``/``:dmax``
        included), so the reported plan is exactly what the query path
        executes.  An empty candidate range explains nothing and
        returns ``[]``.
        """
        from ..core.predicates import compile_query

        pred = compile_query(predicate)
        if pred.name in ("intersects", "stab"):
            return self.explain_intersection(lower, upper)
        validate_interval(lower, upper)
        floor = ceiling = None
        if (pred.name in ("before", "after")
                or getattr(pred, "needs_extent", False)):
            floor, ceiling = self._candidate_extent()
        candidate = pred.candidates(lower, upper, floor, ceiling)
        if candidate is None:
            return []
        clower, cupper = candidate
        left, right = self._transient_rows(clower, cupper)
        self._write_transient(left, right)
        cursor = self.conn.execute(
            "EXPLAIN QUERY PLAN "
            + schema.predicate_intersection_sql(self.name, pred.sql_refine),
            {
                "lower": lower,
                "upper": upper,
                "clower": clower,
                "cupper": cupper,
                "now": self._now,
                **getattr(pred, "sql_binds", {}),
            },
        )
        return [row[-1] for row in cursor]
