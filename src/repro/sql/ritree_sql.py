"""The RI-tree on a real SQL engine (paper Section 5).

"The Relational Interval Tree may be easily implemented on top of any
relational DBMS featuring a procedural query language."  This module proves
the claim on stdlib :mod:`sqlite3`:

* the relation and indexes are the literal Figure 2 DDL;
* insertion executes the single SQL statement of Figure 5 after the
  arithmetic-only fork computation of Figure 6;
* an intersection query fills the two transient (TEMP) tables and runs the
  literal two-branch ``UNION ALL`` statement of Figure 9;
* the O(1) parameter set persists in a data-dictionary table and survives
  re-opening the database;
* optionally, an updatable *view* with an ``INSTEAD OF`` trigger and a
  user-defined ``fork_node`` function wraps the whole maintenance machinery
  behind plain ``INSERT`` statements -- the object-relational encapsulation
  the paper describes for Oracle8i's extensible indexing framework.

The ``now``/``infinity`` handling of Section 4.6 rides along: reserved fork
node values are injected into ``rightNodes`` at query time, with *no
modification of the SQL statement*.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Optional

from ..core.backbone import VirtualBackbone
from ..core.interval import validate_interval
from ..core.temporal import FORK_INF, FORK_NOW, UPPER_INF, UPPER_NOW
from . import schema

_PARAM_KEYS = ("offset", "left_root", "right_root", "minstep")
#: Sentinel stored for "no value yet" parameters in the data dictionary.
_NULL = None


class SQLRITree:
    """RI-tree over a DB-API connection (tested on sqlite3).

    Parameters
    ----------
    connection:
        An open sqlite3 connection; ``:memory:`` when omitted.
    name:
        Relation name; several trees may share a connection.
    attach:
        When true, attach to an existing relation of this name (re-opening a
        persistent database): the schema must exist and the parameters are
        loaded from the data dictionary instead of being created.

    Example
    -------
    >>> tree = SQLRITree()
    >>> tree.insert(3, 9, interval_id=1)
    >>> tree.insert(5, 15, interval_id=2)
    >>> sorted(tree.intersection(8, 12))
    [1, 2]
    """

    def __init__(self, connection: Optional[sqlite3.Connection] = None,
                 name: str = "Intervals", attach: bool = False,
                 now: int = 0) -> None:
        self.conn = connection if connection is not None \
            else sqlite3.connect(":memory:")
        self.name = name
        self.backbone = VirtualBackbone()
        self._now = now
        self._has_infinite = False
        self._has_now = False
        if attach:
            self._load_params()
        else:
            for statement in schema.create_interval_table(name):
                self.conn.execute(statement)
            for statement in schema.create_params_table(name):
                self.conn.execute(statement)
            self._save_params()
        for statement in schema.create_transient_tables():
            self.conn.execute(statement)
        self._register_udf()

    # ------------------------------------------------------------------
    # data dictionary (Section 5)
    # ------------------------------------------------------------------
    def _save_params(self) -> None:
        values = {
            "offset": self.backbone.offset,
            "left_root": self.backbone.left_root,
            "right_root": self.backbone.right_root,
            "minstep": self.backbone.minstep,
            "has_infinite": int(self._has_infinite),
            "has_now": int(self._has_now),
        }
        self.conn.executemany(
            f'INSERT OR REPLACE INTO {self.name}_params ("key", "value") '
            f'VALUES (?, ?)',
            list(values.items()))

    def _load_params(self) -> None:
        rows = dict(self.conn.execute(
            f'SELECT "key", "value" FROM {self.name}_params'))
        if not rows:
            raise ValueError(
                f"no persisted parameters for RI-tree {self.name!r}")
        self.backbone.offset = rows.get("offset")
        self.backbone.left_root = rows.get("left_root") or 0
        self.backbone.right_root = rows.get("right_root") or 0
        self.backbone.minstep = rows.get("minstep")
        self._has_infinite = bool(rows.get("has_infinite"))
        self._has_now = bool(rows.get("has_now"))

    # ------------------------------------------------------------------
    # updates (Figures 5 and 6)
    # ------------------------------------------------------------------
    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """Fork computation (no I/O) + the single INSERT of Figure 5."""
        node = self.backbone.register(lower, upper)
        self.conn.execute(
            schema.INSERT_SQL.format(name=self.name),
            {"node": node, "lower": lower, "upper": upper,
             "id": interval_id})
        self._save_params()

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Recompute the fork, delete with one statement."""
        validate_interval(lower, upper)
        if self.backbone.is_empty:
            raise KeyError((lower, upper, interval_id))
        node = self.backbone.fork_node(lower, upper)
        cursor = self.conn.execute(
            schema.DELETE_SQL.format(name=self.name),
            {"node": node, "lower": lower, "upper": upper,
             "id": interval_id})
        if cursor.rowcount != 1:
            raise KeyError((lower, upper, interval_id))

    def bulk_load(self, intervals: Iterable[tuple[int, int, int]]) -> None:
        """Register and insert many intervals inside one transaction."""
        rows = []
        for lower, upper, interval_id in intervals:
            node = self.backbone.register(lower, upper)
            rows.append({"node": node, "lower": lower, "upper": upper,
                         "id": interval_id})
        with self.conn:
            self.conn.executemany(
                schema.INSERT_SQL.format(name=self.name), rows)
        self._save_params()

    # ------------------------------------------------------------------
    # temporal records (Section 4.6)
    # ------------------------------------------------------------------
    def insert_infinite(self, lower: int, interval_id: int) -> None:
        """Insert ``[lower, infinity)`` under the reserved fork node."""
        if self.backbone.offset is None:
            self.backbone.offset = lower
        self.conn.execute(
            schema.INSERT_SQL.format(name=self.name),
            {"node": FORK_INF, "lower": lower, "upper": UPPER_INF,
             "id": interval_id})
        self._has_infinite = True
        self._save_params()

    def insert_until_now(self, lower: int, interval_id: int) -> None:
        """Insert ``[lower, now]`` under the reserved fork node."""
        if lower > self._now:
            raise ValueError(f"now-relative interval starts after now="
                             f"{self._now}")
        if self.backbone.offset is None:
            self.backbone.offset = lower
        self.conn.execute(
            schema.INSERT_SQL.format(name=self.name),
            {"node": FORK_NOW, "lower": lower, "upper": UPPER_NOW,
             "id": interval_id})
        self._has_now = True
        self._save_params()

    @property
    def now(self) -> int:
        """The clock for now-relative semantics."""
        return self._now

    def advance_to(self, timestamp: int) -> None:
        """Move the clock forward."""
        if timestamp < self._now:
            raise ValueError("clock moves forward only")
        self._now = timestamp

    # ------------------------------------------------------------------
    # queries (Figures 8 and 9)
    # ------------------------------------------------------------------
    def intersection(self, lower: int, upper: int) -> list[int]:
        """Fill the transient tables, run the Figure 9 statement."""
        validate_interval(lower, upper)
        left_count, right_count = self._fill_transient_tables(lower, upper)
        if left_count + right_count == 0:
            return []
        cursor = self.conn.execute(
            schema.INTERSECTION_SQL.format(name=self.name),
            {"lower": lower, "upper": upper})
        return [row[0] for row in cursor]

    def intersection_preliminary(self, lower: int, upper: int) -> list[int]:
        """The unsimplified three-branch OR query of Figure 8.

        Kept for the query-form ablation benchmark; results are identical
        to :meth:`intersection`.
        """
        validate_interval(lower, upper)
        if self.backbone.is_empty:
            return []
        # Note: unlike the final form, the BETWEEN branch lives in the SQL
        # itself, so the query must run even with empty transient tables.
        self._fill_transient_tables(lower, upper, fold_between=False)
        cursor = self.conn.execute(
            schema.PRELIMINARY_INTERSECTION_SQL.format(name=self.name),
            {"lower": lower, "upper": upper,
             "lowshift": self.backbone.shift(lower),
             "upshift": self.backbone.shift(upper)})
        return [row[0] for row in cursor]

    def stab(self, point: int) -> list[int]:
        """Stabbing query (degenerate intersection)."""
        return self.intersection(point, point)

    def _fill_transient_tables(self, lower: int, upper: int,
                               fold_between: bool = True) -> tuple[int, int]:
        """Descend the backbone, (re)populate leftNodes/rightNodes.

        Returns the two list lengths; for the final query form, both empty
        means the result is provably empty and the SQL can be skipped.
        """
        left: list[tuple[int, int]] = []
        right: list[tuple[int]] = []
        if not self.backbone.is_empty:
            l = self.backbone.shift(lower)
            u = self.backbone.shift(upper)
            for node in self.backbone.walk_toward(l):
                if node < l:
                    left.append((node, node))
            for node in self.backbone.walk_toward(u):
                if node > u:
                    right.append((node,))
            if fold_between:
                left.append((l, u))
        # Section 4.6: reserved fork nodes ride along rightNodes.
        if self._has_infinite:
            right.append((FORK_INF,))
        if self._has_now and lower <= self._now:
            right.append((FORK_NOW,))
        self.conn.execute("DELETE FROM leftNodes")
        self.conn.execute("DELETE FROM rightNodes")
        self.conn.executemany(
            'INSERT INTO leftNodes ("min", "max") VALUES (?, ?)', left)
        self.conn.executemany(
            'INSERT INTO rightNodes ("node") VALUES (?)', right)
        return len(left), len(right)

    # ------------------------------------------------------------------
    # object-relational wrapping: view + trigger + UDF (Section 5)
    # ------------------------------------------------------------------
    def _register_udf(self) -> None:
        def fork_node(lower: int, upper: int) -> int:
            return self.backbone.register(lower, upper)

        self.conn.create_function(f"ritree_fork_{self.name}", 2, fork_node)

    def create_view(self) -> str:
        """Create an updatable view hiding all index maintenance.

        ``INSERT INTO <name>_iv ("lower", "upper", "id") VALUES (...)``
        then behaves like inserting into a table with a built-in interval
        index: the trigger computes the fork node through the registered
        user-defined function -- "the complete index maintenance therefore
        may be managed by a trigger mechanism" (Section 5).  Call
        :meth:`sync_params` when done inserting to persist the dictionary.
        """
        view = f"{self.name}_iv"
        self.conn.execute(
            f'CREATE VIEW IF NOT EXISTS {view} AS '
            f'SELECT "lower", "upper", "id" FROM {self.name}')
        self.conn.execute(
            f'CREATE TRIGGER IF NOT EXISTS {view}_insert '
            f'INSTEAD OF INSERT ON {view} BEGIN '
            f'INSERT INTO {self.name} ("node", "lower", "upper", "id") '
            f'VALUES (ritree_fork_{self.name}(NEW."lower", NEW."upper"), '
            f'NEW."lower", NEW."upper", NEW."id"); END')
        return view

    def sync_params(self) -> None:
        """Persist the parameter dictionary after view-based inserts."""
        self._save_params()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def interval_count(self) -> int:
        """Number of stored intervals."""
        cursor = self.conn.execute(f"SELECT COUNT(*) FROM {self.name}")
        return cursor.fetchone()[0]

    def explain_intersection(self, lower: int, upper: int) -> list[str]:
        """The engine's query plan for Figure 9 (cf. the paper's Figure 10)."""
        self._fill_transient_tables(lower, upper)
        cursor = self.conn.execute(
            "EXPLAIN QUERY PLAN "
            + schema.INTERSECTION_SQL.format(name=self.name),
            {"lower": lower, "upper": upper})
        return [row[-1] for row in cursor]
