"""Tile Index on a real SQL engine (cross-validation backend).

The same 1-D hybrid tiling model as :class:`repro.methods.tindex.TileIndex`,
expressed as plain SQL: decomposed tile entries in a B+-tree-indexed table,
intersection as an indexed tile-range scan with exact refinement and
``DISTINCT`` de-duplication -- the equijoin formulation of Section 2.3.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Optional

from ..core.interval import validate_interval
from ..methods.tindex import DEFAULT_DOMAIN_BITS


class SQLTileIndex:
    """Fixed-level tile decomposition over sqlite3."""

    def __init__(
        self,
        connection: Optional[sqlite3.Connection] = None,
        fixed_level: int = 8,
        domain_bits: int = DEFAULT_DOMAIN_BITS,
        name: str = "TileEntries",
    ) -> None:
        if not 0 <= fixed_level <= domain_bits:
            raise ValueError(f"fixed_level {fixed_level} outside [0, {domain_bits}]")
        self.conn = (
            connection if connection is not None else sqlite3.connect(":memory:")
        )
        self.name = name
        self.fixed_level = fixed_level
        self.domain_bits = domain_bits
        self.tile_size = 2 ** (domain_bits - fixed_level)
        self.conn.execute(
            f'CREATE TABLE {name} ("tile" INTEGER, "lower" INTEGER, '
            f'"upper" INTEGER, "id" INTEGER)'
        )
        self.conn.execute(
            f'CREATE INDEX {name}_tiles ON {name} ("tile", "lower", "upper", "id")'
        )

    def _tiles(self, lower: int, upper: int) -> range:
        return range(lower // self.tile_size, upper // self.tile_size + 1)

    def insert(self, lower: int, upper: int, interval_id: int) -> None:
        """One row per covered fixed tile."""
        validate_interval(lower, upper)
        self.conn.executemany(
            f'INSERT INTO {self.name} ("tile", "lower", "upper", "id") '
            f"VALUES (?, ?, ?, ?)",
            [
                (tile, lower, upper, interval_id)
                for tile in self._tiles(lower, upper)
            ],
        )

    def delete(self, lower: int, upper: int, interval_id: int) -> None:
        """Remove all tile rows of the interval."""
        cursor = self.conn.execute(
            f'DELETE FROM {self.name} WHERE "lower" = ? AND "upper" = ? '
            f'AND "id" = ?',
            (lower, upper, interval_id),
        )
        if cursor.rowcount == 0:
            raise KeyError((lower, upper, interval_id))

    def bulk_load(self, intervals: Iterable[tuple[int, int, int]]) -> None:
        """Decompose and load in one transaction."""
        rows = []
        for lower, upper, interval_id in intervals:
            validate_interval(lower, upper)
            rows.extend(
                (tile, lower, upper, interval_id)
                for tile in self._tiles(lower, upper)
            )
        with self.conn:
            self.conn.executemany(
                f'INSERT INTO {self.name} ("tile", "lower", "upper", "id") '
                f"VALUES (?, ?, ?, ?)",
                rows,
            )

    def intersection(self, lower: int, upper: int) -> list[int]:
        """Indexed tile-range scan + refinement + DISTINCT."""
        validate_interval(lower, upper)
        lower_clip = max(lower, 0)
        upper_clip = min(upper, 2**self.domain_bits - 1)
        if lower_clip > upper_clip:
            return []
        cursor = self.conn.execute(
            f'SELECT DISTINCT "id" FROM {self.name} '
            f'WHERE "tile" BETWEEN ? AND ? AND "lower" <= ? AND "upper" >= ?',
            (
                lower_clip // self.tile_size,
                upper_clip // self.tile_size,
                upper,
                lower,
            ),
        )
        return [row[0] for row in cursor]

    @property
    def entry_count(self) -> int:
        """Total decomposed tile entries."""
        return self.conn.execute(f"SELECT COUNT(*) FROM {self.name}").fetchone()[0]
