"""SQL DDL for the RI-tree, verbatim from the paper.

Figure 2 of the paper::

    CREATE TABLE Intervals (node int, lower int, upper int, id int);
    CREATE INDEX lowerIndex ON Intervals (node, lower);
    CREATE INDEX upperIndex ON Intervals (node, upper);

Section 4.3 adds: "For this example the attribute id was included in the
indexes", which the index definitions below do.  Section 5 calls for "a
persistent data dictionary ... to store index specific system parameters
such as root or minstep"; that is the ``{name}_params`` table.

Beyond the paper's single-query statements, this module carries the
*set-at-a-time* variants used by the unified store API: the transient
node tables gain batch twins keyed by a probe id, so a whole probe
relation (an ``intersection_many`` batch, the outer side of an interval
join) is answered by ONE statement -- the literal Figure 9 form joined
against the probe relation, leaving the nested-loop plan to the
engine's own optimizer.

Column names are double-quoted because ``lower`` and ``upper`` collide with
SQL function names on some engines.
"""

from __future__ import annotations


def create_interval_table(name: str = "Intervals") -> list[str]:
    """DDL statements instantiating an RI-tree relation (paper Figure 2)."""
    return [
        f"CREATE TABLE {name} "
        f'("node" INTEGER, "lower" INTEGER, "upper" INTEGER, "id" INTEGER)',
        f'CREATE INDEX {name}_lowerIndex ON {name} ("node", "lower", "id")',
        f'CREATE INDEX {name}_upperIndex ON {name} ("node", "upper", "id")',
    ]


def create_params_table(name: str = "Intervals") -> list[str]:
    """The persistent data dictionary of Section 5."""
    return [
        f'CREATE TABLE {name}_params ("key" TEXT PRIMARY KEY, "value" INTEGER)',
    ]


def create_transient_tables() -> list[str]:
    """The transient query relations of Section 4.2/4.3.

    ``leftNodes`` carries the binary schema ``(min, max)`` introduced by the
    Section 4.3 transformation; ``rightNodes`` keeps the unary ``(node)``.
    They live in the session's temporary space, "causing no I/O effort".
    """
    return [
        'CREATE TEMP TABLE IF NOT EXISTS leftNodes ("min" INTEGER, "max" INTEGER)',
        'CREATE TEMP TABLE IF NOT EXISTS rightNodes ("node" INTEGER)',
    ]


def create_batch_transient_tables() -> list[str]:
    """Batch twins of the transient tables, keyed by a probe id.

    ``batchProbes`` is the probe relation itself (an ``INTEGER PRIMARY
    KEY`` makes it a rowid lookup inside the join); ``batchLeftNodes`` /
    ``batchRightNodes`` hold every probe's transient node collections
    side by side.  One fill cycle, one statement, the whole batch.
    """
    return [
        "CREATE TEMP TABLE IF NOT EXISTS batchProbes "
        '("qid" INTEGER PRIMARY KEY, "lower" INTEGER, "upper" INTEGER)',
        "CREATE TEMP TABLE IF NOT EXISTS batchLeftNodes "
        '("qid" INTEGER, "min" INTEGER, "max" INTEGER)',
        "CREATE TEMP TABLE IF NOT EXISTS batchRightNodes "
        '("qid" INTEGER, "node" INTEGER)',
    ]


#: The final intersection query -- paper Figure 9, verbatim modulo quoting.
INTERSECTION_SQL = """
SELECT "id" FROM {name} i, leftNodes l
WHERE i."node" BETWEEN l."min" AND l."max"
  AND i."upper" >= :lower
UNION ALL
SELECT "id" FROM {name} i, rightNodes r
WHERE i."node" = r."node" AND i."lower" <= :upper
"""

#: Count-only form of the final query (same plan, aggregated in-engine).
INTERSECTION_COUNT_SQL = "SELECT COUNT(*) FROM (" + INTERSECTION_SQL + ")"

#: The set-at-a-time batch query: Figure 9 joined against the probe
#: relation.  Each branch pairs a probe's own transient entries with the
#: probe's bounds, so the engine's optimizer drives one nested-loop plan
#: over the whole batch instead of Python looping statements.
BATCH_INTERSECTION_SQL = """
SELECT q."qid", i."id" FROM {name} i, batchLeftNodes l, batchProbes q
WHERE l."qid" = q."qid"
  AND i."node" BETWEEN l."min" AND l."max"
  AND i."upper" >= q."lower"
UNION ALL
SELECT q."qid", i."id" FROM {name} i, batchRightNodes r, batchProbes q
WHERE r."qid" = q."qid"
  AND i."node" = r."node" AND i."lower" <= q."upper"
"""

#: Count-only form of the batch query (the join's ``COUNT(*)``).
BATCH_COUNT_SQL = "SELECT COUNT(*) FROM (" + BATCH_INTERSECTION_SQL + ")"

#: The preliminary three-branch OR query -- paper Figure 8 (for the ablation
#: benchmark comparing it with the final form above).
PRELIMINARY_INTERSECTION_SQL = """
SELECT "id" FROM {name} i
WHERE EXISTS (SELECT 1 FROM leftNodes l
              WHERE i."node" = l."min" AND l."min" = l."max")
      AND i."upper" >= :lower
   OR EXISTS (SELECT 1 FROM rightNodes r WHERE i."node" = r."node")
      AND i."lower" <= :upper
   OR i."node" BETWEEN :lowshift AND :upshift
"""

#: Single-statement insertion -- paper Figure 5.
INSERT_SQL = (
    'INSERT INTO {name} ("node", "lower", "upper", "id") '
    "VALUES (:node, :lower, :upper, :id)"
)

#: Single-statement deletion (Section 3.3: deletion mirrors insertion).
DELETE_SQL = (
    'DELETE FROM {name} WHERE "node" = :node AND "lower" = :lower '
    'AND "upper" = :upper AND "id" = :id'
)

#: IST range query -- paper Figure 11.
IST_QUERY_SQL = """
SELECT "id" FROM {name} i
WHERE i."upper" >= :lower AND i."lower" <= :upper
"""


def predicate_intersection_sql(name: str, refine: str | None) -> str:
    """The Figure 9 statement rewritten for a predicate query.

    The transient tables are filled for the predicate's *candidate
    range* (bound as ``:clower`` / ``:cupper``) and the predicate's
    defining endpoint formula -- referencing the original query bounds
    ``:lower`` / ``:upper`` -- is appended to the WHERE clause of both
    branches.  ``refine=None`` means the candidates are exact (the
    ``intersects`` / ``stab`` predicates) and the statement degenerates
    to the literal Figure 9 form.
    """
    extra = f"  AND {refine}\n" if refine else ""
    return (
        f'SELECT "id" FROM {name} i, leftNodes l\n'
        f'WHERE i."node" BETWEEN l."min" AND l."max"\n'
        f'  AND i."upper" >= :clower\n'
        f"{extra}"
        f"UNION ALL\n"
        f'SELECT "id" FROM {name} i, rightNodes r\n'
        f'WHERE i."node" = r."node" AND i."lower" <= :cupper\n'
        f"{extra}"
    )
