"""SQL DDL for the RI-tree, verbatim from the paper.

Figure 2 of the paper::

    CREATE TABLE Intervals (node int, lower int, upper int, id int);
    CREATE INDEX lowerIndex ON Intervals (node, lower);
    CREATE INDEX upperIndex ON Intervals (node, upper);

Section 4.3 adds: "For this example the attribute id was included in the
indexes", which the index definitions below do.  Section 5 calls for "a
persistent data dictionary ... to store index specific system parameters
such as root or minstep"; that is the ``{name}_params`` table.

Beyond the paper's single-query statements, this module carries the
*set-at-a-time* variants used by the unified store API: the transient
node tables gain batch twins keyed by a probe id, so a whole probe
relation (an ``intersection_many`` batch, the outer side of an interval
join) is answered by ONE statement -- the literal Figure 9 form joined
against the probe relation, leaving the nested-loop plan to the
engine's own optimizer.

Column names are double-quoted because ``lower`` and ``upper`` collide with
SQL function names on some engines.
"""

from __future__ import annotations

from ..core.temporal import FORK_NOW

#: The stored row's *effective* upper bound: now-relative rows (reserved
#: fork node of Section 4.6) grow with the clock, so predicate
#: refinements read their upper bound from the ``:now`` parameter; the
#: ``UPPER_INF`` sentinel of infinite rows already behaves as +infinity
#: under every endpoint comparison inside the supported data space.
EFFECTIVE_UPPER = (
    f'(CASE WHEN i."node" = {FORK_NOW} THEN :now ELSE i."upper" END)'
)


def create_interval_table(name: str = "Intervals") -> list[str]:
    """DDL statements instantiating an RI-tree relation (paper Figure 2)."""
    return [
        f"CREATE TABLE {name} "
        f'("node" INTEGER, "lower" INTEGER, "upper" INTEGER, "id" INTEGER)',
        f'CREATE INDEX {name}_lowerIndex ON {name} ("node", "lower", "id")',
        f'CREATE INDEX {name}_upperIndex ON {name} ("node", "upper", "id")',
    ]


def create_params_table(name: str = "Intervals") -> list[str]:
    """The persistent data dictionary of Section 5."""
    return [
        f'CREATE TABLE {name}_params ("key" TEXT PRIMARY KEY, "value" INTEGER)',
    ]


def create_transient_tables() -> list[str]:
    """The transient query relations of Section 4.2/4.3.

    ``leftNodes`` carries the binary schema ``(min, max)`` introduced by the
    Section 4.3 transformation; ``rightNodes`` keeps the unary ``(node)``.
    They live in the session's temporary space, "causing no I/O effort".
    """
    return [
        'CREATE TEMP TABLE IF NOT EXISTS leftNodes ("min" INTEGER, "max" INTEGER)',
        'CREATE TEMP TABLE IF NOT EXISTS rightNodes ("node" INTEGER)',
    ]


def create_batch_transient_tables() -> list[str]:
    """Batch twins of the transient tables, keyed by a probe id.

    ``batchProbes`` is the probe relation itself (an ``INTEGER PRIMARY
    KEY`` makes it a rowid lookup inside the join); ``batchLeftNodes`` /
    ``batchRightNodes`` hold every probe's transient node collections
    side by side.  One fill cycle, one statement, the whole batch.

    ``lower``/``upper`` are the bounds the Figure 9 branches scan -- the
    probe's own bounds for the intersection join, the *candidate range*
    of the inverse relation for a predicate join; ``plower``/``pupper``
    carry the probe's original bounds for the predicate refinement (NULL
    and unused on the intersection path).
    """
    return [
        "CREATE TEMP TABLE IF NOT EXISTS batchProbes "
        '("qid" INTEGER PRIMARY KEY, "lower" INTEGER, "upper" INTEGER, '
        '"plower" INTEGER, "pupper" INTEGER)',
        "CREATE TEMP TABLE IF NOT EXISTS batchLeftNodes "
        '("qid" INTEGER, "min" INTEGER, "max" INTEGER)',
        "CREATE TEMP TABLE IF NOT EXISTS batchRightNodes "
        '("qid" INTEGER, "node" INTEGER)',
    ]


#: The final intersection query -- paper Figure 9, verbatim modulo quoting.
INTERSECTION_SQL = """
SELECT "id" FROM {name} i, leftNodes l
WHERE i."node" BETWEEN l."min" AND l."max"
  AND i."upper" >= :lower
UNION ALL
SELECT "id" FROM {name} i, rightNodes r
WHERE i."node" = r."node" AND i."lower" <= :upper
"""

#: Count-only form of the final query (same plan, aggregated in-engine).
INTERSECTION_COUNT_SQL = "SELECT COUNT(*) FROM (" + INTERSECTION_SQL + ")"

#: The set-at-a-time batch query: Figure 9 joined against the probe
#: relation.  Each branch pairs a probe's own transient entries with the
#: probe's bounds, so the engine's optimizer drives one nested-loop plan
#: over the whole batch instead of Python looping statements.
BATCH_INTERSECTION_SQL = """
SELECT q."qid", i."id" FROM {name} i, batchLeftNodes l, batchProbes q
WHERE l."qid" = q."qid"
  AND i."node" BETWEEN l."min" AND l."max"
  AND i."upper" >= q."lower"
UNION ALL
SELECT q."qid", i."id" FROM {name} i, batchRightNodes r, batchProbes q
WHERE r."qid" = q."qid"
  AND i."node" = r."node" AND i."lower" <= q."upper"
"""

#: Count-only form of the batch query (the join's ``COUNT(*)``).
BATCH_COUNT_SQL = "SELECT COUNT(*) FROM (" + BATCH_INTERSECTION_SQL + ")"

#: The preliminary three-branch OR query -- paper Figure 8 (for the ablation
#: benchmark comparing it with the final form above).
PRELIMINARY_INTERSECTION_SQL = """
SELECT "id" FROM {name} i
WHERE EXISTS (SELECT 1 FROM leftNodes l
              WHERE i."node" = l."min" AND l."min" = l."max")
      AND i."upper" >= :lower
   OR EXISTS (SELECT 1 FROM rightNodes r WHERE i."node" = r."node")
      AND i."lower" <= :upper
   OR i."node" BETWEEN :lowshift AND :upshift
"""

#: Single-statement insertion -- paper Figure 5.
INSERT_SQL = (
    'INSERT INTO {name} ("node", "lower", "upper", "id") '
    "VALUES (:node, :lower, :upper, :id)"
)

#: Single-statement deletion (Section 3.3: deletion mirrors insertion).
DELETE_SQL = (
    'DELETE FROM {name} WHERE "node" = :node AND "lower" = :lower '
    'AND "upper" = :upper AND "id" = :id'
)

#: IST range query -- paper Figure 11.
IST_QUERY_SQL = """
SELECT "id" FROM {name} i
WHERE i."upper" >= :lower AND i."lower" <= :upper
"""


def join_refine_fragment(refine: str) -> str:
    """Subject-swap a predicate's WHERE fragment for the batch join.

    ``sql_refine`` states the predicate with the *stored* row as the
    subject and the query parameters as the reference.  In a predicate
    join the **probe** is the subject, so the roles swap: the probe's
    original bounds (``q."plower"`` / ``q."pupper"``) take the stored
    columns' places and the stored columns take the parameters' --
    yielding the predicate's *direct* formula over the pair, which keeps
    degenerate (point) intervals on the nested-loop oracle's boundary
    conventions (the inverse formula may disagree there).

    Every swapped column reference is wrapped in sqlite's unary ``+`` so
    the refinement stays a *residual* filter: left bare, the optimizer
    chases a refinement equality into an AUTOMATIC COVERING INDEX (a
    per-statement scan-and-build) or inverts the join order into a full
    scan of the interval relation, instead of driving the plan through
    the two Figure 2 indexes via the transient node collections.  The
    stored upper bound reads through :data:`EFFECTIVE_UPPER`, so
    now-relative rows (Section 4.6) refine against the clock (the
    ``:now`` parameter), exactly as the simulated engine's leaf-slice
    refinement materialises them.
    """
    return (
        refine.replace('i."lower"', '\x00PL\x00')
        .replace('i."upper"', '\x00PU\x00')
        .replace(":lower", '+i."lower"')
        .replace(":upper", "+" + EFFECTIVE_UPPER)
        .replace('\x00PL\x00', '+q."plower"')
        .replace('\x00PU\x00', '+q."pupper"')
    )


def predicate_batch_intersection_sql(name: str, refine: str) -> str:
    """The set-at-a-time batch statement for a predicate join.

    The literal Figure 9 form joined against the probe relation, exactly
    as :data:`BATCH_INTERSECTION_SQL`, except that the per-probe
    ``lower``/``upper`` columns now hold the inverse relation's
    *candidate range* and the subject-swapped refinement fragment
    (:func:`join_refine_fragment`) is appended to both branches.  Still
    ONE statement for the whole probe batch, still driven through both
    Figure 2 indexes by the engine's own optimizer.
    """
    extra = f"  AND {join_refine_fragment(refine)}\n"
    return (
        f'SELECT q."qid", i."id" FROM {name} i, batchLeftNodes l, '
        f"batchProbes q\n"
        f'WHERE l."qid" = q."qid"\n'
        f'  AND i."node" BETWEEN l."min" AND l."max"\n'
        f'  AND i."upper" >= q."lower"\n'
        f"{extra}"
        f"UNION ALL\n"
        f'SELECT q."qid", i."id" FROM {name} i, batchRightNodes r, '
        f"batchProbes q\n"
        f'WHERE r."qid" = q."qid"\n'
        f'  AND i."node" = r."node" AND i."lower" <= q."upper"\n'
        f"{extra}"
    )


def predicate_batch_count_sql(name: str, refine: str) -> str:
    """Count-only form of the predicate batch join (same plan)."""
    return (
        "SELECT COUNT(*) FROM ("
        + predicate_batch_intersection_sql(name, refine)
        + ")"
    )


def predicate_intersection_sql(name: str, refine: str | None) -> str:
    """The Figure 9 statement rewritten for a predicate query.

    The transient tables are filled for the predicate's *candidate
    range* (bound as ``:clower`` / ``:cupper``) and the predicate's
    defining endpoint formula -- referencing the original query bounds
    ``:lower`` / ``:upper`` -- is appended to the WHERE clause of both
    branches, with the stored upper bound read through
    :data:`EFFECTIVE_UPPER` so reserved Section 4.6 rows participate
    with their effective bounds.  ``refine=None`` means the candidates
    are exact (the ``intersects`` / ``stab`` predicates) and the
    statement degenerates to the literal Figure 9 form.
    """
    if refine:
        refine = refine.replace('i."upper"', EFFECTIVE_UPPER)
    extra = f"  AND {refine}\n" if refine else ""
    return (
        f'SELECT "id" FROM {name} i, leftNodes l\n'
        f'WHERE i."node" BETWEEN l."min" AND l."max"\n'
        f'  AND i."upper" >= :clower\n'
        f"{extra}"
        f"UNION ALL\n"
        f'SELECT "id" FROM {name} i, rightNodes r\n'
        f'WHERE i."node" = r."node" AND i."lower" <= :cupper\n'
        f"{extra}"
    )
