"""SQL DDL for the RI-tree, verbatim from the paper.

Figure 2 of the paper::

    CREATE TABLE Intervals (node int, lower int, upper int, id int);
    CREATE INDEX lowerIndex ON Intervals (node, lower);
    CREATE INDEX upperIndex ON Intervals (node, upper);

Section 4.3 adds: "For this example the attribute id was included in the
indexes", which the index definitions below do.  Section 5 calls for "a
persistent data dictionary ... to store index specific system parameters
such as root or minstep"; that is the ``{name}_params`` table.

Column names are double-quoted because ``lower`` and ``upper`` collide with
SQL function names on some engines.
"""

from __future__ import annotations


def create_interval_table(name: str = "Intervals") -> list[str]:
    """DDL statements instantiating an RI-tree relation (paper Figure 2)."""
    return [
        f'CREATE TABLE {name} '
        f'("node" INTEGER, "lower" INTEGER, "upper" INTEGER, "id" INTEGER)',
        f'CREATE INDEX {name}_lowerIndex ON {name} ("node", "lower", "id")',
        f'CREATE INDEX {name}_upperIndex ON {name} ("node", "upper", "id")',
    ]


def create_params_table(name: str = "Intervals") -> list[str]:
    """The persistent data dictionary of Section 5."""
    return [
        f'CREATE TABLE {name}_params '
        f'("key" TEXT PRIMARY KEY, "value" INTEGER)',
    ]


def create_transient_tables() -> list[str]:
    """The transient query relations of Section 4.2/4.3.

    ``leftNodes`` carries the binary schema ``(min, max)`` introduced by the
    Section 4.3 transformation; ``rightNodes`` keeps the unary ``(node)``.
    They live in the session's temporary space, "causing no I/O effort".
    """
    return [
        'CREATE TEMP TABLE IF NOT EXISTS leftNodes '
        '("min" INTEGER, "max" INTEGER)',
        'CREATE TEMP TABLE IF NOT EXISTS rightNodes ("node" INTEGER)',
    ]


#: The final intersection query -- paper Figure 9, verbatim modulo quoting.
INTERSECTION_SQL = """
SELECT "id" FROM {name} i, leftNodes l
WHERE i."node" BETWEEN l."min" AND l."max"
  AND i."upper" >= :lower
UNION ALL
SELECT "id" FROM {name} i, rightNodes r
WHERE i."node" = r."node" AND i."lower" <= :upper
"""

#: The preliminary three-branch OR query -- paper Figure 8 (for the ablation
#: benchmark comparing it with the final form above).
PRELIMINARY_INTERSECTION_SQL = """
SELECT "id" FROM {name} i
WHERE EXISTS (SELECT 1 FROM leftNodes l
              WHERE i."node" = l."min" AND l."min" = l."max")
      AND i."upper" >= :lower
   OR EXISTS (SELECT 1 FROM rightNodes r WHERE i."node" = r."node")
      AND i."lower" <= :upper
   OR i."node" BETWEEN :lowshift AND :upshift
"""

#: Single-statement insertion -- paper Figure 5.
INSERT_SQL = (
    'INSERT INTO {name} ("node", "lower", "upper", "id") '
    'VALUES (:node, :lower, :upper, :id)'
)

#: Single-statement deletion (Section 3.3: deletion mirrors insertion).
DELETE_SQL = (
    'DELETE FROM {name} WHERE "node" = :node AND "lower" = :lower '
    'AND "upper" = :upper AND "id" = :id'
)

#: IST range query -- paper Figure 11.
IST_QUERY_SQL = """
SELECT "id" FROM {name} i
WHERE i."upper" >= :lower AND i."lower" <= :upper
"""
