"""A miniature rerun of the paper's Section 6 comparison.

Builds the RI-tree, Tile Index, IST, MAP21 and Window-List over one
D1-style workload and prints physical I/O and response time per query --
a condensed, single-screen version of Figures 13/14.  For the real
experiment suite use ``python -m repro.bench.run``.

Run:  python examples/method_comparison.py
"""

from repro.bench.harness import build_method, run_query_batch
from repro.core import RITree
from repro.methods import ISTree, Map21, TileIndex, WindowList
from repro.workloads import d1, range_queries


def main() -> None:
    workload = d1(20_000, 2000, seed=0)
    queries = range_queries(workload, selectivity=0.01, count=30, seed=1)
    print(f"workload: {workload.name}, {len(queries)} queries "
          f"at ~1% selectivity\n")

    factories = {
        "RI-tree": lambda db: RITree(db),
        "T-index (level 10)": lambda db: TileIndex(db, fixed_level=10),
        "IST (D-order)": lambda db: ISTree(db, ordering="D"),
        "MAP21": lambda db: Map21(db),
        "Window-List": lambda db: WindowList(db),
    }
    print(f"{'method':20s} {'physical I/O':>12s} {'time [ms]':>10s} "
          f"{'results':>8s}")
    baseline = None
    for label, factory in factories.items():
        method = build_method(factory, workload.records)
        batch = run_query_batch(method, queries)
        print(f"{label:20s} {batch.physical_io_per_query:12.1f} "
              f"{batch.response_time_per_query * 1000:10.2f} "
              f"{batch.results_per_query:8.1f}")
        if baseline is None:
            baseline = batch
        else:
            assert batch.results_per_query == baseline.results_per_query

    print("\nAll methods returned identical result counts. "
          "Shapes match the paper: the RI-tree leads on physical I/O.")
    print("OK")


if __name__ == "__main__":
    main()
