"""Interval joins: which reservations overlap which maintenance windows?

Joins two interval relations with all three strategies of
``repro.core.join`` -- the RI-tree index-nested-loop join, the
Piatov-style plane sweep, and the brute-force oracle -- and shows that
they emit the identical pair set while paying very different costs.

Run:  PYTHONPATH=src python examples/interval_join.py
"""

from repro.bench.harness import run_join_batch
from repro.core import RITree
from repro.core.join import interval_join
from repro.workloads import join_workload


def main() -> None:
    # Two relations with independently controlled cardinality/duration:
    # few long "maintenance windows" probing many short "reservations".
    workload = join_workload(
        outer_n=60, inner_n=600, outer_d=5000, inner_d=800, seed=42
    )
    outer = workload.outer.records
    inner = workload.inner.records
    print(f"workload: {workload.name}")
    print(
        f"outer={workload.outer.n} inner={workload.inner.n} "
        f"cross product={workload.pair_domain}"
    )

    results = {
        strategy: sorted(interval_join(outer, inner, strategy))
        for strategy in ("nested-loop", "sweep", "index")
    }
    sizes = {name: len(pairs) for name, pairs in results.items()}
    print(f"pairs per strategy: {sizes}")
    assert results["sweep"] == results["nested-loop"]
    assert results["index"] == results["nested-loop"]
    assert len(results["sweep"]) == workload.expected_pairs()

    # The index join's I/O is accounted like any Figure 13 query batch.
    tree = RITree()
    tree.bulk_load(inner)
    tree.db.flush()
    batch = run_join_batch(tree, outer)
    print(
        f"index-nested-loop join: {batch.pairs} pairs, "
        f"{batch.physical_io} physical / {batch.logical_io} logical "
        f"block reads ({batch.io_per_pair:.3f} physical I/O per pair)"
    )

    print("OK")


if __name__ == "__main__":
    main()
