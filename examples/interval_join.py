"""Interval joins: which reservations overlap which maintenance windows?

Joins two interval relations through the strategies of
``repro.core.join`` -- the RI-tree index-nested-loop join, the
Piatov-style plane sweep, the brute-force oracle, and the cost-model
``auto`` planner -- and shows that the identical pair set comes back from
both engines (the simulated storage engine and the sqlite3 backend,
where the join runs as ONE set-at-a-time SQL statement) and under
Allen-relation join predicates.

Run:  PYTHONPATH=src python examples/interval_join.py
"""

from repro.bench.harness import run_join_batch
from repro.core import RITree
from repro.core.join import AutoJoin, interval_join
from repro.sql import SQLRITree
from repro.workloads import join_workload


def main() -> None:
    # Two relations with independently controlled cardinality/duration:
    # few long "maintenance windows" probing many short "reservations".
    workload = join_workload(
        outer_n=60, inner_n=600, outer_d=5000, inner_d=800, seed=42
    )
    outer = workload.outer.records
    inner = workload.inner.records
    print(f"workload: {workload.name}")
    print(
        f"outer={workload.outer.n} inner={workload.inner.n} "
        f"cross product={workload.pair_domain}"
    )

    results = {
        strategy: sorted(interval_join(outer, inner, strategy=strategy))
        for strategy in ("nested-loop", "sweep", "index", "auto")
    }
    sizes = {name: len(pairs) for name, pairs in results.items()}
    print(f"pairs per strategy: {sizes}")
    for name, pairs in results.items():
        assert pairs == results["nested-loop"], name
    assert len(results["sweep"]) == workload.expected_pairs()

    # The same join on the sqlite3 backend: the probe relation goes into
    # a TEMP table and the literal Figure 9 form answers the whole batch
    # in one statement -- identical pair set, real SQL optimizer.
    sql_tree = SQLRITree()
    sql_tree.bulk_load(inner)
    sql_pairs = sorted(sql_tree.join_pairs(outer))
    assert sql_pairs == results["nested-loop"]
    auto = AutoJoin(method=sql_tree)
    assert sorted(auto.pairs(outer, inner)) == sql_pairs
    print(
        f"sqlite backend: {len(sql_pairs)} pairs from one set-at-a-time "
        f"statement; auto planner chose {auto.last_decision.choice!r}"
    )

    # Allen-relation join predicates ride on the same API -- on every
    # strategy: the index path probes the predicate's inverse relation
    # (stored-subject question) and the auto planner prices the
    # relation's selectivity before dispatching.
    before = interval_join(outer, inner, strategy="sweep", predicate="before")
    during = interval_join(outer, inner, strategy="sweep", predicate="during")
    assert sorted(before) == sorted(
        interval_join(outer, inner, strategy="nested-loop", predicate="before")
    )
    assert sorted(before) == sorted(
        interval_join(outer, inner, strategy="index", predicate="before")
    )
    auto_pred = AutoJoin(predicate="during")
    assert sorted(auto_pred.pairs(outer, inner)) == sorted(during)
    print(
        f"predicate joins: {len(before)} 'before' pairs, "
        f"{len(during)} 'during' pairs (auto dispatched 'during' to "
        f"{auto_pred.last_dispatch!r})"
    )
    assert sorted(sql_tree.join_pairs(outer, predicate="during")) == \
        sorted(during)

    # The index join's I/O is accounted like any Figure 13 query batch.
    tree = RITree()
    tree.bulk_load(inner)
    tree.db.flush()
    batch = run_join_batch(tree, outer)
    print(
        f"index-nested-loop join: {batch.pairs} pairs, "
        f"{batch.physical_io} physical / {batch.logical_io} logical "
        f"block reads ({batch.io_per_pair:.3f} physical I/O per pair)"
    )

    print("OK")


if __name__ == "__main__":
    main()
