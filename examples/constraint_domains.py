"""Finite-domain constraint filtering with interval indexes (Section 1).

The paper's introduction motivates interval management "for handling
interval and finite domain constraints in declarative systems [KS 91]
[KRVV 93] [HP 94]".  This example plays that role: a scheduling system
holds many unary constraints of the form ``variable in [a, b]`` and must
answer, for a candidate assignment or a domain restriction, which
constraints are affected.

* ``stab(v)`` finds every constraint consistent with value ``v``;
* ``intersection(a, b)`` finds every constraint whose domain overlaps a
  proposed restriction — the supports to revise in an arc-consistency
  pass;
* Allen's ``during``/``contains`` relations (Section 4.5) split them into
  constraints subsumed by, or subsuming, the restriction.

Run:  python examples/constraint_domains.py
"""

from repro.core import RITree, topology

# Constraints over a shared variable "start time of task T" (minutes).
CONSTRAINTS = {
    1: ("crane available", 480, 720),
    2: ("crew shift", 540, 1020),
    3: ("daylight", 360, 1080),
    4: ("noise permit", 600, 660),
    5: ("inspection slot", 615, 645),
    6: ("second crew shift", 1020, 1440),
}


def main() -> None:
    index = RITree()
    for constraint_id, (_, lower, upper) in CONSTRAINTS.items():
        index.insert(lower, upper, constraint_id)

    def names(ids):
        return [CONSTRAINTS[i][0] for i in sorted(ids)]

    # Which constraints admit starting at 10:30 (630)?
    consistent = index.stab(630)
    print("constraints consistent with start=630:", names(consistent))

    # Propagation: the solver restricts the domain to [600, 660].
    restriction = (600, 660)
    touched = index.intersection(*restriction)
    print("constraints touched by restriction [600, 660]:", names(touched))

    # Constraints strictly inside the restriction survive unchanged;
    # constraints strictly containing it impose no further pruning.
    inside = topology.during(index, *restriction)
    around = topology.contains(index, *restriction)
    print("  subsumed by the restriction   :", names(inside))
    print("  subsuming the restriction     :", names(around))

    # A value with no support at all -> inconsistency detected in O(log n).
    assert index.stab(200) == []
    print("start=200 has no supporting constraint (inconsistent)")

    assert sorted(consistent) == [1, 2, 3, 4, 5]
    assert sorted(touched) == [1, 2, 3, 4, 5]
    assert inside == [5]
    assert sorted(around) == [1, 2, 3]
    print("OK")


if __name__ == "__main__":
    main()
