"""The object-relational wrapping on a real SQL engine (paper Section 5).

Shows the RI-tree living entirely inside sqlite3 behind the unified
:class:`~repro.core.access.IntervalStore` API:

* the literal Figure 2 DDL and Figure 9 two-branch ``UNION ALL`` query,
* a whole query batch answered set-at-a-time (``intersection_many``:
  one transient-table fill cycle, ONE statement),
* the interval join evaluated as a single SQL statement over a TEMP
  probe relation, planned by ``RITreeCostModel.from_sql_tree``
  statistics exactly like the simulated engine plans,
* Allen-relation predicate queries compiled to a WHERE-clause rewrite,
* the persistent parameter dictionary surviving a database re-open,
* an updatable view + trigger + user-defined function that hides all
  index maintenance behind plain ``INSERT`` statements -- the paper's
  "end users can use the Relational Interval Tree just like a built-in
  index".

Run:  PYTHONPATH=src python examples/sqlite_integration.py
"""

import os
import sqlite3
import tempfile

from repro.core.join import AutoJoin
from repro.sql import SQLRITree


def main() -> None:
    path = os.path.join(tempfile.mkdtemp(), "reservations.db")
    connection = sqlite3.connect(path)

    # --- create and fill through the view/trigger wrapping -------------
    tree = SQLRITree(connection, name="Reservations")
    view = tree.create_view()
    reservations = [
        (900, 1030, 1),  # room booked 9:00-10:30
        (1000, 1200, 2),  # overlapping booking
        (1300, 1400, 3),
        (1330, 1500, 4),
    ]
    connection.executemany(
        f'INSERT INTO {view} ("lower", "upper", "id") VALUES (?, ?, ?)',
        reservations,
    )
    tree.sync_params()
    print(f"{tree.interval_count} reservations inserted through the view")

    # --- query with the paper's Figure 9 statement ----------------------
    print("conflicts with 10:00-13:15:", sorted(tree.intersection(1000, 1315)))
    print("who is in the room at 13:45:", sorted(tree.stab(1345)))

    # --- a whole batch, one statement ------------------------------------
    windows = [(900, 1000), (1200, 1300), (1400, 1500)]
    batch = [sorted(ids) for ids in tree.intersection_many(windows)]
    print("batched answers (one set-at-a-time statement):", batch)
    assert batch == [sorted(tree.intersection(lo, hi)) for lo, hi in windows]

    # --- predicate queries: the WHERE-clause rewrite ----------------------
    print("bookings strictly during 12:30-15:30:", tree.query(1230, 1530, predicate="during"))
    print("bookings meeting a 12:00 start:", tree.query(1200, 1300, predicate="meets"))
    print("bookings before 13:00:", tree.query(1300, 1400, predicate="before"))

    # --- the set-at-a-time SQL join, planned like the simulated engine ----
    maintenance = [(950, 1100, 91), (1320, 1360, 92)]
    pairs = tree.join_pairs(maintenance)
    print("maintenance windows x reservations (one SQL statement):",
          sorted(pairs))
    auto = AutoJoin(method=tree)
    auto_pairs = auto.pairs(maintenance, None)
    decision = auto.last_decision
    print(f"auto planner chose {decision.choice!r} "
          f"(predicted {decision.result_count:.0f} pairs)")
    assert sorted(auto_pairs) == sorted(pairs)

    # --- the Figure 10 execution plan -----------------------------------
    print("\nquery plan (cf. paper Figure 10):")
    for line in tree.explain_intersection(1000, 1315):
        print("   ", line)

    # --- persistence -----------------------------------------------------
    connection.commit()
    connection.close()
    reopened_connection = sqlite3.connect(path)
    reopened = SQLRITree(reopened_connection, name="Reservations", attach=True)
    print("\nreopened database; parameters restored:",
          reopened.backbone.params())
    print("conflicts with 10:00-13:15 after reopen:",
          sorted(reopened.intersection(1000, 1315)))

    assert sorted(reopened.intersection(1000, 1315)) == [1, 2, 3]
    reopened_connection.close()
    os.unlink(path)
    print("OK")


if __name__ == "__main__":
    main()
