"""An interval store behind a socket: serve it, query it remotely.

Starts the asyncio serving layer in-process over a HINT store built by
the backend registry, connects a ``RemoteStore`` to it, and shows that
the full store contract -- intersections, predicate queries, joins,
temporal ``now``-rows, verification -- answers identically through the
wire, then reads the service's observability surface (``stats``).

Run:  python examples/interval_service.py
"""

import asyncio
import random
import threading

from repro.core.stores import available_backends, create_store
from repro.core.temporal import UPPER_INF
from repro.service.client import RemoteStore, ServiceClient
from repro.service.server import IntervalService


def serve_in_thread(service):
    """Bind the service on an ephemeral port; return (host, port, loop)."""
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    address = {}

    async def runner():
        server = await asyncio.start_server(service.handle_client, "127.0.0.1", 0)
        address["host"], address["port"] = server.sockets[0].getsockname()[:2]
        ready.set()
        async with server:
            await service.shutdown_requested.wait()

    thread = threading.Thread(
        target=lambda: loop.run_until_complete(runner()), daemon=True
    )
    thread.start()
    assert ready.wait(10), "service failed to start"
    return address["host"], address["port"], loop, thread


def main() -> None:
    rng = random.Random(11)
    records = [
        (lower, lower + rng.randrange(1, 500), interval_id)
        for interval_id, lower in enumerate(
            rng.randrange(0, 30_000) for _ in range(400)
        )
    ]

    # Every backend the registry knows could sit behind this socket.
    print("registered backends:", ", ".join(available_backends()))
    store = create_store("hint", now=5_000)
    local = create_store("hint", now=5_000)
    for target in (store, local):
        target.bulk_load(records)

    service = IntervalService(store)
    host, port, loop, thread = serve_in_thread(service)
    print(f"serving {store.method_name} on {host}:{port}")

    remote = RemoteStore.connect(host, port)
    try:
        # The remote proxy speaks the whole IntervalStore contract.
        window = remote.intersection(4_000, 6_000)
        assert sorted(window) == sorted(local.intersection(4_000, 6_000))
        count = remote.intersection_count(0, 30_000)
        assert count == local.intersection_count(0, 30_000)
        during = remote.query(2_000, 9_000, predicate="during")
        assert sorted(during) == sorted(local.query(2_000, 9_000, predicate="during"))
        probes = [(q * 4_000, q * 4_000 + 2_500, 900 + q) for q in range(6)]
        assert sorted(remote.join_pairs(probes)) == sorted(local.join_pairs(probes))
        print(
            f"remote twin agrees: {remote.intersection_count(0, 30_000)} "
            f"intervals match on every query form"
        )

        # Mutations and temporal rows travel too, sentinels intact.
        for target in (remote, local):
            target.insert(100, 200, 10_000)
            target.insert_infinite(6_000, 10_001)
            target.advance_to(7_500)
        open_rows = remote.intersection(6_500, UPPER_INF)
        assert sorted(open_rows) == sorted(local.intersection(6_500, UPPER_INF))
        assert remote.verify().ok
        clock = remote.call("info")["now"]
        print(f"after mutations: clock {clock}, verify ok")
    finally:
        remote.close()

    # The observability surface: counters + latency histograms per op.
    with ServiceClient(host, port) as client:
        stats = client.call("stats")
        served_ops = {op: row["count"] for op, row in sorted(stats["ops"].items())}
        print("ops served:", served_ops)
        assert served_ops["intersection"] >= 2
        client.call("shutdown")
    thread.join(10)
    service.close()
    print("OK")


if __name__ == "__main__":
    main()
