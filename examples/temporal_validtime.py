"""Valid-time table with ``now`` and ``infinity`` (paper Section 4.6).

Models an employee-assignment table: each row is valid over a time
interval.  Open assignments end at *now* (they grow with the clock);
planned indefinite contracts end at *infinity*.  The RI-tree answers
timeslice and period queries without ever reorganising the index as the
clock advances -- the point of the reserved fork nodes.

Also demonstrates the fine-grained Allen relations of Section 4.5.

Run:  python examples/temporal_validtime.py
"""

from repro.core import TemporalRITree, topology

ASSIGNMENTS = {
    1: "Ada    - compiler team (2010-2015)",
    2: "Grace  - compiler team (2012, open-ended contract)",
    3: "Edsger - verification team (2013, active until now)",
    4: "Barbara- databases team (2014-2016)",
    5: "Alan   - databases team (2016, active until now)",
}


def main() -> None:
    clock = 2018
    table = TemporalRITree(now=clock)

    table.insert(2010, 2015, interval_id=1)
    table.insert_infinite(2012, interval_id=2)
    table.insert_until_now(2013, interval_id=3)
    table.insert(2014, 2016, interval_id=4)
    table.insert_until_now(2016, interval_id=5)

    def show(label, ids):
        print(label)
        for interval_id in sorted(ids):
            print("   ", ASSIGNMENTS[interval_id])

    show(f"timeslice {clock} (who is active now?):", table.stab(clock))
    show("period [2014, 2015]:", table.intersection(2014, 2015))

    # Time passes; now-relative rows follow the clock with zero index work.
    clock = 2025
    table.advance_to(clock)
    show(f"timeslice {clock} after advancing the clock:", table.stab(clock))

    # Edsger's assignment ends: close the now-relative interval at 2022.
    table.close_now_interval(2013, interval_id=3, upper=2022)
    show(f"timeslice {clock} after closing Edsger's assignment:",
         table.stab(clock))

    # Fine-grained temporal relationships (Section 4.5).
    print("\nAllen relations against the period [2014, 2016]:")
    for relation in ("overlaps", "during", "finishes", "met_by"):
        ids = topology.query_relation(table, relation, 2014, 2016)
        names = [ASSIGNMENTS[i].split("-")[0].strip() for i in sorted(ids)]
        print(f"    {relation:13s} -> {names}")

    assert sorted(table.stab(2025)) == [2, 5]
    assert sorted(table.intersection(2014, 2015)) == [1, 2, 3, 4]
    print("\nOK")


if __name__ == "__main__":
    main()
