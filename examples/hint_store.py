"""One workload, three backends: RI-tree, SQL RI-tree, HINT.

Loads the same interval relation into the simulated-disk RI-tree, the
sqlite3-backed RI-tree and the main-memory HINT store, shows that
queries, predicate queries and joins agree across all three, and lets
the auto join planner explain why it treats the memory-resident backend
differently from the disk-resident ones.

Run:  python examples/hint_store.py
"""

import random

from repro.core import AutoJoin, HintStore, RITree
from repro.sql import SQLRITree


def main() -> None:
    rng = random.Random(7)
    records = [
        (lower, lower + rng.randrange(1, 400), interval_id)
        for interval_id, lower in enumerate(
            rng.randrange(0, 20_000) for _ in range(600)
        )
    ]
    probes = [
        (lower, lower + rng.randrange(1, 800), 100_000 + i)
        for i, lower in enumerate(
            rng.randrange(0, 20_000) for _ in range(40)
        )
    ]

    stores = {
        "RI-tree     ": RITree(),
        "SQL-RI-tree ": SQLRITree(),
        "HINT        ": HintStore(),
    }
    for store in stores.values():
        store.bulk_load(records)

    # The same questions, the same answers, three different layouts.
    answers = {
        label: (
            sorted(store.intersection(4_000, 4_500)),
            sorted(store.query(3_000, 9_000, predicate="during")),
            sorted(store.join_pairs(probes)),
        )
        for label, store in stores.items()
    }
    reference = next(iter(answers.values()))
    assert all(a == reference for a in answers.values())
    for label, (ids, during, pairs) in answers.items():
        print(
            f"{label} intersection(4000, 4500) -> {len(ids)} ids, "
            f"during(3000, 9000) -> {len(during)}, "
            f"join -> {len(pairs)} pairs"
        )

    # Storage accounting: HINT replicates long intervals across
    # partitions, the RI-tree always stores exactly two entries each.
    for label, store in stores.items():
        print(
            f"{label} {store.interval_count} intervals, "
            f"{store.index_entry_count} index entries "
            f"(redundancy {store.redundancy:.2f})"
        )

    # The auto planner prices each backend through its own cost model.
    # The HINT store reports zero physical reads (memory-resident), so
    # the decision comes down to interpreter work alone.
    for label, store in stores.items():
        if store.cost_model() is None:
            continue
        auto = AutoJoin(method=store)
        pairs = auto.pairs(probes, [])
        decision = auto.last_decision
        print(
            f"{label} auto join -> {auto.last_dispatch}: "
            f"index {decision.index.physical_reads:.0f} physical reads / "
            f"{decision.index.frame_cost:.0f} frames, "
            f"sweep {decision.sweep.physical_reads:.0f} physical reads / "
            f"{decision.sweep.frame_cost:.0f} frames"
        )
        assert sorted(pairs) == reference[2]

    hint = stores["HINT        "]
    assert hint.cost_model().estimate_join(probes).index.physical_reads == 0.0
    assert hint.verify().ok
    print("OK")


if __name__ == "__main__":
    main()
