"""2-D window queries via space-filling-curve intervals (paper Section 1).

One of the paper's motivating applications: "line segments on a
space-filling curve in spatial applications [FR 89] [BKK 99]".  A 2-D
region maps to a set of intervals on the Z-order (Morton) curve; spatial
window queries then reduce to interval-intersection queries, which the
RI-tree answers efficiently.

This example stores rectangles on a 256x256 grid:

* each rectangle is decomposed into maximal Z-aligned quadrant blocks,
  each of which is a contiguous run (interval) on the Z-curve;
* all runs go into one RI-tree, tagged with the rectangle id;
* a window query decomposes the window the same way, runs one
  intersection query per run, de-duplicates and refines exactly.

Run:  python examples/spatial_curve.py
"""

from repro.core import RITree

GRID_BITS = 8  # 256 x 256 cells


def z_encode(x: int, y: int) -> int:
    """Interleave the bits of (x, y) into a Morton code."""
    code = 0
    for bit in range(GRID_BITS):
        code |= (x >> bit & 1) << (2 * bit)
        code |= (y >> bit & 1) << (2 * bit + 1)
    return code


def rect_to_runs(x0: int, y0: int, x1: int, y1: int) -> list[tuple[int, int]]:
    """Decompose a rectangle into maximal Z-aligned quadrant runs.

    Each fully-covered quadrant of size 2^k x 2^k is one contiguous Z-range
    of 4^k cells -- the classical linear-quadtree decomposition.
    """
    runs: list[tuple[int, int]] = []

    def descend(qx: int, qy: int, size: int) -> None:
        if qx > x1 or qy > y1 or qx + size - 1 < x0 or qy + size - 1 < y0:
            return
        if x0 <= qx and y0 <= qy and qx + size - 1 <= x1 and qy + size - 1 <= y1:
            start = z_encode(qx, qy)
            runs.append((start, start + size * size - 1))
            return
        half = size // 2
        for dx, dy in ((0, 0), (half, 0), (0, half), (half, half)):
            descend(qx + dx, qy + dy, half)

    descend(0, 0, 2 ** GRID_BITS)
    return runs


class SpatialIndex:
    """Rectangles indexed as Z-curve interval runs in one RI-tree."""

    def __init__(self) -> None:
        self._tree = RITree()
        self._rects: dict[int, tuple[int, int, int, int]] = {}
        self._run_count = 0

    def insert(self, rect_id: int, x0: int, y0: int, x1: int, y1: int) -> None:
        self._rects[rect_id] = (x0, y0, x1, y1)
        for lower, upper in rect_to_runs(x0, y0, x1, y1):
            # Runs of one rectangle get distinct synthetic ids; the
            # rectangle id is recovered by integer division.
            self._tree.insert(lower, upper,
                              rect_id * 10_000 + self._run_count % 10_000)
            self._run_count += 1

    def window(self, x0: int, y0: int, x1: int, y1: int) -> list[int]:
        candidates: set[int] = set()
        for lower, upper in rect_to_runs(x0, y0, x1, y1):
            for run_id in self._tree.intersection(lower, upper):
                candidates.add(run_id // 10_000)
        return sorted(rect_id for rect_id in candidates
                      if self._intersects(rect_id, x0, y0, x1, y1))

    def _intersects(self, rect_id: int, x0: int, y0: int,
                    x1: int, y1: int) -> bool:
        rx0, ry0, rx1, ry1 = self._rects[rect_id]
        return rx0 <= x1 and x0 <= rx1 and ry0 <= y1 and y0 <= ry1

    @property
    def run_count(self) -> int:
        return self._tree.interval_count


def main() -> None:
    index = SpatialIndex()
    rects = {
        1: (10, 10, 50, 40),     # a building footprint
        2: (60, 20, 90, 90),     # a park
        3: (40, 35, 70, 55),     # a lake overlapping both
        4: (200, 200, 250, 250),  # far away
        5: (128, 0, 129, 255),   # a thin north-south road
    }
    for rect_id, rect in rects.items():
        index.insert(rect_id, *rect)
    print(f"{len(rects)} rectangles stored as {index.run_count} Z-curve runs")

    queries = {
        "window (30,30)-(65,50)": (30, 30, 65, 50),
        "window (0,0)-(5,5)": (0, 0, 5, 5),
        "window (120,100)-(135,140)": (120, 100, 135, 140),
        "whole grid": (0, 0, 255, 255),
    }
    for label, window in queries.items():
        result = index.window(*window)
        print(f"{label:28s} -> rectangles {result}")

    def brute(x0, y0, x1, y1):
        return sorted(i for i, (rx0, ry0, rx1, ry1) in rects.items()
                      if rx0 <= x1 and x0 <= rx1 and ry0 <= y1 and y0 <= ry1)

    for window in queries.values():
        assert index.window(*window) == brute(*window), window
    print("OK")


if __name__ == "__main__":
    main()
