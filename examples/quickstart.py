"""Quickstart: the Relational Interval Tree in thirty lines.

Creates an RI-tree, inserts a handful of intervals, runs intersection and
stabbing queries, deletes a record and shows the I/O accounting that the
paper's experiments are built on.

Run:  python examples/quickstart.py
"""

from repro.core import RITree


def main() -> None:
    tree = RITree()  # private engine: 2 KB blocks, 200-block cache

    # Insert intervals (lower, upper, id) -- e.g. versions of a document.
    tree.insert(10, 40, interval_id=1)
    tree.insert(25, 60, interval_id=2)
    tree.insert(55, 80, interval_id=3)
    tree.insert(70, 70, interval_id=4)  # a point is a degenerate interval

    print("intervals stored:", tree.interval_count)
    print("index entries   :", tree.index_entry_count, "(two per interval)")
    print("backbone height :", tree.height)

    # Which intervals overlap [30, 56]?
    print("intersection(30, 56) ->", sorted(tree.intersection(30, 56)))

    # Which intervals contain time 70?
    print("stab(70)             ->", sorted(tree.stab(70)))

    # Updates are single logarithmic operations.
    tree.delete(25, 60, interval_id=2)
    print("after delete(2)      ->", sorted(tree.intersection(30, 56)))

    # The same I/O counters the paper's figures report:
    tree.db.clear_cache()
    with tree.db.measure() as cost:
        tree.intersection(0, 100)
    print(f"query cost: {cost.physical_reads} physical / "
          f"{cost.logical_reads} logical block reads")

    assert sorted(tree.intersection(30, 56)) == [1, 3]
    print("OK")


if __name__ == "__main__":
    main()
