"""Tests for the 1-D Tile Index."""

import pytest

from repro.engine import Database
from repro.methods import TileIndex, tune_fixed_level
from repro.methods.memory import BruteForceIntervals

from ..conftest import make_intervals


def test_matches_brute_force_across_levels(rng):
    records = make_intervals(rng, 700, domain=200_000, mean_length=900)
    brute = BruteForceIntervals(records)
    for level in (4, 8, 12):
        tindex = TileIndex(fixed_level=level)
        tindex.bulk_load(records)
        for _ in range(60):
            lower = rng.randrange(0, 220_000)
            upper = lower + rng.randrange(0, 4000)
            assert sorted(tindex.intersection(lower, upper)) == \
                sorted(brute.intersection(lower, upper)), (level, lower, upper)


def test_point_queries(rng):
    records = make_intervals(rng, 500, domain=50_000, mean_length=500)
    tindex = TileIndex(fixed_level=10)
    tindex.bulk_load(records)
    brute = BruteForceIntervals(records)
    for _ in range(80):
        point = rng.randrange(0, 55_000)
        assert sorted(tindex.stab(point)) == sorted(brute.stab(point))


def test_dynamic_insert_delete(rng):
    records = make_intervals(rng, 300, domain=30_000, mean_length=400)
    tindex = TileIndex(fixed_level=9)
    for record in records:
        tindex.insert(*record)
    for record in records[::2]:
        tindex.delete(*record)
    brute = BruteForceIntervals(records[1::2])
    for _ in range(50):
        lower = rng.randrange(0, 33_000)
        upper = lower + rng.randrange(0, 2000)
        assert sorted(tindex.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))
    with pytest.raises(KeyError):
        tindex.delete(*records[0])
    assert tindex.interval_count == 150


def test_redundancy_grows_with_interval_length():
    short = TileIndex(fixed_level=12)
    long_ = TileIndex(Database(), fixed_level=12)
    for i in range(100):
        short.insert(i * 100, i * 100, i)           # points
        long_.insert(i * 100, i * 100 + 2000, i)    # ~8 tiles each
    assert short.redundancy == 1.0
    assert long_.redundancy > 4.0


def test_decomposition_counts():
    tindex = TileIndex(fixed_level=10)  # tile size 1024
    assert len(tindex.tiles_for(0, 1023)) == 1
    assert len(tindex.tiles_for(0, 1024)) == 2
    assert len(tindex.tiles_for(1000, 5000)) == 5
    assert len(tindex.tiles_for(1024, 1024)) == 1


def test_domain_guard():
    tindex = TileIndex(fixed_level=8)
    with pytest.raises(ValueError):
        tindex.insert(-1, 5, 1)
    with pytest.raises(ValueError):
        tindex.insert(0, 2 ** 20, 1)


def test_bad_level_rejected():
    with pytest.raises(ValueError):
        TileIndex(fixed_level=25)
    with pytest.raises(ValueError):
        TileIndex(fixed_level=-1)


def test_query_clipping_outside_domain(rng):
    records = make_intervals(rng, 100, domain=10_000, mean_length=100)
    tindex = TileIndex(fixed_level=10)
    tindex.bulk_load(records)
    brute = BruteForceIntervals(records)
    assert sorted(tindex.intersection(-500, 20_000)) == \
        sorted(brute.intersection(-500, 20_000))
    assert tindex.intersection(-500, -1) == []


def test_tuner_prefers_fine_tiles_for_points_coarse_for_long(rng):
    points = [(i * 37 % 2 ** 20, i * 37 % 2 ** 20, i) for i in range(500)]
    long_intervals = [(i * 1000 % 2 ** 19, i * 1000 % 2 ** 19 + 50_000, i)
                      for i in range(500)]
    queries = [(q, q) for q in range(0, 2 ** 20, 2 ** 16)]
    fine = tune_fixed_level(points, queries, levels=range(2, 15))
    coarse = tune_fixed_level(long_intervals, queries, levels=range(2, 15))
    assert fine >= coarse


def test_tuner_requires_sample():
    with pytest.raises(ValueError):
        tune_fixed_level([], [(0, 1)])
