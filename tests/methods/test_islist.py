"""Tests for the Interval Skip List (paper Section 2.1)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.methods import (
    BruteForceIntervals,
    IntervalSkipList,
    build_interval_skip_list,
)

from ..conftest import make_intervals

record = st.tuples(st.integers(-1000, 1000), st.integers(0, 500),
                   st.integers(0, 100_000)).map(
    lambda t: (t[0], t[0] + t[1], t[2]))


def unique_ids(records):
    seen = set()
    out = []
    for lower, upper, interval_id in records:
        if interval_id not in seen:
            seen.add(interval_id)
            out.append((lower, upper, interval_id))
    return out


def test_empty():
    skip_list = IntervalSkipList()
    assert skip_list.stab(5) == []
    assert skip_list.intersection(0, 10) == []
    assert len(skip_list) == 0


def test_single_interval():
    skip_list = IntervalSkipList()
    skip_list.insert(10, 20, 1)
    assert skip_list.stab(10) == [1]
    assert skip_list.stab(15) == [1]
    assert skip_list.stab(20) == [1]
    assert skip_list.stab(9) == []
    assert skip_list.stab(21) == []
    skip_list.check_invariants()


def test_point_interval():
    skip_list = IntervalSkipList()
    skip_list.insert(5, 5, 1)
    assert skip_list.stab(5) == [1]
    assert skip_list.stab(4) == []
    assert skip_list.intersection(0, 10) == [1]
    skip_list.check_invariants()


def test_shared_endpoints():
    skip_list = IntervalSkipList()
    skip_list.insert(0, 10, 1)
    skip_list.insert(10, 20, 2)
    skip_list.insert(5, 15, 3)
    assert sorted(skip_list.stab(10)) == [1, 2, 3]
    assert sorted(skip_list.stab(0)) == [1]
    skip_list.check_invariants()


def test_duplicate_id_rejected():
    skip_list = IntervalSkipList()
    skip_list.insert(0, 1, 1)
    with pytest.raises(KeyError):
        skip_list.insert(5, 6, 1)


def test_stab_matches_brute_force(rng):
    records = make_intervals(rng, 1200, domain=20_000, mean_length=500)
    skip_list = build_interval_skip_list(records)
    skip_list.check_invariants()
    brute = BruteForceIntervals(records)
    for _ in range(300):
        point = rng.randrange(-100, 21_000)
        assert skip_list.stab(point) == sorted(brute.stab(point)), point


def test_intersection_matches_brute_force(rng):
    records = make_intervals(rng, 800, domain=20_000, mean_length=400)
    skip_list = build_interval_skip_list(records)
    brute = BruteForceIntervals(records)
    for _ in range(150):
        lower = rng.randrange(0, 22_000)
        upper = lower + rng.randrange(0, 2000)
        assert sorted(skip_list.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))


def test_delete(rng):
    records = make_intervals(rng, 400, domain=10_000, mean_length=300)
    skip_list = build_interval_skip_list(records)
    brute = BruteForceIntervals(records)
    for record in records[::2]:
        skip_list.delete(*record)
        brute.delete(*record)
    skip_list.check_invariants()
    for _ in range(100):
        point = rng.randrange(0, 11_000)
        assert skip_list.stab(point) == sorted(brute.stab(point))
    with pytest.raises(KeyError):
        skip_list.delete(*records[0])
    with pytest.raises(KeyError):
        skip_list.delete(1, 2, 999_999)


def test_interleaved_updates_preserve_invariants(rng):
    """Later insertions split marked edges; coverage must survive."""
    skip_list = IntervalSkipList()
    brute = BruteForceIntervals()
    alive = {}
    next_id = 0
    for step in range(800):
        if alive and rng.random() < 0.35:
            victim = rng.choice(sorted(alive))
            lower, upper = alive.pop(victim)
            skip_list.delete(lower, upper, victim)
            brute.delete(lower, upper, victim)
        else:
            lower = rng.randrange(0, 2000)
            upper = lower + rng.randrange(0, 400)
            skip_list.insert(lower, upper, next_id)
            brute.insert(lower, upper, next_id)
            alive[next_id] = (lower, upper)
            next_id += 1
        if step % 100 == 0:
            skip_list.check_invariants()
    skip_list.check_invariants()
    for point in range(0, 2400, 7):
        assert skip_list.stab(point) == sorted(brute.stab(point)), point


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(record, max_size=80), st.integers(-1200, 1700))
def test_stab_property(records, point):
    records = unique_ids(records)
    skip_list = build_interval_skip_list(records)
    brute = BruteForceIntervals(records)
    assert skip_list.stab(point) == sorted(brute.stab(point))


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(record, min_size=1, max_size=60), st.data())
def test_delete_property(records, data):
    records = unique_ids(records)
    skip_list = build_interval_skip_list(records)
    victims = data.draw(st.sets(st.sampled_from(range(len(records))),
                                max_size=len(records)))
    for index in sorted(victims):
        skip_list.delete(*records[index])
    skip_list.check_invariants()
    brute = BruteForceIntervals(
        rec for i, rec in enumerate(records) if i not in victims)
    for point in (-1200, -1, 0, 1, 250, 999, 1500):
        assert skip_list.stab(point) == sorted(brute.stab(point))
