"""Tests for the main-memory reference structures (paper Section 2.1)."""

import pytest

from repro.methods import BruteForceIntervals, IntervalTree, SegmentTree

from ..conftest import make_intervals


def test_brute_force_basic():
    brute = BruteForceIntervals([(0, 10, 1), (5, 15, 2)])
    assert sorted(brute.intersection(8, 9)) == [1, 2]
    assert brute.intersection(11, 12) == [2]
    assert brute.stab(0) == [1]
    assert len(brute) == 2


def test_brute_force_duplicate_id_rejected():
    brute = BruteForceIntervals()
    brute.insert(0, 1, 7)
    with pytest.raises(KeyError):
        brute.insert(5, 6, 7)


def test_brute_force_delete_checks_bounds():
    brute = BruteForceIntervals([(0, 10, 1)])
    with pytest.raises(KeyError):
        brute.delete(0, 11, 1)
    brute.delete(0, 10, 1)
    assert len(brute) == 0


def test_interval_tree_matches_brute_force(rng):
    records = make_intervals(rng, 1000, domain=20_000, mean_length=400)
    points = [b for r in records for b in (r[0], r[1])]
    tree = IntervalTree(points)
    brute = BruteForceIntervals()
    for record in records:
        tree.insert(*record)
        brute.insert(*record)
    for _ in range(200):
        lower = rng.randrange(0, 22_000)
        upper = lower + rng.randrange(0, 2000)
        assert sorted(tree.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))


def test_interval_tree_delete(rng):
    records = make_intervals(rng, 400, domain=5000, mean_length=100)
    points = [b for r in records for b in (r[0], r[1])]
    tree = IntervalTree(points)
    for record in records:
        tree.insert(*record)
    for record in records[::2]:
        tree.delete(*record)
    brute = BruteForceIntervals(records[1::2])
    for _ in range(60):
        lower = rng.randrange(0, 6000)
        upper = lower + rng.randrange(0, 500)
        assert sorted(tree.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))
    with pytest.raises(KeyError):
        tree.delete(*records[0])


def test_interval_tree_rejects_interval_outside_universe():
    tree = IntervalTree([10, 20, 30])
    with pytest.raises(ValueError):
        tree.insert(0, 5, 1)  # embraces no universe point


def test_interval_tree_empty_universe_rejected():
    with pytest.raises(ValueError):
        IntervalTree([])


def test_segment_tree_matches_brute_force(rng):
    records = make_intervals(rng, 600, domain=10_000, mean_length=300)
    points = [b for r in records for b in (r[0], r[1])]
    seg = SegmentTree(points)
    brute = BruteForceIntervals()
    for record in records:
        seg.insert(*record)
        brute.insert(*record)
    for _ in range(150):
        lower = rng.randrange(0, 11_000)
        upper = lower + rng.randrange(0, 800)
        assert sorted(seg.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))
    for _ in range(100):
        point = rng.randrange(0, 11_000)
        assert sorted(seg.stab(point)) == sorted(brute.stab(point))


def test_segment_tree_redundancy_exceeds_one(rng):
    """The decomposition redundancy that the interval tree avoids."""
    records = make_intervals(rng, 300, domain=10_000, mean_length=1000)
    points = [b for r in records for b in (r[0], r[1])]
    seg = SegmentTree(points)
    for record in records:
        seg.insert(*record)
    assert seg.redundancy > 1.0
    assert len(seg) == 300


def test_segment_tree_point_only_redundancy_is_one():
    seg = SegmentTree([1, 2, 3])
    seg.insert(1, 1, 10)
    seg.insert(2, 2, 11)
    assert seg.redundancy == 1.0
