"""Tests for the Priority Search Tree (paper Section 2.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.methods import BruteForceIntervals, PrioritySearchTree

from ..conftest import make_intervals

record = st.tuples(st.integers(-2000, 2000), st.integers(0, 1000),
                   st.integers(0, 100_000)).map(
    lambda t: (t[0], t[0] + t[1], t[2]))


def unique_ids(records):
    seen = set()
    out = []
    for lower, upper, interval_id in records:
        if interval_id not in seen:
            seen.add(interval_id)
            out.append((lower, upper, interval_id))
    return out


def test_empty_tree():
    pst = PrioritySearchTree([])
    assert pst.intersection(0, 100) == []
    assert len(pst) == 0


def test_single_record():
    pst = PrioritySearchTree([(5, 10, 1)])
    assert pst.intersection(7, 8) == [1]
    assert pst.intersection(11, 20) == []
    assert pst.stab(5) == [1]


def test_matches_brute_force(rng):
    records = make_intervals(rng, 1500, domain=50_000, mean_length=600)
    pst = PrioritySearchTree(records)
    brute = BruteForceIntervals(records)
    for _ in range(200):
        lower = rng.randrange(0, 55_000)
        upper = lower + rng.randrange(0, 3000)
        assert sorted(pst.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))


def test_logarithmic_search_work(rng):
    """Visited-node accounting: non-reporting visits stay O(log n)."""
    records = [(i, i + 5, i) for i in range(0, 100_000, 10)]
    pst = PrioritySearchTree(records)
    visits = 0
    original = PrioritySearchTree._query

    def counting(self, node, lower, upper, results):
        nonlocal visits
        if node is not None:
            visits += 1
        return original(self, node, lower, upper, results)

    PrioritySearchTree._query = counting
    try:
        results = pst.intersection(50_000, 50_100)
    finally:
        PrioritySearchTree._query = original
    assert len(results) == 11
    # Visits bounded by results plus two root-to-leaf boundary paths.
    assert visits <= len(results) + 4 * 16


@settings(max_examples=60, deadline=None)
@given(st.lists(record, max_size=150),
       st.integers(-2500, 2500), st.integers(0, 2000))
def test_property_equivalence(records, query_lower, query_length):
    records = unique_ids(records)
    pst = PrioritySearchTree(records)
    brute = BruteForceIntervals(records)
    query_upper = query_lower + query_length
    assert sorted(pst.intersection(query_lower, query_upper)) == \
        sorted(brute.intersection(query_lower, query_upper))
