"""Tests for MAP21."""

import pytest

from repro.methods import Map21
from repro.methods.memory import BruteForceIntervals

from ..conftest import make_intervals


def test_encode_decode_roundtrip():
    m = Map21()
    for lower, upper in [(0, 0), (5, 10), (2 ** 20 - 1, 2 ** 20 - 1)]:
        assert m.decode(m.encode(lower, upper)) == (lower, upper)


def test_encoding_is_order_preserving():
    m = Map21()
    assert m.encode(1, 5) < m.encode(1, 6) < m.encode(2, 0)


def test_out_of_domain_rejected():
    m = Map21(shift_bits=10)
    with pytest.raises(ValueError):
        m.encode(0, 1024)
    with pytest.raises(ValueError):
        m.encode(-1, 5)


def test_length_class():
    assert Map21.length_class(0, 0) == 0
    assert Map21.length_class(0, 1) == 1
    assert Map21.length_class(0, 7) == 3
    assert Map21.length_class(0, 8) == 4


def test_matches_brute_force(rng):
    records = make_intervals(rng, 800, domain=100_000, mean_length=700)
    m = Map21()
    m.bulk_load(records)
    brute = BruteForceIntervals(records)
    for _ in range(100):
        lower = rng.randrange(0, 110_000)
        upper = lower + rng.randrange(0, 4000)
        assert sorted(m.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))


def test_dynamic_updates(rng):
    records = make_intervals(rng, 300, domain=20_000, mean_length=300)
    m = Map21()
    for record in records:
        m.insert(*record)
    for record in records[::2]:
        m.delete(*record)
    brute = BruteForceIntervals(records[1::2])
    for _ in range(50):
        lower = rng.randrange(0, 22_000)
        upper = lower + rng.randrange(0, 1500)
        assert sorted(m.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))
    with pytest.raises(KeyError):
        m.delete(*records[0])


def test_partition_classes_tracked():
    m = Map21()
    m.insert(0, 0, 1)       # class 0
    m.insert(0, 100, 2)     # class 7
    m.insert(5, 105, 3)     # class 7
    assert m.partition_classes == [0, 7]
    m.delete(0, 0, 1)
    assert m.partition_classes == [7]


def test_no_redundancy(rng):
    records = make_intervals(rng, 200, domain=10_000, mean_length=100)
    m = Map21()
    m.bulk_load(records)
    assert m.index_entry_count == 200
    assert m.interval_count == 200
