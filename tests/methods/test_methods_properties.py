"""Property test: every access method agrees with the brute-force oracle."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RITree
from repro.methods import ISTree, Map21, TileIndex, WindowList
from repro.methods.memory import BruteForceIntervals

# Bounded to the tile index's domain [0, 2^20).
record = st.tuples(st.integers(0, 2 ** 20 - 1), st.integers(0, 5000),
                   st.integers(0, 10_000)).map(
    lambda t: (t[0], min(t[0] + t[1], 2 ** 20 - 1), t[2]))
query = st.tuples(st.integers(0, 2 ** 20 - 1), st.integers(0, 20_000)).map(
    lambda t: (t[0], t[0] + t[1]))


def unique_ids(records):
    seen = set()
    out = []
    for lower, upper, interval_id in records:
        if interval_id not in seen:
            seen.add(interval_id)
            out.append((lower, upper, interval_id))
    return out


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(record, max_size=80), st.lists(query, max_size=5))
def test_all_methods_agree_with_oracle(records, queries):
    records = unique_ids(records)
    brute = BruteForceIntervals(records)
    methods = [
        RITree(),
        ISTree(ordering="D"),
        ISTree(ordering="V", name="V"),
        Map21(),
        TileIndex(fixed_level=9),
        WindowList(),
    ]
    for method in methods:
        method.bulk_load(sorted(records)
                         if isinstance(method, ISTree) else records)
    for lower, upper in queries:
        expected = sorted(brute.intersection(lower, upper))
        for method in methods:
            got = sorted(method.intersection(lower, upper))
            assert got == expected, (method.method_name, lower, upper)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(record, min_size=1, max_size=60), st.data())
def test_dynamic_methods_agree_after_deletes(records, data):
    records = unique_ids(records)
    victims = data.draw(st.sets(st.sampled_from(range(len(records))),
                                max_size=len(records) // 2))
    alive = [rec for i, rec in enumerate(records) if i not in victims]
    brute = BruteForceIntervals(alive)
    methods = [RITree(), ISTree(ordering="D"), Map21(),
               TileIndex(fixed_level=10)]
    for method in methods:
        for rec in records:
            method.insert(*rec)
        for i in sorted(victims):
            method.delete(*records[i])
    for lower, upper in [(0, 2 ** 20 - 1), (0, 0), (2 ** 19, 2 ** 19 + 500)]:
        expected = sorted(brute.intersection(lower, upper))
        for method in methods:
            assert sorted(method.intersection(lower, upper)) == expected, (
                method.method_name, lower, upper)
