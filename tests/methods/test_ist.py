"""Tests for the Interval-Spatial Transformation."""

import pytest

from repro.methods import ISTree
from repro.methods.memory import BruteForceIntervals

from ..conftest import make_intervals


@pytest.mark.parametrize("ordering", ["D", "V", "H"])
def test_matches_brute_force(ordering, rng):
    records = make_intervals(rng, 800, domain=50_000, mean_length=600)
    ist = ISTree(ordering=ordering)
    ist.bulk_load(sorted(records))
    brute = BruteForceIntervals(records)
    for _ in range(100):
        lower = rng.randrange(0, 55_000)
        upper = lower + rng.randrange(0, 3000)
        assert sorted(ist.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper)), (ordering, lower, upper)


@pytest.mark.parametrize("ordering", ["D", "V", "H"])
def test_dynamic_insert_delete(ordering, rng):
    records = make_intervals(rng, 300, domain=10_000, mean_length=200)
    ist = ISTree(ordering=ordering)
    for record in records:
        ist.insert(*record)
    for record in records[::3]:
        ist.delete(*record)
    alive = [r for i, r in enumerate(records) if i % 3 != 0]
    brute = BruteForceIntervals(alive)
    for _ in range(50):
        lower = rng.randrange(0, 11_000)
        upper = lower + rng.randrange(0, 1000)
        assert sorted(ist.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))
    with pytest.raises(KeyError):
        ist.delete(*records[0])


def test_no_redundancy():
    ist = ISTree(ordering="D")
    for i in range(100):
        ist.insert(i, i + 50, i)
    assert ist.index_entry_count == 100
    assert ist.interval_count == 100
    assert ist.redundancy == 1.0


def test_unknown_ordering_rejected():
    with pytest.raises(ValueError):
        ISTree(ordering="X")


def test_length_query_h_order_only():
    ist = ISTree(ordering="H")
    ist.insert(0, 10, 1)      # length 10
    ist.insert(0, 100, 2)     # length 100
    ist.insert(50, 60, 3)     # length 10
    assert sorted(ist.length_query(5, 20)) == [1, 3]
    assert ist.length_query(90, 200) == [2]
    d_order = ISTree(ordering="D", name="Other")
    with pytest.raises(ValueError):
        d_order.length_query(0, 10)


def test_d_order_scan_grows_with_distance_from_upper_bound(rng):
    """The Figure 17 mechanism, observable at unit-test scale."""
    ist = ISTree(ordering="D")
    records = make_intervals(rng, 3000, domain=100_000, mean_length=100)
    ist.bulk_load(sorted(records))
    ist.db.clear_cache()
    with ist.db.measure() as near:
        ist.stab(99_000)
    with ist.db.measure() as far:
        ist.stab(1000)
    assert far.logical_reads > 2 * near.logical_reads
