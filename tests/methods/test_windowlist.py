"""Tests for the static Window-List."""

import pytest

from repro.methods import WindowList
from repro.methods.memory import BruteForceIntervals

from ..conftest import make_intervals


def test_matches_brute_force(rng):
    records = make_intervals(rng, 1000, domain=50_000, mean_length=800)
    wl = WindowList()
    wl.bulk_load(records)
    brute = BruteForceIntervals(records)
    for _ in range(150):
        lower = rng.randrange(0, 55_000)
        upper = lower + rng.randrange(0, 3000)
        assert sorted(wl.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))
    for _ in range(80):
        point = rng.randrange(0, 55_000)
        assert sorted(wl.stab(point)) == sorted(brute.stab(point))


def test_linear_space(rng):
    """Snapshot copies stay O(n): total entries bounded by a small factor."""
    records = make_intervals(rng, 2000, domain=20_000, mean_length=2000)
    wl = WindowList()
    wl.bulk_load(records)
    assert wl.index_entry_count <= 4 * len(records)
    assert wl.window_count >= 2


def test_bulk_load_twice_rejected(rng):
    wl = WindowList()
    wl.bulk_load(make_intervals(rng, 10))
    with pytest.raises(ValueError):
        wl.bulk_load(make_intervals(rng, 10))


def test_overflow_inserts_are_correct_but_unindexed(rng):
    records = make_intervals(rng, 500, domain=20_000, mean_length=300)
    wl = WindowList()
    wl.bulk_load(records)
    brute = BruteForceIntervals(records)
    for i in range(600, 650):
        lower = rng.randrange(0, 20_000)
        wl.insert(lower, lower + 100, i)
        brute.insert(lower, lower + 100, i)
    for _ in range(50):
        lower = rng.randrange(0, 22_000)
        upper = lower + rng.randrange(0, 1500)
        assert sorted(wl.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))
    assert wl.interval_count == 550


def test_update_degradation_measurable(rng):
    """Post-build inserts force per-query overflow scans -- the O(n/b)
    degradation the paper ascribes to the structure."""
    records = make_intervals(rng, 1000, domain=50_000, mean_length=300)
    wl = WindowList()
    wl.bulk_load(records)
    wl.db.clear_cache()
    with wl.db.measure() as before:
        wl.intersection(10_000, 10_500)
    for i in range(2000, 2600):
        wl.insert(rng.randrange(0, 50_000), rng.randrange(50_000, 50_100), i)
    wl.db.clear_cache()
    with wl.db.measure() as after:
        wl.intersection(10_000, 10_500)
    assert after.physical_reads > before.physical_reads


def test_delete_from_static_part_is_logical(rng):
    records = make_intervals(rng, 300, domain=10_000, mean_length=200)
    wl = WindowList()
    wl.bulk_load(records)
    victim = records[0]
    wl.delete(*victim)
    assert victim[2] not in wl.intersection(victim[0], victim[1])
    assert wl.interval_count == 299
    with pytest.raises(KeyError):
        wl.delete(*victim)


def test_delete_from_overflow(rng):
    wl = WindowList()
    wl.bulk_load(make_intervals(rng, 50))
    wl.insert(5, 10, 999)
    wl.delete(5, 10, 999)
    assert 999 not in wl.intersection(0, 100)
    with pytest.raises(KeyError):
        wl.delete(5, 10, 999)


def test_empty_build():
    wl = WindowList()
    wl.bulk_load([])
    assert wl.intersection(0, 100) == []
    assert wl.window_count == 0


def test_query_before_first_window(rng):
    wl = WindowList()
    wl.bulk_load([(100, 200, 1), (150, 300, 2)])
    assert wl.intersection(0, 99) == []
    assert sorted(wl.intersection(0, 120)) == [1]
